//! Invariant-sanitizer + PFC-watchdog integration suite.
//!
//! Three properties are pinned down here:
//!
//! 1. **Deadlock diagnosis** — a ring of PFC switches with crossing flows
//!    forms the classic cyclic buffer dependency; the run fails with a
//!    [`SimError::PfcDeadlock`] that names the exact pause cycle, both with
//!    the sanitizer on (confirmed mid-run by the watchdog) and off (one-shot
//!    scan at the stall).
//! 2. **Victim attribution** — an innocent flow sharing a paused trunk with
//!    an incast is attributed as a pause victim while the run still
//!    completes.
//! 3. **Typed verdicts** — `RunVerdict`/`SimError` render stable JSON for
//!    CI artifact collection, and invalid configurations are rejected
//!    before the simulation starts.

use rocc_sim::prelude::*;

/// Five switches in a ring, one host per switch, each host sending two
/// switch-hops clockwise: every trunk carries two line-rate flows, so every
/// trunk ingress fills, pauses its upstream trunk egress, and the pause
/// wait-for graph closes into a 5-cycle.
fn pfc_ring(n: usize) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let mut sws = Vec::new();
    let mut hosts = Vec::new();
    for i in 0..n {
        sws.push(b.add_switch(format!("s{i}"), NodeRole::Switch));
    }
    for i in 0..n {
        b.connect(
            sws[i],
            sws[(i + 1) % n],
            BitRate::from_gbps(40),
            SimDuration::from_micros(1),
        );
    }
    for (i, &s) in sws.iter().enumerate() {
        let h = b.add_host(format!("h{i}"));
        b.connect(h, s, BitRate::from_gbps(40), SimDuration::from_micros(1));
        hosts.push(h);
    }
    (b.build(), sws, hosts)
}

fn deadlock_prone_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    // Small PFC headroom makes the cyclic dependency form fast.
    cfg.pfc = PfcConfig {
        xoff_40g: kb(20),
        xoff_100g: kb(20),
        resume_frac: 0.1,
    };
    cfg
}

fn add_ring_flows(sim: &mut Sim, hosts: &[NodeId]) {
    let n = hosts.len();
    for i in 0..n {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: hosts[i],
            dst: hosts[(i + 2) % n],
            size: 100_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
}

fn null_sim(topo: Topology, cfg: SimConfig) -> Sim {
    Sim::new(
        topo,
        cfg,
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    )
}

#[test]
fn ring_deadlock_is_diagnosed_with_the_exact_pause_cycle() {
    let (topo, sws, hosts) = pfc_ring(5);
    let mut sim = null_sim(topo, deadlock_prone_config());
    sim.enable_sanitizer();
    add_ring_flows(&mut sim, &hosts);
    let verdict = sim.run_until_flows_done(SimTime::from_millis(50));
    let Some(SimError::PfcDeadlock {
        detected_at,
        cycle,
        ..
    }) = verdict.err()
    else {
        panic!("expected PfcDeadlock, got {verdict:?}");
    };
    assert!(*detected_at > SimTime::ZERO);
    // The cycle traverses every trunk egress exactly once.
    assert_eq!(cycle.len(), 5, "ring cycle must have 5 nodes: {cycle:?}");
    let mut on_cycle: Vec<NodeId> = cycle.iter().map(|c| c.node).collect();
    on_cycle.sort_by_key(|n| n.0);
    let mut expect = sws.clone();
    expect.sort_by_key(|n| n.0);
    assert_eq!(on_cycle, expect, "every ring switch sits on the cycle");
    for c in cycle {
        assert!(
            c.ingress_buffered > 0,
            "cycle node must be pinned by downstream ingress occupancy: {c:?}"
        );
    }
    // The watchdog saw sustained pauses on the trunks.
    let report = sim.sanitizer().report();
    assert!(report.max_pause_fraction > 0.5, "{report:?}");
    assert!(report.max_pause_depth >= 5, "{report:?}");
}

#[test]
fn ring_deadlock_is_diagnosed_even_with_the_sanitizer_off() {
    let (topo, _, hosts) = pfc_ring(5);
    let mut sim = null_sim(topo, deadlock_prone_config());
    add_ring_flows(&mut sim, &hosts);
    let verdict = sim.run_until_flows_done(SimTime::from_millis(50));
    let Some(SimError::PfcDeadlock { cycle, .. }) = verdict.err() else {
        panic!("expected PfcDeadlock, got {verdict:?}");
    };
    assert_eq!(cycle.len(), 5);
    let json = verdict.to_json();
    assert!(json.contains("\"verdict\":\"pfc_deadlock\""), "{json}");
    assert!(json.contains("\"cycle\":"), "{json}");
}

/// Incast through a two-switch trunk: flows 0 and 1 overload one receiver
/// while flow 2 (to an idle receiver) merely shares the trunk. PFC pauses
/// the trunk head-of-line; the watchdog must attribute flow 2 as a victim,
/// and the run must still complete (no deadlock in a tree).
#[test]
fn innocent_flow_behind_a_paused_trunk_is_attributed_as_victim() {
    let mut b = TopologyBuilder::new();
    let a = b.add_switch("a", NodeRole::Switch);
    let bb = b.add_switch("b", NodeRole::Switch);
    b.connect(a, bb, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut senders = Vec::new();
    for i in 0..3 {
        let h = b.add_host(format!("h{i}"));
        b.connect(h, a, BitRate::from_gbps(10), SimDuration::from_micros(1));
        senders.push(h);
    }
    let r1 = b.add_host("r1");
    let r2 = b.add_host("r2");
    b.connect(bb, r1, BitRate::from_gbps(10), SimDuration::from_micros(1));
    b.connect(bb, r2, BitRate::from_gbps(10), SimDuration::from_micros(1));

    let mut cfg = SimConfig::default();
    cfg.pfc = PfcConfig {
        xoff_40g: kb(30),
        xoff_100g: kb(30),
        resume_frac: 0.5,
    };
    let mut sim = null_sim(b.build(), cfg);
    // Pause windows are tens of microseconds; audit fast enough to see them.
    sim.enable_sanitizer_with_period(SimDuration::from_micros(2));
    for (i, &s) in senders.iter().enumerate() {
        let dst = if i < 2 { r1 } else { r2 };
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 2_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();
    let report = sim.sanitizer().report();
    assert!(
        report.victims.contains(&FlowId(2)),
        "flow 2 never touches the hot egress yet waits behind its pauses: {report:?}"
    );
    assert!(
        !report.victims.contains(&FlowId(0)) && !report.victims.contains(&FlowId(1)),
        "the incast flows cause the congestion; they are not victims: {report:?}"
    );
    assert!(report.max_pause_fraction > 0.0, "{report:?}");
    assert!(report.violations.is_empty(), "{report:?}");
}

/// Watchdog findings surface on the telemetry bus: with the SANITIZER event
/// class collected, pause wait-for edges appear on the timeline as they are
/// discovered and a failed run closes with a `verdict` event naming its
/// kind and cycle length.
#[test]
fn watchdog_findings_appear_on_the_telemetry_timeline() {
    let (topo, _, hosts) = pfc_ring(5);
    let mut sim = null_sim(topo, deadlock_prone_config());
    sim.enable_sanitizer();
    sim.trace.telemetry.collect(EventMask::ALL);
    add_ring_flows(&mut sim, &hosts);
    let verdict = sim.run_until_flows_done(SimTime::from_millis(50));
    assert!(!verdict.is_complete());
    let events = &sim.trace.telemetry.events;
    let edges: Vec<&SimEvent> = events
        .iter()
        .filter(|e| e.to_json().contains("\"type\":\"pause_edge\""))
        .collect();
    assert!(!edges.is_empty(), "no pause edges on the timeline");
    let verdicts: Vec<String> = events
        .iter()
        .map(|e| e.to_json())
        .filter(|j| j.contains("\"type\":\"verdict\""))
        .collect();
    assert_eq!(verdicts.len(), 1, "exactly one closing verdict event");
    assert!(verdicts[0].contains("pfc_deadlock"), "{}", verdicts[0]);
    assert!(verdicts[0].contains("\"cycle_len\":5"), "{}", verdicts[0]);
}

#[test]
fn completed_verdict_renders_json() {
    let v = RunVerdict::Completed { flows: 3 };
    assert!(v.is_complete());
    assert_eq!(v.err(), None);
    assert_eq!(v.to_json(), "{\"verdict\":\"completed\",\"flows\":3}");
}

#[test]
fn failure_verdicts_render_their_kind_and_fields() {
    let drained = RunVerdict::Failed(SimError::Drained {
        at: SimTime::from_micros(7),
        incomplete_flows: 2,
    });
    assert!(!drained.is_complete());
    let json = drained.to_json();
    assert!(json.contains("\"verdict\":\"drained\""), "{json}");
    assert!(json.contains("\"incomplete_flows\":2"), "{json}");

    let violation = RunVerdict::Failed(SimError::InvariantViolation {
        at: SimTime::from_micros(9),
        violations: vec!["byte conservation broken: \"quoted\"".into()],
    });
    let json = violation.to_json();
    assert!(json.contains("\"verdict\":\"invariant_violation\""), "{json}");
    assert!(json.contains("\\\"quoted\\\""), "quotes must be escaped: {json}");
}

#[test]
#[should_panic(expected = "invalid SimConfig")]
fn invalid_configuration_is_rejected_before_the_run_starts() {
    let mut b = TopologyBuilder::new();
    let h0 = b.add_host("h0");
    let h1 = b.add_host("h1");
    b.connect(h0, h1, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut cfg = SimConfig::default();
    cfg.pfc.resume_frac = -1.0;
    let _ = null_sim(b.build(), cfg);
}
