//! Benchmarks regenerating the §6.3 large-scale artifacts: per-bin FCT
//! (Figs. 14–16), flow-rate allocation (Table 3), queue/PFC by CP class
//! (Fig. 17), and the unlimited-buffer / lossy regimes (Figs. 18, 20).
//!
//! Each iteration runs a reduced fat-tree (same 2:1 oversubscription and
//! edge0/1 → edge2 pattern) for a 2 ms arrival window.

use criterion::{criterion_group, criterion_main, Criterion};
use rocc_experiments::fct::{run_fat_tree, BufferRegime, FatTreeConfig, Workload};
use rocc_experiments::Scheme;
use rocc_sim::prelude::SimDuration;
use std::hint::black_box;

fn tiny() -> FatTreeConfig {
    FatTreeConfig {
        hosts_per_edge: 4,
        trunks: 1,
        window: SimDuration::from_millis(2),
        max_drain: SimDuration::from_millis(400),
        reps: 1,
    }
}

fn bench_fct_by_scheme(c: &mut Criterion) {
    let mut g = c.benchmark_group("fct_fat_tree");
    g.sample_size(10);
    for scheme in Scheme::large_scale_set() {
        let out = run_fat_tree(scheme, Workload::FbHadoop, 0.7, &tiny(), BufferRegime::Pfc, 1);
        let mean_fct: f64 =
            out.fcts.iter().map(|&(_, f)| f).sum::<f64>() / out.fcts.len().max(1) as f64;
        eprintln!(
            "[fig14-16] {:>6}: {} flows, mean FCT {:.3} ms, PFC {}/{}/{}",
            scheme.name(),
            out.fcts.len(),
            mean_fct * 1e3,
            out.pfc_core,
            out.pfc_ingress,
            out.pfc_egress
        );
        g.bench_function(&format!("fb_hadoop_70pct_{}", scheme.name()), |b| {
            b.iter(|| {
                black_box(run_fat_tree(
                    scheme,
                    Workload::FbHadoop,
                    0.7,
                    &tiny(),
                    BufferRegime::Pfc,
                    1,
                ))
            })
        });
    }
    g.finish();
}

fn bench_websearch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fct_websearch");
    g.sample_size(10);
    let out = run_fat_tree(
        Scheme::Rocc,
        Workload::WebSearch,
        0.7,
        &tiny(),
        BufferRegime::Pfc,
        1,
    );
    eprintln!(
        "[fig17] RoCC WebSearch: core queue {:.0} B, ingress {:.0} B, egress {:.0} B",
        out.q_core, out.q_ingress, out.q_egress
    );
    g.bench_function("websearch_70pct_rocc", |b| {
        b.iter(|| {
            black_box(run_fat_tree(
                Scheme::Rocc,
                Workload::WebSearch,
                0.7,
                &tiny(),
                BufferRegime::Pfc,
                1,
            ))
        })
    });
    g.finish();
}

fn bench_buffer_regimes(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_regimes");
    g.sample_size(10);
    for (name, regime) in [
        ("unlimited_fig18", BufferRegime::Unlimited),
        ("lossy3x_fig20", BufferRegime::Lossy3x),
    ] {
        let out = run_fat_tree(Scheme::Rocc, Workload::FbHadoop, 0.7, &tiny(), regime, 1);
        eprintln!(
            "[{}] RoCC: drops {}, retx {} B of {} B",
            name, out.drops, out.retx_bytes, out.tx_data_bytes
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_fat_tree(
                    Scheme::Rocc,
                    Workload::FbHadoop,
                    0.7,
                    &tiny(),
                    regime,
                    1,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fct_by_scheme, bench_websearch, bench_buffer_regimes);
criterion_main!(benches);
