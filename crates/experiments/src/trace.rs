//! `repro trace <scenario>`: run one micro scenario with full telemetry
//! and export three artifacts —
//!
//! 1. the typed event timeline as JSONL (one [`SimEvent`] per line),
//! 2. a run summary JSON: per-class event counts, Alg. 1 branch counts,
//!    Alg. 2 transition counts, and the full metrics registry
//!    (counters + FCT / queue-depth / CNP-gap histograms),
//! 3. simulator self-profiling in the `BENCH_sim.json` shape
//!    (events processed, events/sec, wall-clock per simulated second,
//!    peak event-queue length).
//!
//! Two scenarios cover every event class between them:
//!
//! * [`incast`] — N-to-1 RoCC incast with a pinch of injected data loss
//!   and one link flap: drops (fault + link-down), PFC pause/resume, CNP
//!   emission, CP decisions, RP installs/updates, and fault transitions.
//! * [`recovery`] — the chaos blackout (competitors stop as every CNP
//!   dies): the RP side of Alg. 2 in full — fast-recovery doubling up to
//!   the limiter uninstall, with zero feedback help.

use crate::micro;
use crate::scenarios;
use crate::schemes::Scheme;
use crate::Scale;
use rocc_sim::prelude::*;

/// Scenario names accepted by [`run`].
pub const SCENARIOS: [&str; 2] = ["incast", "recovery"];

/// Event counts per class for one traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Packet drops (any cause).
    pub drop: u64,
    /// PFC pause + resume frames.
    pub pfc: u64,
    /// Feedback (CNP) emissions.
    pub cnp: u64,
    /// CP fair-rate update decisions.
    pub cp_decision: u64,
    /// RP state transitions.
    pub rp_transition: u64,
    /// Fault-plan transitions.
    pub fault: u64,
}

impl ClassCounts {
    fn tally(events: &[SimEvent]) -> ClassCounts {
        let mut c = ClassCounts::default();
        for e in events {
            match e.class() {
                EventMask::DROP => c.drop += 1,
                EventMask::PFC => c.pfc += 1,
                EventMask::CNP => c.cnp += 1,
                EventMask::CP_DECISION => c.cp_decision += 1,
                EventMask::RP_TRANSITION => c.rp_transition += 1,
                _ => c.fault += 1,
            }
        }
        c
    }
}

/// Everything one traced run produced.
#[derive(Debug)]
pub struct TraceRun {
    /// Scenario name (an entry of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// The full event timeline, in emission order.
    pub events: Vec<SimEvent>,
    /// Per-class event counts over [`TraceRun::events`].
    pub counts: ClassCounts,
    /// Flows offered.
    pub flows: usize,
    /// Flows that completed within the horizon (0 for the open-ended
    /// `recovery` scenario, whose flows are infinite by design).
    pub completed: usize,
    /// Run summary as one JSON document (counts, decision/transition
    /// breakdowns, metrics registry, profile).
    pub summary_json: String,
    /// Simulator self-profile in the `BENCH_sim.json` shape.
    pub bench_json: String,
}

impl TraceRun {
    /// The timeline as JSONL (one event per line, trailing newline).
    pub fn timeline_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// Count CP decisions of one Alg. 1 branch.
fn cp_kind_count(events: &[SimEvent], want: CpDecisionKind) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e, SimEvent::CpDecision { kind, .. } if *kind == want))
        .count() as u64
}

/// Count RP transitions of one Alg. 2 kind.
fn rp_kind_count(events: &[SimEvent], want: RpTransitionKind) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e, SimEvent::RpTransition { kind, .. } if *kind == want))
        .count() as u64
}

/// Assemble a [`TraceRun`] from a finished simulation.
fn finish(scenario: &'static str, mut sim: Sim, flows: usize) -> TraceRun {
    let completed = sim.trace.fcts.len();
    let bench_json = sim.profile().to_json();
    let metrics_json = sim.trace.telemetry.metrics_json();
    let events = std::mem::take(&mut sim.trace.telemetry.events);
    let counts = ClassCounts::tally(&events);
    let summary_json = format!(
        concat!(
            "{{\"scenario\":\"{}\",\"flows\":{},\"completed\":{},",
            "\"events\":{{\"total\":{},\"drop\":{},\"pfc\":{},\"cnp\":{},",
            "\"cp_decision\":{},\"rp_transition\":{},\"fault\":{}}},",
            "\"cp_decisions\":{{\"md_to_min\":{},\"md_halve\":{},\"pi\":{}}},",
            "\"rp_transitions\":{{\"install\":{},\"rate_update\":{},",
            "\"cp_switch\":{},\"recovery_double\":{},\"uninstall\":{}}},",
            "\"metrics\":{},\"profile\":{}}}"
        ),
        scenario,
        flows,
        completed,
        events.len(),
        counts.drop,
        counts.pfc,
        counts.cnp,
        counts.cp_decision,
        counts.rp_transition,
        counts.fault,
        cp_kind_count(&events, CpDecisionKind::MdToMin),
        cp_kind_count(&events, CpDecisionKind::MdHalve),
        cp_kind_count(&events, CpDecisionKind::Pi),
        rp_kind_count(&events, RpTransitionKind::Install),
        rp_kind_count(&events, RpTransitionKind::RateUpdate),
        rp_kind_count(&events, RpTransitionKind::CpSwitch),
        rp_kind_count(&events, RpTransitionKind::RecoveryDouble),
        rp_kind_count(&events, RpTransitionKind::Uninstall),
        metrics_json,
        bench_json,
    );
    TraceRun {
        scenario,
        events,
        counts,
        flows,
        completed,
        summary_json,
        bench_json,
    }
}

/// N-to-1 RoCC incast on the 40G dumbbell with 0.5% injected data loss
/// and one early link flap on the last sender's access link. Every event
/// class fires: the synchronized start overflows the PFC threshold
/// (pause/resume) and drives the CP through MD and PI branches (CNPs,
/// decisions, RP installs); the fault plan contributes attributed drops
/// and fault transitions.
pub fn incast(scale: Scale) -> TraceRun {
    let (n, size, horizon) = match scale {
        Scale::Quick => (8usize, 2_000_000u64, SimTime::from_millis(200)),
        Scale::Paper => (16, 10_000_000, SimTime::from_millis(1000)),
    };
    let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
    // Link ids follow connect order: 0 is switch→receiver, then one per
    // sender; flap the last sender's access link early in the run.
    let flap_link = LinkId(n);
    let cfg = SimConfig {
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.005)
            .with_flap(
                flap_link,
                SimTime::from_micros(500),
                SimTime::from_micros(1500),
            ),
        // RoCC normally holds per-ingress occupancy far below the 500 KB
        // default xoff (that is the paper's point) — pull the threshold
        // down so the start-of-incast transient exercises the PFC path,
        // but keep N·xoff above Qmax (360 KB) so Alg. 1's MD branch still
        // sees the queue overshoot before PFC freezes the senders.
        pfc: PfcConfig {
            xoff_40g: 64_000,
            xoff_100g: 128_000,
            resume_frac: 0.5,
        },
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.trace.telemetry.collect(EventMask::ALL);
    sim.trace.telemetry.enable_metrics();
    sim.trace.sample_period = Some(SimDuration::from_micros(10));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    let _ = sim.run_until_flows_done(horizon);
    finish("incast", sim, n)
}

/// The chaos blackout, traced: four RoCC flows share the 40G dumbbell
/// until flows 1–3 stop at the same instant every CNP starts dying. From
/// then on only Alg. 2 fast recovery can move flow 0, so the timeline
/// ends in a run of `recovery_double` transitions capped by `uninstall`.
pub fn recovery(scale: Scale) -> TraceRun {
    let (blackout_start, horizon) = match scale {
        Scale::Quick => (SimTime::from_millis(8), SimTime::from_millis(16)),
        Scale::Paper => (SimTime::from_millis(20), SimTime::from_millis(40)),
    };
    let d = scenarios::dumbbell(4, BitRate::from_gbps(40));
    let cfg = SimConfig {
        fault_plan: FaultPlan::default().with_loss_window(
            FaultTarget::Cnp,
            1.0,
            blackout_start,
            SimTime::MAX,
        ),
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.trace.telemetry.collect(EventMask::ALL);
    sim.trace.telemetry.enable_metrics();
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: None,
        });
        if i > 0 {
            sim.stop_flow_at(FlowId(i as u64), blackout_start);
        }
    }
    sim.run_until(horizon);
    finish("recovery", sim, 4)
}

/// Run one scenario by name; `None` for an unknown name.
pub fn run(scenario: &str, scale: Scale) -> Option<TraceRun> {
    match scenario {
        "incast" => Some(incast(scale)),
        "recovery" => Some(recovery(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn braces_balanced(s: &str) {
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    /// The acceptance criterion: the micro trace carries at least one
    /// event of every class the issue names, plus histograms and a
    /// self-profile.
    #[test]
    fn incast_covers_every_event_class() {
        let r = incast(Scale::Quick);
        assert!(r.counts.drop > 0, "no drop events: {:?}", r.counts);
        assert!(r.counts.pfc > 0, "no pfc events: {:?}", r.counts);
        assert!(r.counts.cnp > 0, "no cnp events: {:?}", r.counts);
        assert!(r.counts.cp_decision > 0, "no cp decisions: {:?}", r.counts);
        assert!(r.counts.rp_transition > 0, "no rp transitions: {:?}", r.counts);
        assert_eq!(r.counts.fault, 2, "flap must fire down+up: {:?}", r.counts);
        assert_eq!(r.completed, r.flows, "incast flows must complete");
        // Timeline and summary are structurally sound.
        assert_eq!(r.timeline_jsonl().lines().count(), r.events.len());
        braces_balanced(&r.summary_json);
        braces_balanced(&r.bench_json);
        assert!(r.bench_json.contains("\"events_per_sec\":"));
        assert!(r.summary_json.contains("\"histograms\":"));
    }

    /// Decision-level cross-checks on the incast timeline (EXPERIMENTS.md
    /// §trace): the synchronized 8-to-1 start must push the queue past
    /// Qmax while F is still high, so Alg. 1's MD-to-min branch fires at
    /// least once; the steady state is PI, so PI decisions dominate; and
    /// each of the N sources installs its rate limiter at least once.
    #[test]
    fn incast_decision_telemetry_matches_alg1_and_alg2() {
        let r = incast(Scale::Quick);
        let md = cp_kind_count(&r.events, CpDecisionKind::MdToMin)
            + cp_kind_count(&r.events, CpDecisionKind::MdHalve);
        let pi = cp_kind_count(&r.events, CpDecisionKind::Pi);
        assert!(md >= 1, "incast start must trigger an MD branch");
        assert!(pi > md, "PI must dominate the decision mix");
        let installs = rp_kind_count(&r.events, RpTransitionKind::Install);
        assert!(
            installs >= r.flows as u64,
            "every source must install its limiter: {installs} < {}",
            r.flows
        );
        // Region indices stay in the six auto-tune regions of §3.5.
        for e in &r.events {
            if let SimEvent::CpDecision { region, .. } = e {
                assert!(*region <= 5, "auto-tune region out of range: {region}");
            }
        }
    }

    /// The blackout timeline must show Alg. 2's unaided recovery: doubling
    /// transitions after the blackout instant, capped by an uninstall, and
    /// no accepted-CNP transitions after feedback died.
    #[test]
    fn recovery_timeline_shows_fast_recovery() {
        let r = recovery(Scale::Quick);
        let blackout = SimTime::from_millis(8);
        let doubles = r
            .events
            .iter()
            .filter(|e| {
                matches!(e, SimEvent::RpTransition { t, kind, .. }
                    if *kind == RpTransitionKind::RecoveryDouble && *t >= blackout)
            })
            .count();
        assert!(doubles >= 1, "no fast-recovery doubling after blackout");
        assert!(
            rp_kind_count(&r.events, RpTransitionKind::Uninstall) >= 1,
            "recovery must end in an uninstall"
        );
        // Fault-injected CNP destruction is visible as attributed drops.
        assert!(r.counts.drop > 0, "destroyed CNPs must appear as drops");
        // No CNP emitted by the CP is accepted after the blackout: every
        // post-blackout transition is recovery machinery, not feedback.
        let post_feedback = r.events.iter().any(|e| {
            matches!(e, SimEvent::RpTransition { t, kind, .. }
                if *t > blackout
                    && matches!(
                        kind,
                        RpTransitionKind::Install
                            | RpTransitionKind::RateUpdate
                            | RpTransitionKind::CpSwitch
                    ))
        });
        assert!(!post_feedback, "no CNP can be accepted during a blackout");
    }

    #[test]
    fn run_dispatches_by_name() {
        assert!(run("nope", Scale::Quick).is_none());
        for s in SCENARIOS {
            // Names resolve; actually running them is covered above.
            assert!(["incast", "recovery"].contains(&s));
        }
    }
}
