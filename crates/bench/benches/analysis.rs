//! Benchmarks regenerating the paper's analytic artifacts (Figs. 5–7):
//! the phase-margin surface, the N = 2 vs N = 10 Bode comparison, and the
//! margin/bandwidth-vs-N series behind the auto-tuner.

use criterion::{criterion_group, criterion_main, Criterion};
use rocc_experiments::analytic;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    // Print the headline result once so `cargo bench` output carries the
    // reproduced numbers, not just timings.
    let pts = analytic::fig5(10);
    let stable = pts.iter().filter(|p| p.phase_margin_deg > 0.0).count();
    eprintln!(
        "[fig5] {} of {} (alpha, beta) grid points stable at N=2",
        stable,
        pts.len()
    );
    c.bench_function("fig5_phase_margin_surface_10x10", |b| {
        b.iter(|| black_box(analytic::fig5(black_box(10))))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let r = analytic::fig6();
    eprintln!(
        "[fig6] phase margin N=2: {:+.1} deg, N=10: {:+.1} deg (paper: ~+50 / ~-50)",
        r.pm_n2, r.pm_n10
    );
    c.bench_function("fig6_bode_n2_vs_n10", |b| {
        b.iter(|| black_box(analytic::fig6()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let series = analytic::fig7();
    let worst = series[5]
        .points
        .iter()
        .map(|p| p.phase_margin_deg)
        .fold(f64::INFINITY, f64::min);
    eprintln!(
        "[fig7] smallest gain pair stays stable for all N (min margin {:.1} deg)",
        worst
    );
    c.bench_function("fig7_margin_and_bandwidth_vs_n", |b| {
        b.iter(|| black_box(analytic::fig7()))
    });
}

criterion_group!(benches, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(benches);
