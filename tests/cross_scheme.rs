//! Cross-crate integration: every congestion-control scheme drives real
//! traffic end-to-end through the fat-tree substrate.

use rocc::experiments::fct::{run_fat_tree, BufferRegime, FatTreeConfig, Workload};
use rocc::experiments::Scheme;
use rocc::sim::prelude::SimDuration;

fn tiny() -> FatTreeConfig {
    FatTreeConfig {
        hosts_per_edge: 3,
        trunks: 1,
        window: SimDuration::from_millis(2),
        max_drain: SimDuration::from_millis(500),
        reps: 1,
    }
}

#[test]
fn every_scheme_completes_a_fat_tree_workload() {
    for scheme in Scheme::comparison_set() {
        let out = run_fat_tree(
            scheme,
            Workload::FbHadoop,
            0.5,
            &tiny(),
            BufferRegime::Pfc,
            3,
        );
        assert!(
            out.all_completed,
            "{}: {} of {} flows completed",
            scheme.name(),
            out.fcts.len(),
            out.offered_flows
        );
        assert_eq!(out.drops, 0, "{}: lossless run must not drop", scheme.name());
        assert!(
            out.fcts.iter().all(|&(_, fct)| fct > 0.0),
            "{}: non-positive FCT",
            scheme.name()
        );
    }
}

#[test]
fn rocc_keeps_queues_near_reference_in_the_fat_tree() {
    let out = run_fat_tree(
        Scheme::Rocc,
        Workload::WebSearch,
        0.7,
        &tiny(),
        BufferRegime::Pfc,
        5,
    );
    // The paper's Fig. 17: RoCC's congested queues average near (below)
    // Qref. At this reduced scale the 2:1 host oversubscription makes the
    // egress-edge ports the hot congestion points; the core trunks stay
    // lightly loaded. Assert the hot class is bounded by Qref-ish depth
    // and actually saw congestion.
    assert!(
        out.q_egress < 250_000.0,
        "egress queue too deep: {:.0} B (Qref = 150 KB for 40G)",
        out.q_egress
    );
    assert!(
        out.q_egress > 1_000.0,
        "egress never congested — workload broken"
    );
    assert!(
        out.q_core < 450_000.0,
        "core queue too deep: {:.0} B",
        out.q_core
    );
}

#[test]
fn unlimited_buffer_rocc_stays_shallow_dcqcn_goes_deep() {
    // Fig. 18's mechanism: without PFC, DCQCN's buffer demand explodes
    // while RoCC holds near the reference.
    let rocc = run_fat_tree(
        Scheme::Rocc,
        Workload::FbHadoop,
        0.7,
        &tiny(),
        BufferRegime::Unlimited,
        7,
    );
    let dcqcn = run_fat_tree(
        Scheme::Dcqcn,
        Workload::FbHadoop,
        0.7,
        &tiny(),
        BufferRegime::Unlimited,
        7,
    );
    let rocc_max = rocc.q_core.max(rocc.q_ingress).max(rocc.q_egress);
    let dcqcn_max = dcqcn.q_core.max(dcqcn.q_ingress).max(dcqcn.q_egress);
    assert!(
        dcqcn_max > 2.0 * rocc_max,
        "DCQCN ({dcqcn_max:.0} B) must need much deeper buffers than RoCC ({rocc_max:.0} B)"
    );
}

#[test]
fn lossy_fabric_recovers_with_go_back_n() {
    for scheme in [Scheme::Dcqcn, Scheme::Rocc] {
        let out = run_fat_tree(
            scheme,
            Workload::FbHadoop,
            0.7,
            &tiny(),
            BufferRegime::Lossy3x,
            11,
        );
        assert!(
            out.all_completed,
            "{}: flows must complete despite drops",
            scheme.name()
        );
    }
}
