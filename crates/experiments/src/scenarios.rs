//! Topology builders for every evaluation scenario in the paper.

use rocc_sim::prelude::*;

/// Paper link propagation delay (§6): 1.5 µs everywhere.
pub fn link_delay() -> SimDuration {
    SimDuration::from_nanos(1_500)
}

/// A built scenario: the topology plus the node/port handles experiments
/// need to attach flows and probes.
pub struct Dumbbell {
    /// The topology.
    pub topo: Topology,
    /// Sender hosts.
    pub senders: Vec<NodeId>,
    /// The single receiver.
    pub receiver: NodeId,
    /// The switch.
    pub switch: NodeId,
    /// Switch egress port toward the receiver (the congestion point).
    pub bottleneck_port: PortId,
}

/// §6.1 micro-benchmark: N sources → one switch → one destination, all
/// links `rate`, delay 1.5 µs. The switch-to-destination link is the single
/// bottleneck.
pub fn dumbbell(n_senders: usize, rate: BitRate) -> Dumbbell {
    let mut b = TopologyBuilder::new();
    let switch = b.add_switch("sw", NodeRole::Switch);
    let receiver = b.add_host("dst");
    // Connecting switch-side first makes the switch's port toward the
    // receiver PortId(0).
    let (bottleneck_port, _) = b.connect(switch, receiver, rate, link_delay());
    let senders = (0..n_senders)
        .map(|i| {
            let h = b.add_host(format!("src{i}"));
            b.connect(h, switch, rate, link_delay());
            h
        })
        .collect();
    Dumbbell {
        topo: b.build(),
        senders,
        receiver,
        switch,
        bottleneck_port,
    }
}

/// Fig. 10 multi-bottleneck scenario handles.
pub struct MultiBottleneck {
    /// The topology.
    pub topo: Topology,
    /// A0 (source of the two-CP flow D0).
    pub a0: NodeId,
    /// A1..A4 (sources of D1..D4).
    pub a: Vec<NodeId>,
    /// B5 (source of D5).
    pub b5: NodeId,
    /// B0 (destination of D0 and D5).
    pub b0: NodeId,
    /// B1..B4 (destinations of D1..D4).
    pub b: Vec<NodeId>,
    /// S0 (ingress switch).
    pub s0: NodeId,
    /// S1 (egress switch).
    pub s1: NodeId,
}

/// Fig. 10: A0..A4 behind S0, B0..B5 behind S1; access links 10 Gb/s, the
/// S0–S1 trunk 40 Gb/s. D0 = A0→B0 crosses two CPs; D5 = B5→B0 shares only
/// the last hop; D1..D4 = Ai→Bi share only the trunk.
pub fn multi_bottleneck() -> MultiBottleneck {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_switch("S0", NodeRole::EdgeSwitch);
    let s1 = b.add_switch("S1", NodeRole::EdgeSwitch);
    b.connect(s0, s1, BitRate::from_gbps(40), link_delay());
    let acc = BitRate::from_gbps(10);
    let a0 = b.add_host("A0");
    b.connect(a0, s0, acc, link_delay());
    let b0 = b.add_host("B0");
    b.connect(b0, s1, acc, link_delay());
    let b5 = b.add_host("B5");
    b.connect(b5, s1, acc, link_delay());
    let mut a = Vec::new();
    let mut bs = Vec::new();
    for i in 1..=4 {
        let ai = b.add_host(format!("A{i}"));
        b.connect(ai, s0, acc, link_delay());
        a.push(ai);
        let bi = b.add_host(format!("B{i}"));
        b.connect(bi, s1, acc, link_delay());
        bs.push(bi);
    }
    MultiBottleneck {
        topo: b.build(),
        a0,
        a,
        b5,
        b0,
        b: bs,
        s0,
        s1,
    }
}

/// §6.1 asymmetric-topology scenario handles.
pub struct Asymmetric {
    /// The topology.
    pub topo: Topology,
    /// A0..A4: sources behind S0 on 40 Gb/s access links.
    pub slow_sources: Vec<NodeId>,
    /// A5, A6: sources behind S1 on 100 Gb/s access links.
    pub fast_sources: Vec<NodeId>,
    /// The destination B0 behind S2 (100 Gb/s).
    pub dst: NodeId,
}

/// Asymmetric topology: S0 (5×40G hosts) and S1 (2×100G hosts) feed S2
/// over 100G trunks; B0 hangs off S2 at 100G. All 7 flows share S2→B0, so
/// the fair share is 100/7 ≈ 14.29 Gb/s despite the asymmetric access.
pub fn asymmetric() -> Asymmetric {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_switch("S0", NodeRole::EdgeSwitch);
    let s1 = b.add_switch("S1", NodeRole::EdgeSwitch);
    let s2 = b.add_switch("S2", NodeRole::CoreSwitch);
    let g100 = BitRate::from_gbps(100);
    b.connect(s0, s2, g100, link_delay());
    b.connect(s1, s2, g100, link_delay());
    let dst = b.add_host("B0");
    b.connect(s2, dst, g100, link_delay());
    let slow_sources = (0..5)
        .map(|i| {
            let h = b.add_host(format!("A{i}"));
            b.connect(h, s0, BitRate::from_gbps(40), link_delay());
            h
        })
        .collect();
    let fast_sources = (5..7)
        .map(|i| {
            let h = b.add_host(format!("A{i}"));
            b.connect(h, s1, g100, link_delay());
            h
        })
        .collect();
    Asymmetric {
        topo: b.build(),
        slow_sources,
        fast_sources,
        dst,
    }
}

/// §6.3 two-level fat-tree handles.
pub struct FatTree {
    /// The topology.
    pub topo: Topology,
    /// Hosts behind edge 0 and edge 1 (the senders).
    pub senders: Vec<NodeId>,
    /// Hosts behind edge 2 (the receivers).
    pub receivers: Vec<NodeId>,
    /// The three core switches.
    pub cores: Vec<NodeId>,
    /// The three edge switches.
    pub edges: Vec<NodeId>,
    /// Core egress ports toward edge 2 (the "core" CPs of Fig. 17).
    pub core_cp_ports: Vec<(NodeId, PortId)>,
    /// Edge-0/1 uplink ports toward the cores (the "ingress edge" CPs).
    pub ingress_cp_ports: Vec<(NodeId, PortId)>,
    /// Edge-2 ports toward receivers (the "egress edge" CPs).
    pub egress_cp_ports: Vec<(NodeId, PortId)>,
}

/// Build the paper's fat-tree: 3 cores, 3 edges, `trunks` 100 GbE links per
/// edge-core pair, `hosts_per_edge` hosts per edge at 40 GbE. The paper
/// uses 30 hosts and 2 trunks (2:1 oversubscription); the quick profile
/// scales both down, preserving the oversubscription ratio.
pub fn fat_tree(hosts_per_edge: usize, trunks: usize) -> FatTree {
    let mut b = TopologyBuilder::new();
    let cores: Vec<NodeId> = (0..3)
        .map(|i| b.add_switch(format!("core{i}"), NodeRole::CoreSwitch))
        .collect();
    let edges: Vec<NodeId> = (0..3)
        .map(|i| b.add_switch(format!("edge{i}"), NodeRole::EdgeSwitch))
        .collect();
    let mut core_ports = Vec::new(); // (core, port, edge_idx)
    let mut edge_up_ports = Vec::new(); // (edge_idx, port)
    for (ei, &e) in edges.iter().enumerate() {
        for &c in &cores {
            for _ in 0..trunks {
                let (pe, pc) = b.connect(e, c, BitRate::from_gbps(100), link_delay());
                core_ports.push((c, pc, ei));
                edge_up_ports.push((ei, pe));
            }
        }
    }
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    let mut egress_cp_ports = Vec::new();
    for (ei, &e) in edges.iter().enumerate() {
        for h in 0..hosts_per_edge {
            let host = b.add_host(format!("h{ei}_{h}"));
            let (pe, _) = b.connect(e, host, BitRate::from_gbps(40), link_delay());
            if ei == 2 {
                receivers.push(host);
                egress_cp_ports.push((e, pe));
            } else {
                senders.push(host);
            }
        }
    }
    let core_cp_ports = core_ports
        .iter()
        .filter(|&&(_, _, ei)| ei == 2)
        .map(|&(c, p, _)| (c, p))
        .collect();
    let ingress_cp_ports = edge_up_ports
        .iter()
        .filter(|&&(ei, _)| ei != 2)
        .map(|&(ei, p)| (edges[ei], p))
        .collect();
    FatTree {
        topo: b.build(),
        senders,
        receivers,
        cores,
        edges,
        core_cp_ports,
        ingress_cp_ports,
        egress_cp_ports,
    }
}

/// §6.2 DPDK testbed shape: 3 iPerf-like sources → switch → 1 destination,
/// all 10 GbE.
pub fn testbed() -> Dumbbell {
    dumbbell(3, BitRate::from_gbps(10))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::FlowId;

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(10, BitRate::from_gbps(40));
        assert_eq!(d.senders.len(), 10);
        assert_eq!(d.topo.hosts().len(), 11);
        // The switch routes every sender's flow out the bottleneck port.
        for &s in &d.senders {
            let p = d.topo.route(d.switch, d.receiver, FlowId(1)).unwrap();
            assert_eq!(p, d.bottleneck_port);
            assert!(d.topo.route(s, d.receiver, FlowId(1)).is_some());
        }
    }

    #[test]
    fn multi_bottleneck_paths() {
        let m = multi_bottleneck();
        // D0 (A0→B0) must traverse both switches.
        let p0 = m.topo.route(m.a0, m.b0, FlowId(0)).unwrap();
        assert_eq!(m.topo.neighbor(m.a0, p0), m.s0);
        let p1 = m.topo.route(m.s0, m.b0, FlowId(0)).unwrap();
        assert_eq!(m.topo.neighbor(m.s0, p1), m.s1);
        // D5 (B5→B0) only touches S1.
        let p5 = m.topo.route(m.b5, m.b0, FlowId(5)).unwrap();
        assert_eq!(m.topo.neighbor(m.b5, p5), m.s1);
    }

    #[test]
    fn asymmetric_shape() {
        let a = asymmetric();
        assert_eq!(a.slow_sources.len(), 5);
        assert_eq!(a.fast_sources.len(), 2);
        // Every source reaches the destination.
        for &s in a.slow_sources.iter().chain(&a.fast_sources) {
            assert!(a.topo.route(s, a.dst, FlowId(9)).is_some());
        }
    }

    #[test]
    fn fat_tree_shape_and_ecmp() {
        let f = fat_tree(4, 2);
        assert_eq!(f.senders.len(), 8);
        assert_eq!(f.receivers.len(), 4);
        assert_eq!(f.cores.len(), 3);
        // Edge 0 has 3 cores × 2 trunks = 6 equal-cost uplinks per
        // receiver destination.
        let cands = f.topo.route_candidates(f.edges[0], f.receivers[0]);
        assert_eq!(cands.len(), 6);
        // Core CPs: 3 cores × 2 trunks toward edge 2.
        assert_eq!(f.core_cp_ports.len(), 6);
        // Ingress-edge CPs: edges 0 and 1 × 6 uplinks.
        assert_eq!(f.ingress_cp_ports.len(), 12);
        assert_eq!(f.egress_cp_ports.len(), 4);
    }

    #[test]
    fn fat_tree_sender_reaches_every_receiver() {
        let f = fat_tree(3, 1);
        for &s in &f.senders {
            for &r in &f.receivers {
                assert!(f.topo.route(s, r, FlowId(3)).is_some());
            }
        }
    }
}
