//! Event schedulers: the hierarchical timing wheel and the binary-heap
//! oracle behind the kernel's event queue.
//!
//! The engine dispatches events in `(at, seq)` order — absolute
//! nanosecond timestamp, then insertion sequence number — and every run
//! must be bit-for-bit deterministic. Both backends here implement that
//! total order exactly; they differ only in cost:
//!
//! * [`HeapScheduler`] is the original `BinaryHeap<Reverse<Scheduled>>`:
//!   O(log n) per push/pop with whole-`Scheduled` sift moves. It is kept
//!   as the *differential-testing oracle* — trivially correct by
//!   construction — and selectable via `ROCC_SCHEDULER=heap`.
//! * [`TimingWheel`] is a hierarchical timing wheel (Varghese & Lauck):
//!   8 levels × 256 slots of FIFO buckets keyed by the bytes of the
//!   timestamp, covering the full `u64` nanosecond range (so the
//!   `SimTime::MAX` sentinel needs no special case). Push and pop are
//!   O(1) amortized; per-level occupancy bitmaps make the next-slot scan
//!   four word tests. This is the default backend.
//!
//! ## Why the wheel preserves `(at, seq)` order bit-identically
//!
//! Level = index of the highest byte in which `at` differs from the
//! wheel's clock `now`; slot = that byte of `at`. Three invariants carry
//! the proof:
//!
//! 1. **Same `at` ⇒ same bucket, FIFO.** Two events with equal `at` land
//!    in the same slot of the same level at every point in time, and
//!    pushes append — so equal-timestamp runs always pop in seq order.
//! 2. **Level-0 buckets are single-instant.** An occupied level-0 slot
//!    shares its upper 56 bits with `now`, so the slot index pins the
//!    full timestamp: the lowest occupied slot holds exactly the global
//!    minimum's bucket.
//! 3. **Cascades don't reorder.** Expanding the lowest occupied slot of
//!    the lowest occupied overflow level re-inserts its FIFO bucket
//!    front-to-back into strictly lower levels; relative order of
//!    equal-`at` events is preserved (they move together, in order), and
//!    no other bucket's level assignment changes because the clock only
//!    advances within the expanded slot's window.
//!
//! ## Pushes into the past
//!
//! The run loops pop an event to *look* at it and requeue it when it
//! lies beyond the run's deadline; the pop advanced the wheel clock to
//! that event's timestamp, but the kernel clock rewinds to the deadline.
//! A later `schedule()` may then legitimately target the gap. The wheel
//! handles any push below its clock by **rebasing**: drain every bucket
//! and re-insert relative to the new, smaller clock. O(n), but it can
//! only happen right after a deadline requeue — never in the steady
//! state — and correctness is what's non-negotiable here. The
//! always-counted [`SchedStats::rebases`] makes the cost observable.

use crate::engine::Event;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One queued event: absolute due time, insertion sequence number (the
/// deterministic tiebreak), and the event payload.
#[derive(Debug)]
pub struct Scheduled {
    /// Absolute due time.
    pub at: SimTime,
    /// Kernel-issued insertion sequence number; orders same-instant
    /// events deterministically.
    pub seq: u64,
    /// The event payload.
    pub ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Overflow levels in the timing wheel. 8 levels × 8 bits per level
/// cover the entire `u64` nanosecond axis, so any representable
/// timestamp — including the `SimTime::MAX` "never" sentinel — has a
/// bucket.
pub const WHEEL_LEVELS: usize = 8;
/// Slot-index bits per level (256 slots).
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// `u64` words in a per-level occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

/// Always-on scheduler introspection counters (plain integer bumps on
/// cold paths; the profiler exports them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Overflow-slot expansions performed by pops.
    pub cascades: u64,
    /// Events moved to a lower level by those expansions.
    pub cascaded_events: u64,
    /// Full drain-and-reinsert rebases triggered by pushes below the
    /// wheel clock (deadline-requeue aftermath; see module docs).
    pub rebases: u64,
    /// Highest wheel level any event was ever inserted at.
    pub max_level: u8,
}

/// The scheduling contract the kernel drives and both backends honor:
/// events pop in ascending `(at, seq)` order, with [`Scheduler::requeue`]
/// restoring the most recently popped minimum to the head.
pub trait Scheduler {
    /// Insert an event. `at` may be below the most recently popped
    /// timestamp (see the module docs on rebasing); order among live
    /// entries is always `(at, seq)`.
    fn push(&mut self, s: Scheduled);

    /// Remove and return the minimum `(at, seq)` entry.
    fn pop(&mut self) -> Option<Scheduled>;

    /// Put back an event just obtained from [`Scheduler::pop`], restoring
    /// it to the head of the queue. Precondition: `s` was the most recent
    /// pop and nothing was pushed or popped since — i.e. `s` is still ≤
    /// every live entry. (The run loops use this for not-yet-due events.)
    fn requeue(&mut self, s: Scheduled);

    /// Live entry count.
    fn len(&self) -> usize;

    /// Whether no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live entry, in arbitrary order (the snapshot codec sorts by
    /// `(at, seq)` itself so the serialized form is backend-independent).
    fn entries(&self) -> Vec<(SimTime, u64, &Event)>;

    /// Introspection counters (all-zero for the heap).
    fn stats(&self) -> SchedStats;

    /// Current per-level entry counts (all-zero for the heap), for the
    /// profiler's bucket-occupancy series.
    fn level_depths(&self) -> [u64; WHEEL_LEVELS];

    /// Backend name for reports ("heap" / "wheel").
    fn name(&self) -> &'static str;
}

// ------------------------------------------------------------- heap oracle

/// The original binary-heap scheduler, kept as the differential-testing
/// oracle (`ROCC_SCHEDULER=heap`).
#[derive(Debug, Default)]
pub struct HeapScheduler {
    heap: BinaryHeap<Reverse<Scheduled>>,
}

impl Scheduler for HeapScheduler {
    #[inline]
    fn push(&mut self, s: Scheduled) {
        self.heap.push(Reverse(s));
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop().map(|r| r.0)
    }

    #[inline]
    fn requeue(&mut self, s: Scheduled) {
        self.heap.push(Reverse(s));
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn entries(&self) -> Vec<(SimTime, u64, &Event)> {
        self.heap.iter().map(|r| (r.0.at, r.0.seq, &r.0.ev)).collect()
    }

    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }

    fn level_depths(&self) -> [u64; WHEEL_LEVELS] {
        [0; WHEEL_LEVELS]
    }

    fn name(&self) -> &'static str {
        "heap"
    }
}

// ------------------------------------------------------------ timing wheel

/// Hierarchical timing wheel: 8 levels × 256 FIFO buckets with per-level
/// occupancy bitmaps. See the module docs for layout and ordering proof.
#[derive(Debug)]
pub struct TimingWheel {
    /// The wheel clock: the timestamp of the most recent pop (0 before
    /// any). All bucket/level assignments are relative to it.
    now_ns: u64,
    /// Live entry count.
    len: usize,
    /// `WHEEL_LEVELS * SLOTS` FIFO buckets, indexed `level * SLOTS + slot`.
    /// Buckets keep their allocation once grown, so steady-state churn
    /// allocates nothing.
    buckets: Vec<VecDeque<Scheduled>>,
    /// Per-level slot-occupancy bitmaps.
    occ: [[u64; OCC_WORDS]; WHEEL_LEVELS],
    /// Per-level live entry counts (drives the cascade scan and the
    /// profiler's occupancy series).
    level_len: [u64; WHEEL_LEVELS],
    /// Scratch buffer reused by cascades so expanding a bucket never
    /// allocates in steady state.
    scratch: Vec<Scheduled>,
    stats: SchedStats,
}

impl Default for TimingWheel {
    fn default() -> Self {
        TimingWheel {
            now_ns: 0,
            len: 0,
            buckets: (0..WHEEL_LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [[0; OCC_WORDS]; WHEEL_LEVELS],
            level_len: [0; WHEEL_LEVELS],
            scratch: Vec::new(),
            stats: SchedStats::default(),
        }
    }
}

/// Index of the highest byte in which `at` differs from `now` (0 when
/// equal): the wheel level of an entry due at `at`.
#[inline]
fn level_of(at: u64, now: u64) -> usize {
    let diff = at ^ now;
    if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros() as usize) >> 3
    }
}

/// Lowest set slot index in a level's occupancy bitmap.
#[inline]
fn first_occupied(occ: &[u64; OCC_WORDS]) -> Option<usize> {
    for (w, &bits) in occ.iter().enumerate() {
        if bits != 0 {
            return Some((w << 6) | bits.trailing_zeros() as usize);
        }
    }
    None
}

impl TimingWheel {
    /// Bucket/bitmap insert relative to the current clock. Does not touch
    /// `len` (cascades move entries without changing the total).
    #[inline]
    fn insert(&mut self, s: Scheduled) {
        let at = s.at.as_nanos();
        debug_assert!(at >= self.now_ns, "insert below the wheel clock");
        let lvl = level_of(at, self.now_ns);
        let slot = ((at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[(lvl << SLOT_BITS) | slot].push_back(s);
        self.occ[lvl][slot >> 6] |= 1u64 << (slot & 63);
        self.level_len[lvl] += 1;
        if lvl as u8 > self.stats.max_level {
            self.stats.max_level = lvl as u8;
        }
    }

    /// Drain every bucket and re-insert relative to a smaller clock.
    /// Per-bucket FIFO order is preserved, and equal-`at` events always
    /// share a bucket, so `(at, seq)` order survives the rebase.
    #[cold]
    fn rebase(&mut self, new_now_ns: u64) {
        self.stats.rebases += 1;
        let mut all = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        self.occ = [[0; OCC_WORDS]; WHEEL_LEVELS];
        self.level_len = [0; WHEEL_LEVELS];
        self.now_ns = new_now_ns;
        for s in all {
            self.insert(s);
        }
    }

    /// Expand the lowest occupied slot of the lowest occupied overflow
    /// level into lower levels, advancing the clock to that slot's
    /// window start. Caller guarantees level 0 is empty and `len > 0`.
    #[cold]
    fn cascade(&mut self) {
        let lvl = (1..WHEEL_LEVELS)
            .find(|&l| self.level_len[l] > 0)
            .expect("cascade called on an empty wheel");
        let slot = first_occupied(&self.occ[lvl]).expect("level_len/occ out of sync");
        // The slot's window start: bytes above `lvl` from the clock, byte
        // `lvl` = slot, lower bytes zero. Occupied slots are never behind
        // the cursor (no entries below the clock), so this only advances.
        let keep_above = if lvl == WHEEL_LEVELS - 1 {
            0
        } else {
            self.now_ns & !((1u64 << (SLOT_BITS * (lvl as u32 + 1))) - 1)
        };
        let new_now = keep_above | ((slot as u64) << (SLOT_BITS * lvl as u32));
        debug_assert!(new_now > self.now_ns);
        self.now_ns = new_now;
        let idx = (lvl << SLOT_BITS) | slot;
        let mut moved = std::mem::take(&mut self.scratch);
        moved.extend(self.buckets[idx].drain(..));
        self.occ[lvl][slot >> 6] &= !(1u64 << (slot & 63));
        self.level_len[lvl] -= moved.len() as u64;
        self.stats.cascades += 1;
        self.stats.cascaded_events += moved.len() as u64;
        // Re-inserts land strictly below `lvl`: every moved timestamp
        // shares bytes ≥ lvl with the new clock.
        for s in moved.drain(..) {
            self.insert(s);
        }
        self.scratch = moved;
    }
}

impl Scheduler for TimingWheel {
    #[inline]
    fn push(&mut self, s: Scheduled) {
        if s.at.as_nanos() < self.now_ns {
            self.rebase(s.at.as_nanos());
        }
        self.insert(s);
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.level_len[0] > 0 {
                // Level-0 slots pin full timestamps (invariant 2): the
                // lowest occupied slot is the global minimum's bucket,
                // and its FIFO front is the minimum (invariant 1).
                let slot = first_occupied(&self.occ[0]).expect("level_len/occ out of sync");
                let bucket = &mut self.buckets[slot];
                let s = bucket.pop_front().expect("occupied slot with empty bucket");
                if bucket.is_empty() {
                    self.occ[0][slot >> 6] &= !(1u64 << (slot & 63));
                }
                self.level_len[0] -= 1;
                self.len -= 1;
                self.now_ns = s.at.as_nanos();
                return Some(s);
            }
            self.cascade();
        }
    }

    #[inline]
    fn requeue(&mut self, s: Scheduled) {
        // `s` was the most recent pop, so it is ≤ every live entry:
        // front-pushed into its bucket it becomes the head again, even
        // when the bucket already holds equal-`at`, later-seq events.
        let at = s.at.as_nanos();
        if at < self.now_ns {
            self.rebase(at);
        }
        let lvl = level_of(at, self.now_ns);
        let slot = ((at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[(lvl << SLOT_BITS) | slot].push_front(s);
        self.occ[lvl][slot >> 6] |= 1u64 << (slot & 63);
        self.level_len[lvl] += 1;
        self.len += 1;
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn entries(&self) -> Vec<(SimTime, u64, &Event)> {
        self.buckets
            .iter()
            .flatten()
            .map(|s| (s.at, s.seq, &s.ev))
            .collect()
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }

    fn level_depths(&self) -> [u64; WHEEL_LEVELS] {
        self.level_len
    }

    fn name(&self) -> &'static str {
        "wheel"
    }
}

// ---------------------------------------------------------------- backend

/// Which scheduler backend the kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The binary-heap oracle.
    Heap,
    /// The hierarchical timing wheel (default).
    Wheel,
}

impl Backend {
    /// Resolve the backend from the `ROCC_SCHEDULER` environment variable
    /// (`heap` | `wheel`; unset or empty means wheel). The choice lives
    /// outside [`crate::config::SimConfig`] on purpose: both backends
    /// produce bit-identical schedules, so it must not perturb the
    /// config digest that snapshots and observatory goldens bind to.
    pub fn from_env() -> Backend {
        match std::env::var("ROCC_SCHEDULER").as_deref() {
            Ok("heap") => Backend::Heap,
            Ok("wheel") | Ok("") | Err(_) => Backend::Wheel,
            Ok(other) => panic!("ROCC_SCHEDULER={other:?}: expected \"heap\" or \"wheel\""),
        }
    }

    /// Stable lowercase name, as recorded in bench documents.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Heap => "heap",
            Backend::Wheel => "wheel",
        }
    }
}

/// Enum dispatcher the kernel embeds: static dispatch over the two
/// backends (one predictable branch per op, no vtable), while the
/// [`Scheduler`] trait stays available for differential tests that drive
/// backends generically.
// One instance lives embedded in the kernel for the whole run; boxing
// the wheel to shrink the enum would put a pointer chase on every
// push/pop, which is exactly what this module exists to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SchedulerImpl {
    /// Binary-heap oracle.
    Heap(HeapScheduler),
    /// Hierarchical timing wheel.
    Wheel(TimingWheel),
}

impl SchedulerImpl {
    /// Fresh, empty scheduler of the given backend.
    pub fn new(backend: Backend) -> Self {
        match backend {
            Backend::Heap => SchedulerImpl::Heap(HeapScheduler::default()),
            Backend::Wheel => SchedulerImpl::Wheel(TimingWheel::default()),
        }
    }

    /// Which backend this is.
    pub fn backend(&self) -> Backend {
        match self {
            SchedulerImpl::Heap(_) => Backend::Heap,
            SchedulerImpl::Wheel(_) => Backend::Wheel,
        }
    }
}

impl Scheduler for SchedulerImpl {
    #[inline]
    fn push(&mut self, s: Scheduled) {
        match self {
            SchedulerImpl::Heap(h) => h.push(s),
            SchedulerImpl::Wheel(w) => w.push(s),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled> {
        match self {
            SchedulerImpl::Heap(h) => h.pop(),
            SchedulerImpl::Wheel(w) => w.pop(),
        }
    }

    #[inline]
    fn requeue(&mut self, s: Scheduled) {
        match self {
            SchedulerImpl::Heap(h) => h.requeue(s),
            SchedulerImpl::Wheel(w) => w.requeue(s),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            SchedulerImpl::Heap(h) => h.len(),
            SchedulerImpl::Wheel(w) => w.len(),
        }
    }

    fn entries(&self) -> Vec<(SimTime, u64, &Event)> {
        match self {
            SchedulerImpl::Heap(h) => h.entries(),
            SchedulerImpl::Wheel(w) => w.entries(),
        }
    }

    fn stats(&self) -> SchedStats {
        match self {
            SchedulerImpl::Heap(h) => Scheduler::stats(h),
            SchedulerImpl::Wheel(w) => Scheduler::stats(w),
        }
    }

    fn level_depths(&self) -> [u64; WHEEL_LEVELS] {
        match self {
            SchedulerImpl::Heap(h) => h.level_depths(),
            SchedulerImpl::Wheel(w) => w.level_depths(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            SchedulerImpl::Heap(h) => h.name(),
            SchedulerImpl::Wheel(w) => w.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev() -> Event {
        Event::Sample
    }

    fn sch(at: u64, seq: u64) -> Scheduled {
        Scheduled {
            at: SimTime::from_nanos(at),
            seq,
            ev: ev(),
        }
    }

    /// Drain a scheduler completely, returning the `(at, seq)` pop order.
    fn drain(s: &mut impl Scheduler) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(x) = s.pop() {
            out.push((x.at.as_nanos(), x.seq));
        }
        out
    }

    #[test]
    fn same_timestamp_bursts_pop_in_seq_order() {
        // Satellite: same-timestamp FIFO bursts. A burst of events at one
        // instant interleaved with other instants must pop in (at, seq).
        for mk in [
            || Box::new(SchedulerImpl::new(Backend::Wheel)),
            || Box::new(SchedulerImpl::new(Backend::Heap)),
        ] {
            let mut s = mk();
            let mut seq = 0u64;
            let mut expect = Vec::new();
            for at in [500u64, 100, 500, 500, 100, 7, 500] {
                seq += 1;
                s.push(sch(at, seq));
                expect.push((at, seq));
            }
            expect.sort_unstable();
            assert_eq!(drain(&mut *s), expect, "{} backend", s.name());
        }
    }

    #[test]
    fn far_future_events_cascade_down_in_order() {
        // Satellite: far-future overflow-level cascade. Timestamps spread
        // across every wheel level, including the u64::MAX sentinel.
        let mut w = TimingWheel::default();
        let ats = [
            3u64,
            250,
            0x1_23,
            0x45_67_89,
            0xAB_CD_EF_01,
            0x12_34_56_78_9A,
            0xFE_DC_BA_98_76_54_32,
            u64::MAX,
        ];
        for (i, &at) in ats.iter().enumerate() {
            w.push(sch(at, i as u64 + 1));
        }
        assert_eq!(Scheduler::stats(&w).max_level as usize, WHEEL_LEVELS - 1);
        let order = drain(&mut w);
        let mut expect: Vec<(u64, u64)> =
            ats.iter().enumerate().map(|(i, &a)| (a, i as u64 + 1)).collect();
        expect.sort_unstable();
        assert_eq!(order, expect);
        assert!(
            Scheduler::stats(&w).cascades > 0,
            "multi-level spread must cascade"
        );
        assert_eq!(
            Scheduler::stats(&w).cascaded_events >= ats.len() as u64 - 2,
            true,
            "most events lived above level 0"
        );
    }

    #[test]
    fn schedule_during_dispatch_at_current_tick_stays_fifo() {
        // Satellite: schedule-during-dispatch at the current tick. While
        // dispatching an event at t (wheel clock == t), new events pushed
        // at exactly t must run after already-queued ones at t, in seq
        // order — the engine's zero-delay self-reschedule pattern.
        let mut w = TimingWheel::default();
        w.push(sch(1000, 1));
        w.push(sch(1000, 2));
        let first = w.pop().unwrap();
        assert_eq!((first.at.as_nanos(), first.seq), (1000, 1));
        // "dispatch" of seq 1 schedules two more events at the same tick
        // and one in the future.
        w.push(sch(1000, 3));
        w.push(sch(1010, 4));
        w.push(sch(1000, 5));
        assert_eq!(drain(&mut w), vec![(1000, 2), (1000, 3), (1000, 5), (1010, 4)]);
    }

    #[test]
    fn requeue_restores_the_head_before_equal_timestamp_events() {
        for mk in [
            || SchedulerImpl::new(Backend::Wheel),
            || SchedulerImpl::new(Backend::Heap),
        ] {
            let mut s = mk();
            s.push(sch(42, 1));
            s.push(sch(42, 2));
            s.push(sch(42, 3));
            let head = s.pop().unwrap();
            assert_eq!(head.seq, 1);
            s.requeue(head);
            assert_eq!(
                drain(&mut s),
                vec![(42, 1), (42, 2), (42, 3)],
                "{} backend: requeue must restore the head",
                s.name()
            );
        }
    }

    #[test]
    fn push_below_the_wheel_clock_rebases_and_stays_ordered() {
        // The deadline-requeue aftermath: a pop advanced the wheel clock,
        // then new work arrives below it.
        let mut w = TimingWheel::default();
        w.push(sch(5000, 1));
        assert_eq!(w.pop().unwrap().at.as_nanos(), 5000);
        w.push(sch(4800, 2)); // below the clock → rebase
        w.push(sch(5100, 3));
        w.push(sch(4800, 4));
        assert!(Scheduler::stats(&w).rebases >= 1);
        assert_eq!(drain(&mut w), vec![(4800, 2), (4800, 4), (5100, 3)]);
    }

    #[test]
    fn requeue_below_the_wheel_clock_rebases() {
        // run_until deadline flow at wheel level: pop a far event (clock
        // jumps there), requeue it, then push near-term work that the
        // next run_until call must see first.
        let mut w = TimingWheel::default();
        w.push(sch(1_000_000, 1));
        let far = w.pop().unwrap();
        w.requeue(far);
        w.push(sch(600_000, 2));
        assert_eq!(drain(&mut w), vec![(600_000, 2), (1_000_000, 1)]);
    }

    #[test]
    fn level_depths_and_len_track_contents() {
        let mut w = TimingWheel::default();
        assert!(Scheduler::is_empty(&w));
        w.push(sch(1, 1));
        w.push(sch(0x10_00, 2));
        w.push(sch(0x10_00_00, 3));
        assert_eq!(Scheduler::len(&w), 3);
        let depths = Scheduler::level_depths(&w);
        assert_eq!(depths.iter().sum::<u64>(), 3);
        assert_eq!(depths[0], 1);
        assert_eq!(depths[1], 1);
        assert_eq!(depths[2], 1);
        assert_eq!(Scheduler::entries(&w).len(), 3);
        let _ = w.pop();
        assert_eq!(Scheduler::len(&w), 2);
    }

    // Satellite: always-on differential proptest, heap vs wheel over
    // random event streams (pushes with clustered timestamps, pops, and
    // head requeues — the full kernel op set).
    proptest! {
        #[test]
        fn differential_heap_vs_wheel(ops in proptest::collection::vec(
            (0u8..10, 0u64..5, 0u64..64), 1..400)
        ) {
            let mut heap = SchedulerImpl::new(Backend::Heap);
            let mut wheel = SchedulerImpl::new(Backend::Wheel);
            let mut seq = 0u64;
            let mut clock = 0u64;
            for (op, scale, delta) in ops {
                if op < 6 {
                    // Push: timestamps cluster near the clock but reach
                    // far-future levels via the scale factor (collisions
                    // at identical instants are common by construction).
                    seq += 1;
                    let at = clock + delta * 257u64.pow(scale as u32);
                    heap.push(sch(at, seq));
                    wheel.push(sch(at, seq));
                } else if op < 9 {
                    // Pop from both; results must agree exactly.
                    let a = heap.pop().map(|s| (s.at.as_nanos(), s.seq));
                    let b = wheel.pop().map(|s| (s.at.as_nanos(), s.seq));
                    prop_assert_eq!(a, b, "pop order diverged");
                    if let Some((at, _)) = a {
                        clock = at;
                    }
                } else {
                    // Pop-and-requeue the head in both (the run-loop
                    // deadline pattern); clock intentionally NOT advanced,
                    // so later pushes can land below the wheel clock and
                    // exercise the rebase path.
                    if let (Some(a), Some(b)) = (heap.pop(), wheel.pop()) {
                        prop_assert_eq!((a.at, a.seq), (b.at, b.seq));
                        heap.requeue(a);
                        wheel.requeue(b);
                    }
                }
                prop_assert_eq!(heap.len(), wheel.len());
            }
            // Full drain must agree.
            loop {
                let a = heap.pop().map(|s| (s.at.as_nanos(), s.seq));
                let b = wheel.pop().map(|s| (s.at.as_nanos(), s.seq));
                prop_assert_eq!(a, b, "drain order diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
