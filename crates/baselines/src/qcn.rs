//! QCN (IEEE 802.1Qau, Alizadeh et al. 2008) — the layer-2 switch-driven
//! ancestor RoCC adapts its multi-bit feedback idea from.
//!
//! * **CP (switch)**: samples roughly every `sample_bytes` of arriving
//!   data; on each sample computes `Fb = −(Qoff + w·Qδ)` where
//!   `Qoff = q − Qeq` and `Qδ = q − q_old`; when `Fb < 0` (congestion), the
//!   quantized |Fb| (6 bits) is sent to the source of the sampled packet.
//! * **RP (source)**: on feedback, multiplicative decrease
//!   `Rc ← Rc·(1 − Gd·Fb)`; recovery via byte-counter/timer-staged fast
//!   recovery (`Rc ← (Rt+Rc)/2`) then additive increase, exactly the state
//!   machine DCQCN later borrowed.

use rocc_sim::cc::{
    AckEvent, CtrlEmit, FeedbackEvent, HostCc, HostCcCtx, PacketMeta, RateDecision, SwitchCc,
    SwitchCcCtx, SwitchCcFactory,
};
use rocc_sim::prelude::{BitRate, CpId, FlowId, PacketKind, SimDuration};

/// CP parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcnCpParams {
    /// Equilibrium queue depth Qeq (bytes).
    pub q_eq: u64,
    /// Weight w on the queue-change term.
    pub w: f64,
    /// Bytes of data between samples.
    pub sample_bytes: u64,
    /// Quantization scale: |Fb| is clipped to `0..=63` after dividing by
    /// this many bytes per unit.
    pub fb_unit_bytes: u64,
}

impl QcnCpParams {
    /// Parameters scaled to the egress line rate.
    pub fn for_link_rate(rate: BitRate) -> Self {
        let scale = (rate.as_bps() as f64 / 40e9).max(0.25);
        QcnCpParams {
            q_eq: (150_000.0 * scale) as u64,
            w: 2.0,
            sample_bytes: 150_000,
            fb_unit_bytes: (12_000.0 * scale) as u64,
        }
    }
}

/// QCN congestion point for one egress port.
pub struct QcnSwitchCc {
    p: QcnCpParams,
    cp: CpId,
    q_old: u64,
    bytes_until_sample: u64,
}

impl QcnSwitchCc {
    /// Build a CP.
    pub fn new(cp: CpId, p: QcnCpParams) -> Self {
        QcnSwitchCc {
            bytes_until_sample: p.sample_bytes,
            p,
            cp,
            q_old: 0,
        }
    }

    /// Compute the quantized feedback for queue state; `None` when not
    /// congested (Fb would be ≥ 0).
    fn feedback(&mut self, q: u64) -> Option<u8> {
        let q_off = q as f64 - self.p.q_eq as f64;
        let q_delta = q as f64 - self.q_old as f64;
        self.q_old = q;
        let fb = -(q_off + self.p.w * q_delta);
        if fb >= 0.0 {
            return None;
        }
        let units = (-fb / self.p.fb_unit_bytes as f64).ceil();
        Some(units.clamp(1.0, 63.0) as u8)
    }
}

impl SwitchCc for QcnSwitchCc {
    fn on_enqueue(&mut self, ctx: &mut SwitchCcCtx<'_>, pkt: PacketMeta) -> bool {
        self.bytes_until_sample = self.bytes_until_sample.saturating_sub(pkt.wire_bytes);
        if self.bytes_until_sample == 0 {
            self.bytes_until_sample = self.p.sample_bytes;
            if let Some(fb) = self.feedback(ctx.qlen_bytes) {
                ctx.emits.push(CtrlEmit {
                    flow: pkt.flow,
                    to: pkt.src,
                    kind: PacketKind::QcnFb { fb, cp: self.cp },
                });
            }
        }
        false // QCN does not use ECN
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.q_old);
        out.push(self.bytes_until_sample);
    }

    fn restore_state(&mut self, state: &[u64]) {
        let [q_old, bytes_until_sample] = state else {
            return; // digest-verified upstream; short input is a no-op
        };
        self.q_old = *q_old;
        self.bytes_until_sample = *bytes_until_sample;
    }
}

/// Factory for [`QcnSwitchCc`].
#[derive(Debug, Default, Clone, Copy)]
pub struct QcnSwitchCcFactory {
    /// Parameter override applied to every port.
    pub params_override: Option<QcnCpParams>,
}

impl SwitchCcFactory for QcnSwitchCcFactory {
    fn make(&self, cp: CpId, link_rate: BitRate) -> Box<dyn SwitchCc> {
        let p = self
            .params_override
            .unwrap_or_else(|| QcnCpParams::for_link_rate(link_rate));
        Box::new(QcnSwitchCc::new(cp, p))
    }
}

/// RP parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcnRpParams {
    /// Multiplicative-decrease gain Gd (standard: 1/128 so Gd·Fbmax ≈ 1/2).
    pub gd: f64,
    /// Bytes per fast-recovery/active-increase stage.
    pub stage_bytes: u64,
    /// Stage timer for low-rate flows.
    pub stage_timer: SimDuration,
    /// Fast-recovery rounds before additive increase.
    pub fast_recovery_rounds: u32,
    /// Additive increase step.
    pub r_ai: BitRate,
    /// Minimum rate floor.
    pub r_min: BitRate,
}

impl Default for QcnRpParams {
    fn default() -> Self {
        QcnRpParams {
            gd: 1.0 / 128.0,
            stage_bytes: 150_000,
            stage_timer: SimDuration::from_micros(500),
            fast_recovery_rounds: 5,
            r_ai: BitRate::from_mbps(50),
            r_min: BitRate::from_mbps(40),
        }
    }
}

const STAGE_TOKEN: u8 = 0;

/// QCN's per-flow reaction point.
pub struct QcnHostCc {
    p: QcnRpParams,
    r_max: BitRate,
    rc: BitRate,
    rt: BitRate,
    stage: u32,
    bytes_in_stage: u64,
}

impl QcnHostCc {
    /// New flow at line rate.
    pub fn new(p: QcnRpParams, r_max: BitRate) -> Self {
        QcnHostCc {
            p,
            r_max,
            rc: r_max,
            rt: r_max,
            stage: 0,
            bytes_in_stage: 0,
        }
    }

    fn stage_event(&mut self) {
        self.stage += 1;
        if self.stage > self.p.fast_recovery_rounds {
            self.rt = (self.rt + self.p.r_ai).min(self.r_max);
        }
        self.rc = BitRate::from_bps((self.rc.as_bps() + self.rt.as_bps()) / 2).min(self.r_max);
    }
}

impl HostCc for QcnHostCc {
    fn decision(&self) -> RateDecision {
        RateDecision::line_rate(self.rc.min(self.r_max))
    }

    fn on_feedback(&mut self, ctx: &mut HostCcCtx, fb: FeedbackEvent) {
        let FeedbackEvent::QcnFb { fb, .. } = fb else {
            return;
        };
        self.rt = self.rc;
        self.rc = self
            .rc
            .scale(1.0 - self.p.gd * fb as f64)
            .max(self.p.r_min);
        self.stage = 0;
        self.bytes_in_stage = 0;
        ctx.set_timer(STAGE_TOKEN, self.p.stage_timer);
    }

    fn on_ack(&mut self, ctx: &mut HostCcCtx, ack: AckEvent) {
        self.bytes_in_stage += ack.newly_acked;
        if self.bytes_in_stage >= self.p.stage_bytes {
            self.bytes_in_stage = 0;
            self.stage_event();
            ctx.set_timer(STAGE_TOKEN, self.p.stage_timer);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCcCtx, token: u8) {
        if token == STAGE_TOKEN {
            self.stage_event();
            ctx.set_timer(STAGE_TOKEN, self.p.stage_timer);
        }
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.rc.as_bps());
        out.push(self.rt.as_bps());
        out.push(self.stage as u64);
        out.push(self.bytes_in_stage);
    }

    fn restore_state(&mut self, state: &[u64]) {
        let [rc, rt, stage, bytes_in_stage] = state else {
            return; // digest-verified upstream; short input is a no-op
        };
        self.rc = BitRate::from_bps(*rc);
        self.rt = BitRate::from_bps(*rt);
        self.stage = *stage as u32;
        self.bytes_in_stage = *bytes_in_stage;
    }
}

/// Factory for [`QcnHostCc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QcnHostCcFactory {
    /// RP parameter override.
    pub params: Option<QcnRpParams>,
}

impl rocc_sim::cc::HostCcFactory for QcnHostCcFactory {
    fn make(&self, _flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        Box::new(QcnHostCc::new(self.params.unwrap_or_default(), link_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::{NodeId, PortId, SimTime};

    fn cp() -> CpId {
        CpId {
            node: NodeId(0),
            port: PortId(0),
        }
    }

    fn ctx() -> HostCcCtx {
        HostCcCtx {
            now: SimTime::ZERO,
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: rocc_sim::telemetry::EventMask::NONE,
        }
    }

    #[test]
    fn cp_feedback_sign_and_quantization() {
        let p = QcnCpParams::for_link_rate(BitRate::from_gbps(40));
        let mut cc = QcnSwitchCc::new(cp(), p);
        // Queue at equilibrium, no growth → no feedback.
        cc.q_old = p.q_eq;
        assert_eq!(cc.feedback(p.q_eq), None);
        // Deep, growing queue → strong feedback, clipped at 63.
        cc.q_old = 0;
        let fb = cc.feedback(10_000_000).unwrap();
        assert_eq!(fb, 63);
        // Mildly above equilibrium and not growing → small feedback.
        cc.q_old = p.q_eq + 2 * p.fb_unit_bytes;
        let fb = cc.feedback(p.q_eq + 2 * p.fb_unit_bytes).unwrap();
        assert!(fb >= 1 && fb < 10, "fb = {fb}");
    }

    #[test]
    fn cp_samples_by_bytes() {
        let p = QcnCpParams {
            q_eq: 1000,
            w: 2.0,
            sample_bytes: 3000,
            fb_unit_bytes: 100,
        };
        let mut cc = QcnSwitchCc::new(cp(), p);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let meta = PacketMeta {
            flow: FlowId(9),
            src: NodeId(4),
            wire_bytes: 1048,
        };
        let mut emitted = 0;
        for _ in 0..12 {
            let mut c = SwitchCcCtx {
                now: SimTime::ZERO,
                cp: cp(),
                qlen_bytes: 50_000, // deeply congested
                link_rate: BitRate::from_gbps(40),
                tx_bytes: 0,
                rng: &mut rng,
                emits: Vec::new(),
                events: Vec::new(),
                event_mask: rocc_sim::telemetry::EventMask::NONE,
            };
            cc.on_enqueue(&mut c, meta);
            emitted += c.emits.len();
        }
        // 12 packets ≈ 12.5 KB → 4 samples of 3 KB.
        assert_eq!(emitted, 4);
    }

    #[test]
    fn rp_cuts_proportionally_to_fb() {
        let mut cc = QcnHostCc::new(QcnRpParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        cc.on_feedback(
            &mut c,
            FeedbackEvent::QcnFb {
                fb: 64 / 2, // Gd·Fb = 32/128 = 1/4
                cp: cp(),
            },
        );
        assert_eq!(cc.decision().rate, BitRate::from_gbps(30));
    }

    #[test]
    fn rp_fast_recovery_then_additive() {
        let p = QcnRpParams::default();
        let mut cc = QcnHostCc::new(p, BitRate::from_gbps(40));
        // Two cuts so the recovery target Rt sits below line rate.
        for _ in 0..2 {
            let mut c = ctx();
            cc.on_feedback(&mut c, FeedbackEvent::QcnFb { fb: 63, cp: cp() });
        }
        let after_cut = cc.decision().rate;
        for _ in 0..p.fast_recovery_rounds {
            let mut c = ctx();
            cc.on_timer(&mut c, STAGE_TOKEN);
        }
        // Fast recovery converges back toward the pre-cut target.
        let recovered = cc.decision().rate;
        assert!(recovered > after_cut);
        // Additive stage now lifts the target itself.
        let rt_before = cc.rt;
        let mut c = ctx();
        cc.on_timer(&mut c, STAGE_TOKEN);
        assert!(cc.rt > rt_before);
    }

    #[test]
    fn rp_floor() {
        let p = QcnRpParams::default();
        let mut cc = QcnHostCc::new(p, BitRate::from_gbps(40));
        for _ in 0..64 {
            let mut c = ctx();
            cc.on_feedback(&mut c, FeedbackEvent::QcnFb { fb: 63, cp: cp() });
        }
        assert!(cc.decision().rate >= p.r_min);
    }
}
