//! Offline stand-in for [rayon](https://crates.io/crates/rayon),
//! implementing exactly the API surface this workspace uses:
//! `vec.into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Semantics match rayon where it matters for determinism: results are
//! collected **by input index**, so the output order is identical to the
//! sequential `iter().map(f).collect()` regardless of which worker ran
//! which item or in what order items finished. Workers pull items from a
//! shared atomic cursor (no work stealing, which is irrelevant for the
//! coarse-grained `(scheme, seed)` cells this workspace fans out).
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else
//! [`std::thread::available_parallelism`]. With one thread (or one item)
//! everything runs inline on the caller's thread — zero overhead and
//! trivially identical to the serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits, as rayon exports them.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads the pool would use for an unbounded workload:
/// `RAYON_NUM_THREADS` if set, else the host's available parallelism.
/// Mirrors real rayon's `current_num_threads` so callers can report the
/// fan-out width they actually got (an actual run uses
/// `min(current_num_threads(), items)` — see [`execute`]).
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Number of worker threads to use.
fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `items` on up to [`num_threads`] scoped threads, returning
/// results **in input order**.
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("poisoned work slot")
                    .take()
                    .expect("work item taken twice");
                let out = f(item);
                *slots[i].lock().expect("poisoned result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result slot")
                .expect("worker panicked before writing its slot")
        })
        .collect()
}

/// A value convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A lazily composed `map` stage.
pub struct Map<I, F> {
    base: I,
    f: F,
}

/// The (tiny) parallel-iterator interface.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Run the pipeline with continuation `g`, returning index-ordered
    /// results. (Internal driver; `map`/`collect` build on it.)
    fn drive<R: Send, G: Fn(Self::Item) -> R + Sync>(self, g: G) -> Vec<R>;

    /// Transform each element with `f` (lazy; fused into the final run).
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Execute and collect into `C`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.drive(|x| x))
    }
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn drive<R: Send, G: Fn(T) -> R + Sync>(self, g: G) -> Vec<R> {
        execute(self.items, g)
    }
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn drive<R2: Send, G: Fn(R) -> R2 + Sync>(self, g: G) -> Vec<R2> {
        let f = self.f;
        self.base.drive(move |x| g(f(x)))
    }
}

/// Collection from an index-ordered parallel run.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection from results already in input order.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_fuse() {
        let out: Vec<String> = (0..10)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| format!("{x}"))
            .collect();
        assert_eq!(out[0], "1");
        assert_eq!(out[9], "10");
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<i32> = vec![7].into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, vec![21]);
    }

    #[test]
    fn matches_serial_under_forced_thread_counts() {
        // Deterministic regardless of RAYON_NUM_THREADS: same input order.
        let v: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = v.iter().map(|x| x ^ 0xabcd).collect();
        let par: Vec<u64> = v.into_par_iter().map(|x| x ^ 0xabcd).collect();
        assert_eq!(serial, par);
    }
}
