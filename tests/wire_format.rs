//! The CNP wire format round-trips the values the simulator's congestion
//! points actually produce, and the RP interprets them identically.

use rocc::core::cnp::Cnp;
use rocc::core::{CpParams, RoccHostCc, RpParams, DELTA_F};
use rocc::sim::cc::{FeedbackEvent, HostCc, HostCcCtx};
use rocc::sim::prelude::*;

fn ctx() -> HostCcCtx {
    HostCcCtx {
        now: SimTime::ZERO,
        link_rate: BitRate::from_gbps(40),
        set_timers: Vec::new(),
        cancel_timers: Vec::new(),
        events: Vec::new(),
        event_mask: rocc::sim::telemetry::EventMask::NONE,
    }
}

#[test]
fn cnp_wire_round_trip_drives_the_rp() {
    // A CP computed 4000 units (Fmax for 40G) — encode as real ICMP bytes,
    // decode as a DPDK/raw-socket RP would, and apply to the rate limiter.
    let p = CpParams::for_40g();
    for units in [p.f_min, 100, 2_000, p.f_max] {
        let cnp = Cnp {
            fair_rate_units: units,
            cp: CpId {
                node: NodeId(3),
                port: PortId(1),
            },
            flow: FlowId(42),
        };
        let wire = cnp.to_bytes();
        let decoded = Cnp::decode(&wire).expect("decode");
        assert_eq!(decoded, cnp);

        let mut rp = RoccHostCc::new(RpParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        rp.on_feedback(
            &mut c,
            FeedbackEvent::RoccCnp {
                fair_rate_units: decoded.fair_rate_units,
                cp: decoded.cp,
            },
        );
        let expect = BitRate::from_bps(DELTA_F.as_bps() * units as u64).min(BitRate::from_gbps(40));
        assert_eq!(rp.decision().rate, expect, "units = {units}");
    }
}

#[test]
fn corrupted_cnp_never_reaches_the_rate_limiter() {
    let cnp = Cnp {
        fair_rate_units: 10,
        cp: CpId {
            node: NodeId(0),
            port: PortId(0),
        },
        flow: FlowId(1),
    };
    let mut wire = cnp.to_bytes();
    for i in 0..wire.len() {
        wire[i] ^= 0x55;
        assert!(Cnp::decode(&wire).is_err(), "corruption at byte {i} accepted");
        wire[i] ^= 0x55;
    }
    // Pristine again: accepted.
    assert!(Cnp::decode(&wire).is_ok());
}

#[test]
fn rate_quantization_matches_delta_f() {
    // The wire carries multiples of ΔF = 10 Mb/s: whatever the CP computes
    // internally, the RP can only see 10 Mb/s steps.
    let cnp = Cnp {
        fair_rate_units: 333,
        cp: CpId {
            node: NodeId(0),
            port: PortId(0),
        },
        flow: FlowId(1),
    };
    let decoded = Cnp::decode(&cnp.to_bytes()).unwrap();
    assert_eq!(
        DELTA_F.as_bps() * decoded.fair_rate_units as u64,
        3_330_000_000
    );
}
