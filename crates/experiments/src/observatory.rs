//! `repro observe` / `repro compare` / `repro golden`: the run observatory.
//!
//! [`observe`] runs one scenario with the sim-side observatory sampler on
//! and produces three artifacts next to each other:
//!
//! 1. `metrics_<scenario>.jsonl` — the time-series rows
//!    ([`rocc_sim::metrics::MetricRow`]): egress queue depth, CP fair rate
//!    with auto-tune region, per-flow RP rate/goodput, cumulative PFC
//!    pause time;
//! 2. `perfetto_<scenario>.json` — a Chrome-trace export of the same run,
//!    loadable in `ui.perfetto.dev` (flows as tracks, PFC pauses as
//!    slices, CNP→RP causality as flow arrows);
//! 3. `manifest_<scenario>.json` — the run manifest: scenario, scheme,
//!    seed, scale, a config hash (seed excluded, so two seeds of the same
//!    config share it), the git revision, content digests of the other
//!    two artifacts, and the fidelity summary.
//!
//! [`compare`] diffs the fidelity summaries of two runs — Jain's fairness
//! index, fair-rate convergence time, queue-depth p99, and queue-histogram
//! total-variation distance — against typed thresholds: the cross-run
//! fidelity gate CI runs on two seeds of the same config.
//!
//! [`golden_check`] re-runs the pinned golden config and compares its
//! metrics digest against the committed baseline (`golden/observatory.json`),
//! the same regenerate-on-intentional-change workflow as `BENCH_sim.json`.

use crate::micro;
use crate::scenarios;
use crate::schemes::Scheme;
use crate::supervisor::{
    CampaignReport, CellSnapshot, FnCodec, SnapshotStore, Supervisor,
};
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rocc_sim::prelude::*;
use rocc_stats::{convergence_time, histogram_distance, jain_fairness, percentile};
use std::collections::BTreeMap;

/// Scenario names accepted by [`observe`].
pub const SCENARIOS: [&str; 1] = ["incast"];

/// The seed the committed golden baseline is pinned to.
pub const GOLDEN_SEED: u64 = 7;

/// Everything one observed run produced, ready to be written as artifacts.
#[derive(Debug)]
pub struct ObserveRun {
    /// Scenario name (an entry of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Simulation seed.
    pub seed: u64,
    /// Run scale.
    pub scale: Scale,
    /// Flows offered.
    pub flows: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// The observatory time series as a JSONL document.
    pub metrics_jsonl: String,
    /// Chrome-trace export of the run (Perfetto-loadable).
    pub perfetto_json: String,
    /// `Debug` rendering of the config with the seed zeroed — the input
    /// to the manifest's config hash.
    pub config_debug: String,
    /// The run's typed verdict (campaign drivers classify failures from
    /// it; the manifest embeds its JSON form).
    pub verdict: RunVerdict,
    /// Scheduler backend the run executed under (`heap` | `wheel`).
    /// Recorded so `repro compare` can refuse to diff runs that executed
    /// on different backends as if they were seed noise.
    pub sched_backend: &'static str,
    /// Every `ROCC_*` environment override in effect during the run,
    /// sorted by name — the out-of-config knobs (scheduler choice,
    /// sanitizer mode, …) that a manifest must pin for a run to be
    /// reproducible from its artifacts alone.
    pub env_overrides: Vec<(String, String)>,
}

impl ObserveRun {
    /// The run manifest as one JSON document.
    pub fn manifest_json(&self) -> String {
        let fid = summarize_metrics(&self.metrics_jsonl);
        let env: Vec<String> = self
            .env_overrides
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", k, v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"rocc-run-manifest/v1\",",
                "\"scenario\":\"{}\",\"scheme\":\"rocc\",\"seed\":{},\"scale\":\"{}\",",
                "\"flows\":{},\"completed\":{},",
                "\"sched_backend\":\"{}\",\"env_overrides\":{{{}}},",
                "\"config_hash\":\"{}\",\"git_rev\":\"{}\",",
                "\"metrics_digest\":\"{}\",\"perfetto_digest\":\"{}\",",
                "\"verdict\":{},\"fidelity\":{}}}"
            ),
            self.scenario,
            self.seed,
            scale_name(self.scale),
            self.flows,
            self.completed,
            self.sched_backend,
            env.join(","),
            digest(&self.config_debug),
            git_rev(),
            digest(&self.metrics_jsonl),
            digest(&self.perfetto_json),
            self.verdict.to_json(),
            fid.to_json(),
        )
    }

    /// Write the three artifacts into `dir` (created if missing). Returns
    /// the paths written.
    pub fn write_artifacts(&self, dir: &str) -> Result<Vec<String>, ArtifactError> {
        let paths = [
            (
                format!("{dir}/metrics_{}.jsonl", self.scenario),
                &self.metrics_jsonl,
            ),
            (
                format!("{dir}/perfetto_{}.json", self.scenario),
                &self.perfetto_json,
            ),
            (
                format!("{dir}/manifest_{}.json", self.scenario),
                &self.manifest_json(),
            ),
        ];
        let mut written = Vec::new();
        for (path, contents) in &paths {
            write_artifact(path, contents)?;
            written.push(path.clone());
        }
        Ok(written)
    }
}

/// CLI scale label, matching [`Scale::parse`].
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    }
}

/// Run one named scenario with the observatory on. `None` for an unknown
/// scenario name.
pub fn observe(scenario: &str, scale: Scale, seed: u64) -> Option<ObserveRun> {
    match scenario {
        "incast" => Some(incast(scale, seed)),
        _ => None,
    }
}

/// Crash-recoverable variant of [`observe`]: resumes from the cell's
/// journaled snapshot when one exists and keeps checkpointing while it
/// runs. `None` for an unknown scenario name.
pub fn observe_resumable(
    scenario: &str,
    scale: Scale,
    seed: u64,
    snap: &CellSnapshot,
) -> Option<ObserveRun> {
    match scenario {
        "incast" => Some(incast_resumable(scale, seed, snap)),
        _ => None,
    }
}

/// The seed-zeroed simulator config a scenario runs, rendered with
/// `Debug` — the input to the manifest's config hash and to sweep
/// journal keys (computable without running the scenario). `None` for an
/// unknown scenario name.
pub fn scenario_config_debug(scenario: &str) -> Option<String> {
    match scenario {
        "incast" => Some(format!(
            "{:?}",
            SimConfig {
                seed: 0,
                ..SimConfig::default()
            }
        )),
        _ => None,
    }
}

/// N-to-1 RoCC incast on the 40G dumbbell, observed: bottleneck queue and
/// every flow watched, 10 µs sampling, full event telemetry for the
/// Perfetto export. Start times carry a small seed-derived jitter so
/// different seeds genuinely produce different runs (the fabric itself is
/// single-path, so the topology alone would not consume the seed).
pub fn incast(scale: Scale, seed: u64) -> ObserveRun {
    let (sim, n, horizon) = build_incast(scale, seed);
    finish_incast(sim, n, horizon, scale, seed)
}

/// Auto-checkpoint stride (events) for sweep cells. Coarse enough that
/// the save cost stays in the noise for quick cells, fine enough that a
/// crash mid-cell loses at most a fraction of a paper-scale run.
pub const SWEEP_CHECKPOINT_STRIDE: u64 = 20_000;

/// [`incast`] with sub-cell crash recovery: if the cell's snapshot store
/// holds a journaled checkpoint for this cell, restore it into an
/// identically rebuilt sim and continue from there; otherwise start
/// fresh. Either way the run keeps journaling checkpoints through
/// `snap`'s sink. A snapshot that fails the engine's seed/config-digest
/// check (stale config, deep corruption) is discarded and the cell
/// restarts from scratch — never quarantined.
pub fn incast_resumable(scale: Scale, seed: u64, snap: &CellSnapshot) -> ObserveRun {
    let (mut sim, n, horizon) = build_incast(scale, seed);
    if let Some(bytes) = &snap.resume {
        if sim.restore(bytes).is_err() {
            // Restore may leave the sim partially overwritten on error:
            // discard it and rebuild for a clean fresh start.
            sim = build_incast(scale, seed).0;
        }
    }
    sim.enable_auto_checkpoint(SWEEP_CHECKPOINT_STRIDE, snap.sink());
    finish_incast(sim, n, horizon, scale, seed)
}

/// Build (without running) the sim a named scenario would run — the
/// entry point `repro snapshot save/restore` uses to step, checkpoint,
/// and resume a run by hand. Returns the sim, its flow count, and the
/// run horizon. `None` for an unknown scenario name.
pub fn scenario_sim(
    scenario: &str,
    scale: Scale,
    seed: u64,
) -> Option<(Sim, usize, SimTime)> {
    match scenario {
        "incast" => Some(build_incast(scale, seed)),
        _ => None,
    }
}

/// Everything [`incast`] does up to (not including) running the sim, so
/// the resumable path can rebuild an identical sim to restore into.
fn build_incast(scale: Scale, seed: u64) -> (Sim, usize, SimTime) {
    let (n, size, horizon) = match scale {
        Scale::Quick => (8usize, 2_000_000u64, SimTime::from_millis(200)),
        Scale::Paper => (16, 10_000_000, SimTime::from_millis(1000)),
    };
    let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.trace.telemetry.collect(EventMask::ALL);
    sim.trace.observatory.enable();
    sim.trace.sample_period = Some(SimDuration::from_micros(10));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.trace.watch_flow_rate(FlowId(i as u64));
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size,
            start: SimTime::from_nanos(rng.gen_range(0..10_000)),
            offered: None,
        });
    }
    (sim, n, horizon)
}

/// Run a built incast sim to its horizon and package the artifacts.
fn finish_incast(
    mut sim: Sim,
    n: usize,
    horizon: SimTime,
    scale: Scale,
    seed: u64,
) -> ObserveRun {
    let config_debug =
        scenario_config_debug("incast").expect("incast is a known scenario");
    let sched_backend = sim.kernel.scheduler_backend().name();
    let verdict = sim.run_until_flows_done(horizon);
    ObserveRun {
        scenario: "incast",
        seed,
        scale,
        flows: n,
        completed: sim.trace.fcts.len(),
        metrics_jsonl: sim.trace.observatory.to_jsonl(),
        perfetto_json: export_chrome_trace(&sim),
        config_debug,
        verdict,
        sched_backend,
        env_overrides: rocc_env_overrides(),
    }
}

/// Every `ROCC_*` environment variable currently set, sorted by name —
/// the out-of-config knobs the run manifest records.
pub fn rocc_env_overrides() -> Vec<(String, String)> {
    let mut vars: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("ROCC_"))
        .collect();
    vars.sort();
    vars
}

// ---------------------------------------------------------------------------
// Resumable multi-seed sweeps (`repro sweep`)

/// The compact per-seed record a sweep campaign aggregates — everything
/// needed to prove two campaigns observed the same runs, without storing
/// the runs themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCellSummary {
    /// Simulation seed.
    pub seed: u64,
    /// Flows offered.
    pub flows: u64,
    /// Flows completed within the horizon.
    pub completed: u64,
    /// Digest of the run's metrics JSONL.
    pub metrics_digest: String,
    /// Seed-zeroed config hash (shared by every cell of the sweep).
    pub config_hash: String,
}

impl SweepCellSummary {
    /// Reduce a finished observed run to its sweep summary.
    pub fn from_run(run: &ObserveRun) -> SweepCellSummary {
        SweepCellSummary {
            seed: run.seed,
            flows: run.flows as u64,
            completed: run.completed as u64,
            metrics_digest: digest(&run.metrics_jsonl),
            config_hash: digest(&run.config_debug),
        }
    }

    /// Canonical single-line JSON rendering (journal codec + aggregate
    /// rows). Byte-determinism of the sweep aggregate rests on this.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"flows\":{},\"completed\":{},\
             \"metrics_digest\":\"{}\",\"config_hash\":\"{}\"}}",
            self.seed, self.flows, self.completed, self.metrics_digest, self.config_hash
        )
    }

    /// Strict parse of [`SweepCellSummary::to_json`]; `None` on any
    /// anomaly (the supervisor then re-runs the cell).
    pub fn from_json(s: &str) -> Option<SweepCellSummary> {
        fn between<'a>(s: &'a str, start: &str, end: &str) -> Option<&'a str> {
            let i = s.find(start)? + start.len();
            let j = s[i..].find(end)? + i;
            Some(&s[i..j])
        }
        let metrics_digest =
            between(s, "\"metrics_digest\":\"", "\"")?.to_string();
        let config_hash = between(s, "\"config_hash\":\"", "\"")?.to_string();
        if metrics_digest.len() != 16 || config_hash.len() != 16 {
            return None;
        }
        Some(SweepCellSummary {
            seed: between(s, "{\"seed\":", ",")?.parse().ok()?,
            flows: between(s, "\"flows\":", ",")?.parse().ok()?,
            completed: between(s, "\"completed\":", ",")?.parse().ok()?,
            metrics_digest,
            config_hash,
        })
    }
}

/// Result of a supervised multi-seed sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Run scale.
    pub scale: Scale,
    /// Per-seed summaries in input (seed) order; failed cells are `None`.
    pub cells: Vec<Option<SweepCellSummary>>,
    /// Campaign summary: counts, failures, quarantine.
    pub report: CampaignReport,
}

impl SweepOutcome {
    /// The sweep aggregate artifact. Built purely from the per-cell
    /// summaries in input order, so a killed-then-resumed campaign (which
    /// replays finished cells from the checkpoint journal) renders bytes
    /// identical to an uninterrupted run — `cmp`-able in CI.
    pub fn aggregate_json(&self) -> String {
        let rows: Vec<String> = self
            .cells
            .iter()
            .flatten()
            .map(|c| c.to_json())
            .collect();
        let body = rows.join(",");
        format!(
            "{{\"schema\":\"rocc-sweep-aggregate/v1\",\"scenario\":\"{}\",\
             \"scale\":\"{}\",\"cells\":[{body}],\"campaign_digest\":\"{}\"}}\n",
            self.scenario,
            scale_name(self.scale),
            digest(&body)
        )
    }
}

/// Journal key for one sweep cell: scenario, scale and seed plus the
/// seed-zeroed config hash, so a config change invalidates the journal
/// while a resume after a crash matches it.
pub fn sweep_cell_key(scenario: &str, scale: Scale, config_hash: &str, seed: u64) -> String {
    format!(
        "observe/{scenario}/{}/seed{seed}/{config_hash}",
        scale_name(scale)
    )
}

/// Run `scenario` once per seed under the campaign supervisor. A cell
/// whose run fails its verdict (deadline, deadlock, budget guard) fails
/// the cell — a sweep's cells are expected to complete cleanly, unlike
/// the tolerant single-run [`observe`] path. `None` for an unknown
/// scenario name.
pub fn sweep(
    scenario: &str,
    scale: Scale,
    seeds: &[u64],
    sup: &Supervisor,
) -> Option<SweepOutcome> {
    sweep_with_snapshots(scenario, scale, seeds, sup, None)
}

/// [`sweep`] with optional sub-cell crash recovery: when a
/// [`SnapshotStore`] is supplied, every in-flight cell journals engine
/// snapshots as it runs and a resumed campaign restarts unfinished cells
/// from their latest checkpoint instead of from scratch. Finished cells
/// still replay from the supervisor's journal; the aggregate is
/// byte-identical either way.
pub fn sweep_with_snapshots(
    scenario: &str,
    scale: Scale,
    seeds: &[u64],
    sup: &Supervisor,
    snapshots: Option<&SnapshotStore>,
) -> Option<SweepOutcome> {
    let config_hash = digest(&scenario_config_debug(scenario)?);
    let cells: Vec<(String, u64)> = seeds
        .iter()
        .map(|&seed| (sweep_cell_key(scenario, scale, &config_hash, seed), seed))
        .collect();
    let codec = FnCodec(SweepCellSummary::to_json, SweepCellSummary::from_json);
    let scenario_owned = scenario.to_string();
    let summarize = |run: ObserveRun| match run.verdict.err() {
        Some(e) => Err(e.clone()),
        None => Ok(SweepCellSummary::from_run(&run)),
    };
    let campaign = match snapshots {
        Some(store) => sup.run_resumable(store, cells, &codec, move |&seed, snap| {
            let run = observe_resumable(&scenario_owned, scale, seed, &snap)
                .expect("scenario validated before the campaign started");
            summarize(run)
        }),
        None => sup.run(cells, &codec, move |&seed| {
            let run = observe(&scenario_owned, scale, seed)
                .expect("scenario validated before the campaign started");
            summarize(run)
        }),
    };
    let report = campaign.report();
    Some(SweepOutcome {
        scenario: scenario.to_string(),
        scale,
        cells: campaign.into_results(),
        report,
    })
}

// ---------------------------------------------------------------------------
// Digests

/// FNV-1a 64-bit over the UTF-8 bytes (the workspace-wide helper in
/// [`rocc_core::digest`]).
pub fn fnv1a64(data: &str) -> u64 {
    rocc_core::digest::fnv1a_64(data.as_bytes())
}

/// FNV-1a digest as 16 lowercase hex digits.
pub fn digest(data: &str) -> String {
    rocc_core::digest::hex_digest(data.as_bytes())
}

/// Best-effort short git revision ("unknown" outside a work tree).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------------------
// Fidelity summary (parsed back out of the metrics JSONL)

/// The scalar fidelity metrics of one run, derived from its metrics JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelitySummary {
    /// Jain's fairness index over per-flow mean goodput in the tail half
    /// of the run (1.0 when no flow rows exist).
    pub jain: f64,
    /// First time (seconds) after which the busiest CP's fair rate stays
    /// within 15% of its final value; `None` when it never settles.
    pub conv_time_s: Option<f64>,
    /// p99 of the watched queue depth, bytes.
    pub queue_p99: f64,
    /// Final cumulative PFC pause time, nanoseconds.
    pub cum_pause_ns: u64,
    /// Log-linear histogram of queue-depth samples, as ascending
    /// `(bucket_lower_bound, count)` pairs — the exchange format
    /// [`histogram_distance`] consumes.
    pub queue_buckets: Vec<(u64, u64)>,
}

impl FidelitySummary {
    /// Serialize as one JSON object (embedded in the run manifest).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"jain\":{:.6},\"conv_time_us\":{},\"queue_p99_bytes\":{:.1},\"cum_pause_ns\":{}}}",
            self.jain,
            match self.conv_time_s {
                Some(t) => format!("{:.1}", t * 1e6),
                None => "null".to_string(),
            },
            self.queue_p99,
            self.cum_pause_ns,
        )
    }
}

/// Extract an unsigned integer field from one JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Does the line carry the given `"type"` tag?
fn is_row(line: &str, ty: &str) -> bool {
    line.contains(&format!("\"type\":\"{ty}\""))
}

/// Reduce a metrics JSONL document to its [`FidelitySummary`].
pub fn summarize_metrics(jsonl: &str) -> FidelitySummary {
    let mut t_max: u64 = 0;
    for line in jsonl.lines() {
        if let Some(t) = field_u64(line, "t_ns") {
            t_max = t_max.max(t);
        }
    }
    let tail_from = t_max / 2;

    // Per-flow mean goodput over the tail half → Jain.
    let mut goodput: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    // Fair-rate series of the busiest CP → convergence time.
    let mut cp_series: BTreeMap<(u64, u64), Vec<(f64, f64)>> = BTreeMap::new();
    // Queue-depth samples → p99 + histogram.
    let mut queue_samples: Vec<f64> = Vec::new();
    let mut queue_hist = Histogram::new();
    let mut cum_pause_ns: u64 = 0;

    for line in jsonl.lines() {
        let Some(t) = field_u64(line, "t_ns") else {
            continue;
        };
        if is_row(line, "flow") {
            if t >= tail_from {
                if let (Some(f), Some(g)) = (field_u64(line, "flow"), field_u64(line, "goodput_bps")) {
                    let e = goodput.entry(f).or_insert((0.0, 0));
                    e.0 += g as f64;
                    e.1 += 1;
                }
            }
        } else if is_row(line, "cp") {
            if let (Some(n), Some(p), Some(r)) = (
                field_u64(line, "node"),
                field_u64(line, "port"),
                field_u64(line, "fair_rate_units"),
            ) {
                cp_series
                    .entry((n, p))
                    .or_default()
                    .push((t as f64 / 1e9, r as f64));
            }
        } else if is_row(line, "queue") {
            if let Some(b) = field_u64(line, "bytes") {
                queue_samples.push(b as f64);
                queue_hist.record(b);
            }
        } else if is_row(line, "pfc") {
            if let Some(c) = field_u64(line, "cum_pause_ns") {
                cum_pause_ns = cum_pause_ns.max(c);
            }
        }
    }

    let means: Vec<f64> = goodput
        .values()
        .filter(|(_, n)| *n > 0)
        .map(|(s, n)| s / *n as f64)
        .collect();
    let jain = jain_fairness(&means).unwrap_or(1.0);

    let conv_time_s = cp_series
        .values()
        .max_by_key(|s| s.len())
        .and_then(|series| {
            let tail = &series[series.len() - (series.len() / 4).max(1)..];
            let target = tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64;
            convergence_time(series, target, 0.15).ok().flatten()
        });

    let queue_p99 = percentile(&queue_samples, 0.99).unwrap_or(0.0);

    FidelitySummary {
        jain,
        conv_time_s,
        queue_p99,
        cum_pause_ns,
        queue_buckets: queue_hist.nonempty_buckets(),
    }
}

// ---------------------------------------------------------------------------
// Cross-run comparison

/// One fidelity metric compared across two runs, with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityCheck {
    /// Metric name.
    pub name: &'static str,
    /// Value in run A.
    pub a: f64,
    /// Value in run B.
    pub b: f64,
    /// The compared delta (absolute difference, ratio, or distance —
    /// per-metric, see [`compare`]).
    pub delta: f64,
    /// The pass threshold on `delta`.
    pub limit: f64,
    /// Did the check pass?
    pub pass: bool,
}

impl FidelityCheck {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"a\":{:.6},\"b\":{:.6},\"delta\":{:.6},\"limit\":{:.6},\"pass\":{}}}",
            self.name, self.a, self.b, self.delta, self.limit, self.pass
        )
    }
}

/// The full comparison report of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// One entry per fidelity metric.
    pub checks: Vec<FidelityCheck>,
}

impl CompareReport {
    /// Did every check pass?
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Serialize as one JSON object.
    pub fn to_json(&self) -> String {
        let checks: Vec<String> = self.checks.iter().map(|c| c.to_json()).collect();
        format!(
            "{{\"pass\":{},\"checks\":[{}]}}",
            self.pass(),
            checks.join(",")
        )
    }

    /// Human-readable table for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{:<22} a={:<14.4} b={:<14.4} delta={:<10.4} limit={:<8.4} {}\n",
                c.name,
                c.a,
                c.b,
                c.delta,
                c.limit,
                if c.pass { "PASS" } else { "FAIL" }
            ));
        }
        out.push_str(if self.pass() {
            "fidelity: PASS\n"
        } else {
            "fidelity: FAIL\n"
        });
        out
    }
}

/// Compare the fidelity summaries of two runs of the same config
/// (different seeds). Thresholds are deliberately loose enough that two
/// seeds of the golden incast pass, and tight enough that a different
/// scheme or a broken controller fails:
///
/// * `jain` — absolute difference ≤ 0.05 (both runs must be ~equally fair),
/// * `conv_time` — relative difference ≤ 75% (settling time is the
///   noisiest metric across seeds); both-never-settling also passes,
///   one-sided settling fails,
/// * `queue_p99` — ratio ≤ 1.5×,
/// * `queue_hist` — total-variation distance ≤ 0.35.
pub fn compare(a: &FidelitySummary, b: &FidelitySummary) -> CompareReport {
    let mut checks = Vec::new();

    let d = (a.jain - b.jain).abs();
    checks.push(FidelityCheck {
        name: "jain_fairness",
        a: a.jain,
        b: b.jain,
        delta: d,
        limit: 0.05,
        pass: d <= 0.05,
    });

    let (ca, cb) = (a.conv_time_s, b.conv_time_s);
    let (va, vb) = (ca.unwrap_or(-1.0), cb.unwrap_or(-1.0));
    let (delta, pass) = match (ca, cb) {
        (Some(x), Some(y)) => {
            let rel = (x - y).abs() / x.max(y).max(1e-9);
            (rel, rel <= 0.75)
        }
        (None, None) => (0.0, true),
        _ => (f64::INFINITY, false),
    };
    checks.push(FidelityCheck {
        name: "conv_time",
        a: va,
        b: vb,
        delta,
        limit: 0.75,
        pass,
    });

    let (lo, hi) = (a.queue_p99.min(b.queue_p99), a.queue_p99.max(b.queue_p99));
    let ratio = if hi == 0.0 { 1.0 } else { hi / lo.max(1.0) };
    checks.push(FidelityCheck {
        name: "queue_p99",
        a: a.queue_p99,
        b: b.queue_p99,
        delta: ratio,
        limit: 1.5,
        pass: ratio <= 1.5,
    });

    let tv = histogram_distance(&a.queue_buckets, &b.queue_buckets).unwrap_or(1.0);
    checks.push(FidelityCheck {
        name: "queue_hist_tv",
        a: a.queue_buckets.iter().map(|&(_, c)| c).sum::<u64>() as f64,
        b: b.queue_buckets.iter().map(|&(_, c)| c).sum::<u64>() as f64,
        delta: tv,
        limit: 0.35,
        pass: tv <= 0.35,
    });

    CompareReport { checks }
}

/// Locate the metrics JSONL for a run directory (or accept a direct file
/// path), read it, and summarize. Returns an error string suitable for
/// the CLI.
pub fn load_summary(path: &str) -> Result<FidelitySummary, String> {
    let p = std::path::Path::new(path);
    let file = if p.is_dir() {
        let mut found = None;
        let mut entries: Vec<_> = std::fs::read_dir(p)
            .map_err(|e| format!("cannot read {path}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            let name = e.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("metrics_") && name.ends_with(".jsonl") {
                found = Some(e);
                break;
            }
        }
        found.ok_or_else(|| format!("no metrics_*.jsonl in {path}"))?
    } else {
        p.to_path_buf()
    };
    let jsonl = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    Ok(summarize_metrics(&jsonl))
}

/// Read one string field out of a run's manifest. `path` is what the
/// user handed `repro compare`: a run directory (the `manifest_*.json`
/// inside it is used) or a direct `metrics_*.jsonl` path (the sibling
/// manifest is used). `None` when no manifest is found or the field is
/// absent — older runs predate some manifest fields, and comparison
/// falls back to the old silent behavior rather than failing.
pub fn manifest_field(path: &str, key: &str) -> Option<String> {
    let p = std::path::Path::new(path);
    let dir = if p.is_dir() { p } else { p.parent()? };
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for e in entries {
        let name = e.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("manifest_") && name.ends_with(".json") {
            let doc = std::fs::read_to_string(&e).ok()?;
            return field_str(&doc, key);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Golden gate

/// The committed golden baseline document for the pinned quick incast.
pub fn golden_json(run: &ObserveRun) -> String {
    format!(
        concat!(
            "{{\"schema\":\"rocc-observatory-golden/v1\",",
            "\"scenario\":\"{}\",\"scale\":\"{}\",\"seed\":{},",
            "\"metrics_digest\":\"{}\",\"fidelity\":{}}}\n"
        ),
        run.scenario,
        scale_name(run.scale),
        run.seed,
        digest(&run.metrics_jsonl),
        summarize_metrics(&run.metrics_jsonl).to_json(),
    )
}

/// Run the pinned golden config and produce its baseline document.
pub fn golden_run() -> ObserveRun {
    incast(Scale::Quick, GOLDEN_SEED)
}

/// Re-run the pinned config and diff its metrics digest against the
/// committed baseline at `path`. `Ok` carries a confirmation line; `Err`
/// the failure with the regeneration instruction.
pub fn golden_check(path: &str) -> Result<String, String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read golden {path}: {e}"))?;
    let want = field_str(&committed, "metrics_digest")
        .ok_or_else(|| format!("golden {path} has no metrics_digest field"))?;
    let run = golden_run();
    let got = digest(&run.metrics_jsonl);
    if got == want {
        Ok(format!("golden: PASS (metrics_digest {got})"))
    } else {
        Err(format!(
            "golden: FAIL — metrics_digest {got} != committed {want}\n\
             The observatory time series changed. If intentional, regenerate with\n\
             `cargo run --release -p rocc-experiments --bin repro -- golden write`\n\
             and commit the new {path}."
        ))
    }
}

/// Extract a string field from a JSON document.
fn field_str(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = doc.find(&pat)? + pat.len();
    let rest = &doc[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("hello"), format!("{:016x}", fnv1a64("hello")));
        assert_ne!(digest("a"), digest("b"));
    }

    #[test]
    fn sweep_cell_summary_roundtrips_and_rejects_torn_lines() {
        let c = SweepCellSummary {
            seed: 9,
            flows: 8,
            completed: 8,
            metrics_digest: "0123456789abcdef".to_string(),
            config_hash: "fedcba9876543210".to_string(),
        };
        let json = c.to_json();
        assert_eq!(SweepCellSummary::from_json(&json), Some(c.clone()));
        assert_eq!(SweepCellSummary::from_json(&json[..json.len() - 9]), None);
        assert_eq!(SweepCellSummary::from_json("{}"), None);
    }

    #[test]
    fn sweep_cell_keys_embed_config_and_seed() {
        let h = digest(&scenario_config_debug("incast").unwrap());
        let a = sweep_cell_key("incast", Scale::Quick, &h, 7);
        let b = sweep_cell_key("incast", Scale::Quick, &h, 8);
        assert_ne!(a, b);
        assert!(a.contains(&h), "{a}");
        assert_ne!(a, sweep_cell_key("incast", Scale::Paper, &h, 7));
        assert!(scenario_config_debug("nope").is_none());
    }

    #[test]
    fn field_extractors_parse_metric_rows() {
        let line = "{\"t_ns\":3000,\"type\":\"queue\",\"node\":2,\"port\":1,\"bytes\":4096}";
        assert_eq!(field_u64(line, "t_ns"), Some(3000));
        assert_eq!(field_u64(line, "bytes"), Some(4096));
        assert_eq!(field_u64(line, "missing"), None);
        assert!(is_row(line, "queue"));
        assert!(!is_row(line, "flow"));
        let doc = "{\"metrics_digest\":\"00ff\",\"x\":1}";
        assert_eq!(field_str(doc, "metrics_digest").as_deref(), Some("00ff"));
    }

    #[test]
    fn summarize_reduces_a_synthetic_series() {
        let mut jsonl = String::new();
        // Two flows, perfectly fair in the tail.
        for t in [0u64, 100_000, 200_000, 300_000] {
            for f in 0..2u64 {
                jsonl.push_str(&format!(
                    "{{\"t_ns\":{t},\"type\":\"flow\",\"flow\":{f},\"rp_bps\":5,\"goodput_bps\":{}}}\n",
                    if t < 150_000 { 1 + f } else { 10 }
                ));
            }
            jsonl.push_str(&format!(
                "{{\"t_ns\":{t},\"type\":\"queue\",\"node\":0,\"port\":0,\"bytes\":{}}}\n",
                t / 1000
            ));
            jsonl.push_str(&format!(
                "{{\"t_ns\":{t},\"type\":\"cp\",\"node\":0,\"port\":0,\"fair_rate_units\":{},\"region\":0,\"alpha\":0.5,\"beta\":1.5}}\n",
                if t == 0 { 1000 } else { 500 }
            ));
            jsonl.push_str(&format!(
                "{{\"t_ns\":{t},\"type\":\"pfc\",\"cum_pause_ns\":{}}}\n",
                t / 10
            ));
        }
        let s = summarize_metrics(&jsonl);
        assert!((s.jain - 1.0).abs() < 1e-9, "tail goodput is equal: {s:?}");
        // Rate steps 1000 → 500 at t=100 µs and holds: converges there.
        assert!((s.conv_time_s.unwrap() - 1e-4).abs() < 1e-9, "{s:?}");
        assert_eq!(s.cum_pause_ns, 30_000);
        assert!(s.queue_p99 > 0.0);
        assert!(!s.queue_buckets.is_empty());
        // A run is trivially fidelity-equal to itself.
        let rep = compare(&s, &s);
        assert!(rep.pass(), "{}", rep.render());
        assert!(rep.to_json().contains("\"pass\":true"));
    }

    #[test]
    fn compare_flags_divergent_runs() {
        let a = FidelitySummary {
            jain: 0.99,
            conv_time_s: Some(1e-3),
            queue_p99: 10_000.0,
            cum_pause_ns: 0,
            queue_buckets: vec![(0, 100)],
        };
        let b = FidelitySummary {
            jain: 0.60, // very unfair
            conv_time_s: None,
            queue_p99: 100_000.0,
            cum_pause_ns: 0,
            queue_buckets: vec![(1 << 20, 100)],
        };
        let rep = compare(&a, &b);
        assert!(!rep.pass());
        for c in &rep.checks {
            assert!(!c.pass, "{} should fail on divergent runs", c.name);
        }
        let rendered = rep.render();
        assert!(rendered.contains("FAIL"));
    }
}
