//! Packet slab: an index-addressed arena for packets on the wire.
//!
//! [`Packet`] is `Copy` but large (~560 B with two INT stacks), and the
//! dominant heap event — `Arrive` — used to carry it by value, so every
//! binary-heap sift moved the whole struct. The slab breaks that: packets
//! in flight live here, heap entries carry a 4-byte [`PacketRef`], and the
//! heap sifts ~56-byte keys.
//!
//! Ownership contract (see DESIGN.md §3e): a slab slot holds exactly one
//! live packet "on the wire" — from the moment a host NIC or switch egress
//! commits it to a link (or a switch mints a PFC/feedback frame) until it
//! is delivered to a host ([`PacketSlab::take`]), dropped
//! ([`PacketSlab::free`]), or consumed by an adjacent port (PFC). Packets
//! *inside* nodes (host `ctrl_q`, NIC `in_flight`) stay by value; switch
//! queues hold refs because their packets re-enter the wire unchanged.
//!
//! Freed slots go on a LIFO freelist, so steady-state traffic recycles a
//! small hot set of slots and the arena stays cache-resident. Allocation
//! order is a pure function of the event sequence — no addresses, no
//! randomness — so refs are as deterministic as the sequence numbers the
//! heap already orders by.

use crate::packet::Packet;
use crate::snapshot::{
    read_packet, write_packet, SnapReader, SnapWriter, SnapshotError,
};

/// Index of a live packet in the [`PacketSlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(u32);

impl PacketRef {
    /// Raw slot index (snapshot codec).
    pub(crate) fn index(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw slot index captured with [`PacketRef::index`].
    pub(crate) fn from_index(i: u32) -> PacketRef {
        PacketRef(i)
    }
}

/// Arena of packets currently on the wire or parked in switch queues.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    /// Slot indices available for reuse, popped LIFO.
    free: Vec<u32>,
    /// Live-slot count (diagnostics).
    live: usize,
    /// High-water mark of live slots (self-profiling).
    peak_live: usize,
}

impl PacketSlab {
    /// Empty slab.
    pub fn new() -> Self {
        PacketSlab::default()
    }

    /// Put `pkt` on the wire; returns its ref.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                PacketRef(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("packet slab overflow");
                self.slots.push(pkt);
                PacketRef(i)
            }
        }
    }

    /// Read a live packet.
    #[inline]
    pub fn get(&self, pr: PacketRef) -> &Packet {
        &self.slots[pr.0 as usize]
    }

    /// Mutate a live packet in place (ECN marking, INT stamping, fault
    /// echo-stripping).
    #[inline]
    pub fn get_mut(&mut self, pr: PacketRef) -> &mut Packet {
        &mut self.slots[pr.0 as usize]
    }

    /// Take the packet off the wire (host delivery): returns it by value
    /// and recycles the slot.
    #[inline]
    pub fn take(&mut self, pr: PacketRef) -> Packet {
        let pkt = self.slots[pr.0 as usize];
        self.release(pr);
        pkt
    }

    /// Drop the packet (loss, corruption, downed link): recycles the slot
    /// without reading it.
    #[inline]
    pub fn free(&mut self, pr: PacketRef) {
        self.release(pr);
    }

    #[inline]
    fn release(&mut self, pr: PacketRef) {
        debug_assert!(
            !self.free.contains(&pr.0),
            "double free of packet slot {}",
            pr.0
        );
        self.free.push(pr.0);
        self.live -= 1;
    }

    /// Packets currently live in the slab.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live packets (self-profiling).
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Serialize the complete arena: every slot (live or free) verbatim,
    /// plus the freelist in its exact LIFO order. Slot indices embedded in
    /// heap events must keep meaning after restore, and future allocations
    /// must pop the same slots in the same order, so nothing is compacted.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.slots.len());
        for p in &self.slots {
            write_packet(w, p);
        }
        w.usize(self.free.len());
        for &i in &self.free {
            w.u32(i);
        }
        w.usize(self.live);
        w.usize(self.peak_live);
    }

    /// Overwrite the arena from a [`PacketSlab::save_state`] stream.
    pub(crate) fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(read_packet(r)?);
        }
        let nf = r.len()?;
        let mut free = Vec::with_capacity(nf);
        for _ in 0..nf {
            let i = r.u32()?;
            if i as usize >= n {
                return Err(SnapshotError::Malformed("slab freelist index"));
            }
            free.push(i);
        }
        let live = r.usize()?;
        let peak_live = r.usize()?;
        if live != n - nf.min(n) {
            return Err(SnapshotError::Malformed("slab live count"));
        }
        self.slots = slots;
        self.free = free;
        self.live = live;
        self.peak_live = peak_live;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, IntStack, PacketKind};
    use crate::time::SimTime;
    use crate::topology::NodeId;

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Data {
                seq,
                payload: 1000,
                last: false,
            },
            ecn: false,
            int: IntStack::new(),
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn alloc_take_round_trip() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(pkt(0));
        let b = slab.alloc(pkt(1000));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.get(a).wire_bytes(), 1048);
        let got = slab.take(b);
        assert!(matches!(got.kind, PacketKind::Data { seq: 1000, .. }));
        assert_eq!(slab.live(), 1);
    }

    #[test]
    fn slots_recycle_lifo() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(pkt(0));
        let _b = slab.alloc(pkt(1));
        slab.free(a);
        // The freed slot is reused before the arena grows.
        let c = slab.alloc(pkt(2));
        assert_eq!(c, a);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.peak_live(), 2);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(pkt(0));
        slab.get_mut(a).ecn = true;
        assert!(slab.get(a).ecn);
    }
}
