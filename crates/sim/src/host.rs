//! End-host model: NIC with per-flow rate limiters, a go-back-N reliable
//! transport (the RoCE-style semantics the paper assumes), receiver logic
//! that echoes congestion signals (ECN marks, timestamps, INT), and the
//! reaction-point plumbing that delivers feedback packets to per-flow
//! [`HostCc`] instances after the configured RP reaction delay (15 µs in
//! the paper).

use crate::cc::{AckEvent, FeedbackEvent, HostCc, HostCcCtx, RateDecision};
use crate::engine::{Event, FlowMeta, Kernel};
use crate::fastmap::FxHashMap;
use crate::packet::{FlowId, IntStack, Packet, PacketKind};
use crate::profiler::Phase;
use crate::telemetry::{CcEvent, EventMask, SimEvent};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, Topology};
use crate::trace::{FctRecord, Trace};
use crate::units::BitRate;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Timer token reserved for the transport's retransmission timeout; CC
/// implementations may use tokens `0..=2`.
pub const RTO_TOKEN: u8 = 3;
/// Number of per-flow timer slots (tokens `0..TIMER_SLOTS`).
pub const TIMER_SLOTS: usize = 4;

/// Sender-side state for one flow.
struct SenderFlow {
    dst: NodeId,
    /// Application bytes to transfer (`u64::MAX` = run until stopped).
    size: u64,
    /// Next sequence number to transmit.
    next_seq: u64,
    /// Cumulatively acknowledged bytes.
    acked: u64,
    /// Highest sequence ever sent (for retransmission accounting).
    max_sent: u64,
    /// Congestion control instance.
    cc: Box<dyn HostCc>,
    /// Optional application offered-rate cap (open-loop senders).
    offered: Option<BitRate>,
    /// Time and wire size of the last transmitted packet (pacing baseline).
    last_tx: Option<(SimTime, u64)>,
    /// Per-token timer generations; events carrying stale generations are
    /// ignored, which implements reset/cancel.
    timer_gen: [u64; TIMER_SLOTS],
    /// Flow explicitly stopped (long-running flows in dynamic scenarios).
    stopped: bool,
    /// Where the flow sits in the TX scheduler.
    sched: SchedState,
    /// The eligibility instant recorded when entering `Waiting` (stale
    /// heap entries are detected by comparing against this).
    wait_until: SimTime,
    /// Pacing rate at the last scheduling decision, to detect rate
    /// increases that should shorten a pending pacing wait.
    last_rate: BitRate,
}

/// TX scheduler membership for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedState {
    /// Not queued: no data, window-blocked, or rate 0. Reactivated by the
    /// event that unblocks it (ACK, feedback, timer, NACK, start).
    Idle,
    /// In the ready ring: believed sendable now.
    Ready,
    /// In the pacing heap until `wait_until`.
    Waiting,
}

impl SenderFlow {
    /// Bytes in flight (sent, not yet cumulatively acked).
    fn in_flight(&self) -> u64 {
        self.next_seq - self.acked
    }

    /// Remaining bytes the application still wants sent.
    fn has_data(&self) -> bool {
        !self.stopped && self.next_seq < self.size
    }

    /// Earliest time the next packet may start, pacing at `rate`.
    fn eligible_at(&self, rate: BitRate) -> SimTime {
        match self.last_tx {
            None => SimTime::ZERO,
            Some((t, bytes)) => t + rate.serialization_time(bytes),
        }
    }
}

/// Receiver-side state for one flow.
#[derive(Default)]
struct ReceiverFlow {
    /// Next expected in-order sequence number.
    expected: u64,
    /// A NACK for the current gap has been sent and not yet resolved.
    nack_armed: bool,
    /// Flow completion already recorded.
    complete: bool,
}

/// Read-only snapshot of one sender flow, handed to the invariant
/// sanitizer (see [`crate::sanitizer`]) for window-ordering and rate-bound
/// audits.
#[derive(Debug, Clone, Copy)]
pub struct SenderAudit {
    /// The flow.
    pub flow: FlowId,
    /// Cumulatively acknowledged bytes.
    pub acked: u64,
    /// Next sequence number to transmit.
    pub next_seq: u64,
    /// Highest sequence ever sent.
    pub max_sent: u64,
    /// Application bytes to transfer (`u64::MAX` = run until stopped).
    pub size: u64,
    /// The CC's current pacing-rate decision.
    pub rate: BitRate,
    /// Declared `(min, max)` rate bounds, if the CC promises any.
    pub bounds: Option<(BitRate, BitRate)>,
}

/// An end host (single NIC port).
pub struct Host {
    /// This host's node id.
    pub id: NodeId,
    uplink: LinkId,
    line_rate: BitRate,
    prop_delay: SimDuration,
    busy: bool,
    paused: bool,
    in_flight: Option<Packet>,
    /// Receiver-generated control packets (ACKs/NACKs) awaiting the wire;
    /// strictly prioritized over data.
    ctrl_q: VecDeque<Packet>,
    flows: BTreeMap<FlowId, SenderFlow>,
    /// Flows believed sendable now, served round-robin. O(1) per packet
    /// instead of scanning every flow (hosts can carry hundreds of
    /// concurrent flows in the fat-tree workloads).
    ready: VecDeque<FlowId>,
    /// Flows paced into the future, keyed by eligibility time.
    waiting: BinaryHeap<Reverse<(SimTime, FlowId)>>,
    /// Receiver state, looked up per arriving packet. Fx-hashed: its
    /// iteration order never escapes (audits go through the sorted
    /// [`Host::audit_receivers`]).
    recv: FxHashMap<FlowId, ReceiverFlow>,
    /// Earliest pending wake event (dedup so we do not flood the queue).
    wake_at: Option<SimTime>,
}

impl Host {
    /// Build the host for `id` from the topology.
    pub fn new(id: NodeId, topo: &Topology) -> Self {
        let uplink = topo.out_link(id, crate::topology::PortId(0));
        let l = topo.link(uplink);
        Host {
            id,
            uplink,
            line_rate: l.rate,
            prop_delay: l.delay,
            busy: false,
            paused: false,
            in_flight: None,
            ctrl_q: VecDeque::new(),
            flows: BTreeMap::new(),
            ready: VecDeque::new(),
            waiting: BinaryHeap::new(),
            recv: FxHashMap::default(),
            wake_at: None,
        }
    }

    /// NIC line rate.
    pub fn line_rate(&self) -> BitRate {
        self.line_rate
    }

    /// Current CC rate decision for `flow`, if it is still active.
    pub fn cc_rate(&self, flow: FlowId) -> Option<RateDecision> {
        self.flows.get(&flow).map(|f| f.cc.decision())
    }

    /// Number of currently installed sender flows.
    pub fn active_flows(&self) -> usize {
        self.flows.values().filter(|f| !f.stopped).count()
    }

    /// Wire bytes currently serializing onto the uplink. Queued control
    /// frames are excluded: they enter the conservation ledger only when
    /// they reach the wire.
    pub fn in_flight_wire_bytes(&self) -> u64 {
        self.in_flight.as_ref().map(|p| p.wire_bytes()).unwrap_or(0)
    }

    /// True while the NIC is PFC-paused by its attached switch.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Sanitizer view of every sender flow on this host.
    pub fn audit_senders(&self) -> Vec<SenderAudit> {
        self.flows
            .iter()
            .map(|(fid, f)| SenderAudit {
                flow: *fid,
                acked: f.acked,
                next_seq: f.next_seq,
                max_sent: f.max_sent,
                size: f.size,
                rate: f.cc.decision().rate,
                bounds: f.cc.rate_bounds(),
            })
            .collect()
    }

    /// Sanitizer view of every receiver flow on this host:
    /// `(flow, next expected in-order sequence)`.
    pub fn audit_receivers(&self) -> Vec<(FlowId, u64)> {
        let mut v: Vec<(FlowId, u64)> =
            self.recv.iter().map(|(fid, r)| (*fid, r.expected)).collect();
        v.sort_unstable_by_key(|(fid, _)| fid.0);
        v
    }

    /// Install a sender flow and try to start transmitting.
    pub fn start_flow(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        flow: FlowId,
        meta: &FlowMeta,
        cc: Box<dyn HostCc>,
    ) {
        k.prof.enter(Phase::HostCompute);
        debug_assert_eq!(meta.src, self.id);
        self.flows.insert(
            flow,
            SenderFlow {
                dst: meta.dst,
                size: meta.size,
                next_seq: 0,
                acked: 0,
                max_sent: 0,
                cc,
                offered: meta.offered,
                last_tx: None,
                timer_gen: [0; TIMER_SLOTS],
                stopped: false,
                sched: SchedState::Idle,
                wait_until: SimTime::ZERO,
                last_rate: BitRate::ZERO,
            },
        );
        self.activate(flow);
        self.try_send(k, topo, trace);
    }

    /// Stop a long-running flow (it stops offering data immediately).
    pub fn stop_flow(&mut self, flow: FlowId) {
        if let Some(f) = self.flows.get_mut(&flow) {
            f.stopped = true;
        }
    }

    fn remove_flow(&mut self, flow: FlowId) {
        // Stale ready/waiting entries are skipped when popped (the flow is
        // gone from the map).
        self.flows.remove(&flow);
    }

    fn cc_ctx(&self, k: &Kernel, mask: EventMask) -> HostCcCtx {
        HostCcCtx {
            now: k.now,
            link_rate: self.line_rate,
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: mask,
        }
    }

    /// Wrap decision events buffered by a flow's CC into timestamped,
    /// host/flow-attributed telemetry events.
    fn publish_cc_events(&self, k: &Kernel, trace: &mut Trace, flow: FlowId, events: Vec<CcEvent>) {
        for ev in events {
            if let CcEvent::RpTransition { kind, rate_bps, cp } = ev {
                trace.publish_event(SimEvent::RpTransition {
                    t: k.now,
                    node: self.id,
                    flow,
                    kind,
                    rate_bps,
                    cp,
                });
            }
        }
    }

    /// Apply timer arm/cancel requests produced by a CC callback.
    fn apply_timer_reqs(&mut self, k: &mut Kernel, flow: FlowId, ctx: HostCcCtx) {
        let Some(f) = self.flows.get_mut(&flow) else {
            return;
        };
        for token in ctx.cancel_timers {
            let t = token as usize % TIMER_SLOTS;
            f.timer_gen[t] = f.timer_gen[t].wrapping_add(1);
        }
        for (token, d) in ctx.set_timers {
            let t = token as usize % TIMER_SLOTS;
            f.timer_gen[t] = f.timer_gen[t].wrapping_add(1);
            k.schedule(
                k.now + d,
                Event::HostCcTimer {
                    node: self.id,
                    flow,
                    token: t as u8,
                    gen: f.timer_gen[t],
                },
            );
        }
    }

    fn arm_rto(&mut self, k: &mut Kernel, flow: FlowId) {
        let rto = k.config.rto;
        let Some(f) = self.flows.get_mut(&flow) else {
            return;
        };
        let t = RTO_TOKEN as usize;
        f.timer_gen[t] = f.timer_gen[t].wrapping_add(1);
        k.schedule(
            k.now + rto,
            Event::HostCcTimer {
                node: self.id,
                flow,
                token: RTO_TOKEN,
                gen: f.timer_gen[t],
            },
        );
    }

    fn cancel_rto(&mut self, flow: FlowId) {
        if let Some(f) = self.flows.get_mut(&flow) {
            let t = RTO_TOKEN as usize;
            f.timer_gen[t] = f.timer_gen[t].wrapping_add(1);
        }
    }

    /// Put a flow back into the ready ring if it might be sendable (called
    /// by the event that could have unblocked it: start, ACK, feedback,
    /// timer, NACK). Idempotent; stale heap entries are skipped on pop.
    fn activate(&mut self, flow: FlowId) {
        let Some(f) = self.flows.get_mut(&flow) else {
            return;
        };
        if !f.has_data() || f.sched == SchedState::Ready {
            return;
        }
        f.sched = SchedState::Ready;
        self.ready.push_back(flow);
    }

    /// Like [`Host::activate`], but also pulls the flow out of a pacing
    /// wait when its allowed rate has increased (shorter gap than the one
    /// recorded in the heap).
    fn activate_on_rate_change(&mut self, flow: FlowId) {
        let Some(f) = self.flows.get(&flow) else {
            return;
        };
        if f.sched == SchedState::Waiting {
            let rate = f.cc.decision().rate.min(self.line_rate);
            if rate > f.last_rate {
                // Re-evaluate now; the stale heap entry is skipped on pop.
                let f = self.flows.get_mut(&flow).unwrap();
                f.sched = SchedState::Ready;
                self.ready.push_back(flow);
                return;
            }
        }
        self.activate(flow);
    }

    /// Attempt to put the next packet on the wire.
    pub fn try_send(&mut self, k: &mut Kernel, _topo: &Topology, trace: &mut Trace) {
        if self.busy || self.in_flight.is_some() {
            return;
        }
        // Control (ACK/NACK) first — even under PFC pause these are tiny
        // and ride the control class.
        if let Some(pkt) = self.ctrl_q.pop_front() {
            self.transmit(k, pkt);
            return;
        }
        if self.paused {
            return;
        }
        let mtu = k.config.mtu_payload;
        loop {
            // Release due pacing waits into the ready ring.
            while let Some(&Reverse((t, fid))) = self.waiting.peek() {
                if t > k.now {
                    break;
                }
                self.waiting.pop();
                if let Some(f) = self.flows.get_mut(&fid) {
                    // Skip stale entries (flow re-queued or re-paced since).
                    if f.sched == SchedState::Waiting && f.wait_until == t {
                        f.sched = SchedState::Ready;
                        self.ready.push_back(fid);
                    }
                }
            }
            let Some(fid) = self.ready.pop_front() else {
                // Idle: wake when the earliest pacing wait matures.
                if let Some(&Reverse((t, _))) = self.waiting.peek() {
                    if self.wake_at.is_none_or(|w| w <= k.now || t < w) {
                        self.wake_at = Some(t);
                        k.schedule(t, Event::HostWake { node: self.id });
                    }
                }
                return;
            };
            let Some(f) = self.flows.get_mut(&fid) else {
                continue; // stale: flow completed and was removed
            };
            if f.sched != SchedState::Ready {
                continue; // stale duplicate
            }
            if !f.has_data() {
                f.sched = SchedState::Idle;
                continue;
            }
            let d = f.cc.decision();
            let mut rate = d.rate.min(self.line_rate);
            if let Some(off) = f.offered {
                rate = rate.min(off);
            }
            if rate == BitRate::ZERO {
                f.sched = SchedState::Idle; // resumed by a CC event
                continue;
            }
            let payload = mtu.min(f.size - f.next_seq);
            if let Some(w) = d.window_bytes {
                // Window gate; always admit one packet when nothing is in
                // flight so a tiny window cannot deadlock the flow.
                if f.in_flight() + payload > w && f.in_flight() > 0 {
                    f.sched = SchedState::Idle; // resumed by the next ACK
                    continue;
                }
            }
            f.last_rate = rate;
            let elig = f.eligible_at(rate);
            if elig <= k.now {
                f.sched = SchedState::Idle;
                self.send_data(k, trace, fid, payload);
                // Re-queue for its next packet (pacing into the future).
                let Some(f) = self.flows.get_mut(&fid) else {
                    return;
                };
                if f.has_data() {
                    let next = f.eligible_at(rate);
                    f.sched = SchedState::Waiting;
                    f.wait_until = next;
                    self.waiting.push(Reverse((next, fid)));
                }
                return; // port is busy now
            }
            f.sched = SchedState::Waiting;
            f.wait_until = elig;
            self.waiting.push(Reverse((elig, fid)));
        }
    }

    fn send_data(&mut self, k: &mut Kernel, trace: &mut Trace, fid: FlowId, payload: u64) {
        let f = self.flows.get_mut(&fid).expect("send_data on missing flow");
        let seq = f.next_seq;
        let last = f.size != u64::MAX && seq + payload == f.size;
        let pkt = Packet {
            flow: fid,
            src: self.id,
            dst: f.dst,
            kind: PacketKind::Data { seq, payload, last },
            ecn: false,
            int: IntStack::new(),
            sent_at: k.now,
        };
        f.next_seq += payload;
        if f.next_seq > f.max_sent {
            f.max_sent = f.next_seq;
        } else {
            trace.retx_bytes += payload;
        }
        trace.tx_data_bytes += payload;
        f.last_tx = Some((k.now, pkt.wire_bytes()));
        self.arm_rto(k, fid);
        self.transmit(k, pkt);
    }

    /// Serialize one packet onto the uplink. Every byte a host puts on the
    /// wire — data and control alike — enters the sanitizer's conservation
    /// ledger here.
    fn transmit(&mut self, k: &mut Kernel, pkt: Packet) {
        let ser = self.line_rate.serialization_time(pkt.wire_bytes());
        k.san.inject(pkt.wire_bytes());
        self.busy = true;
        self.in_flight = Some(pkt);
        k.schedule(k.now + ser, Event::HostTxDone { node: self.id });
    }

    /// Serialization finished: hand the packet to the uplink (it enters the
    /// wire-packet slab here).
    pub fn handle_tx_done(&mut self, k: &mut Kernel, topo: &Topology, trace: &mut Trace) {
        k.prof.enter(Phase::HostCompute);
        let pkt = self
            .in_flight
            .take()
            .expect("HostTxDone without in-flight packet");
        self.busy = false;
        let pr = k.packets.alloc(pkt);
        k.schedule(
            k.now + self.prop_delay,
            Event::Arrive {
                link: self.uplink,
                pr,
            },
        );
        self.try_send(k, topo, trace);
    }

    /// Pacing wake-up.
    pub fn handle_wake(&mut self, k: &mut Kernel, topo: &Topology, trace: &mut Trace) {
        k.prof.enter(Phase::HostCompute);
        self.wake_at = None;
        self.try_send(k, topo, trace);
    }

    /// Serialize the host's dynamic state: NIC transmit state, queued
    /// control frames, every sender flow (including its CC word stream),
    /// the TX scheduler (ready ring verbatim, pacing heap as a sorted
    /// vector — tuple order is total, so heap pop order survives), and
    /// receiver state sorted by flow.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::write_packet;
        w.bool(self.busy);
        w.bool(self.paused);
        match &self.in_flight {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                write_packet(w, p);
            }
        }
        w.usize(self.ctrl_q.len());
        for p in &self.ctrl_q {
            write_packet(w, p);
        }
        w.usize(self.flows.len());
        for (fid, f) in &self.flows {
            w.u64(fid.0);
            w.usize(f.dst.0);
            w.u64(f.size);
            w.u64(f.next_seq);
            w.u64(f.acked);
            w.u64(f.max_sent);
            match f.offered {
                None => w.u8(0),
                Some(r) => {
                    w.u8(1);
                    w.rate(r);
                }
            }
            match f.last_tx {
                None => w.u8(0),
                Some((t, b)) => {
                    w.u8(1);
                    w.time(t);
                    w.u64(b);
                }
            }
            for g in f.timer_gen {
                w.u64(g);
            }
            w.bool(f.stopped);
            w.u8(match f.sched {
                SchedState::Idle => 0,
                SchedState::Ready => 1,
                SchedState::Waiting => 2,
            });
            w.time(f.wait_until);
            w.rate(f.last_rate);
            let mut words = Vec::new();
            f.cc.snapshot_state(&mut words);
            w.words(&words);
        }
        w.usize(self.ready.len());
        for fid in &self.ready {
            w.u64(fid.0);
        }
        let mut waits: Vec<(SimTime, FlowId)> =
            self.waiting.iter().map(|Reverse(e)| *e).collect();
        waits.sort_unstable();
        w.usize(waits.len());
        for (t, fid) in waits {
            w.time(t);
            w.u64(fid.0);
        }
        let mut recvs: Vec<(FlowId, &ReceiverFlow)> =
            self.recv.iter().map(|(fid, r)| (*fid, r)).collect();
        recvs.sort_unstable_by_key(|(fid, _)| fid.0);
        w.usize(recvs.len());
        for (fid, rf) in recvs {
            w.u64(fid.0);
            w.u64(rf.expected);
            w.bool(rf.nack_armed);
            w.bool(rf.complete);
        }
        match self.wake_at {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.time(t);
            }
        }
    }

    /// Deliberately corrupt one word of one sender flow's CC state — the
    /// divergence-observatory fault-injection hook (see
    /// [`crate::engine::Sim::inject_rp_perturbation`]). Flips bit 30 of
    /// the first snapshot word of the lowest-id flow that exposes CC
    /// state words (for RoCC's RP that word is the current rate in bps,
    /// so the flip shifts pacing by ~1 Gb/s — exactly the "one RP bit
    /// flipped mid-run" failure the bisector exists to localize).
    /// Deterministic (BTreeMap order) and a no-op (`false`) when no flow
    /// carries CC words.
    pub(crate) fn perturb_cc_state(&mut self) -> bool {
        for f in self.flows.values_mut() {
            let mut words = Vec::new();
            f.cc.snapshot_state(&mut words);
            if words.is_empty() {
                continue;
            }
            words[0] ^= 1 << 30;
            f.cc.restore_state(&words);
            return true;
        }
        false
    }

    /// Overwrite the host's dynamic state from a [`Host::save_state`]
    /// stream. Sender CC boxes do not exist in a freshly built host (they
    /// are created at `FlowStart` dispatch), so each is recreated through
    /// the run's deterministic `factory` and then restored from its word
    /// stream.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
        factory: &dyn crate::cc::HostCcFactory,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::{read_packet, SnapshotError};
        self.busy = r.bool()?;
        self.paused = r.bool()?;
        self.in_flight = match r.u8()? {
            0 => None,
            1 => Some(read_packet(r)?),
            _ => return Err(SnapshotError::Malformed("host in-flight tag")),
        };
        let nc = r.len()?;
        self.ctrl_q.clear();
        for _ in 0..nc {
            self.ctrl_q.push_back(read_packet(r)?);
        }
        let nf = r.len()?;
        self.flows.clear();
        for _ in 0..nf {
            let fid = FlowId(r.u64()?);
            let dst = NodeId(r.usize()?);
            let size = r.u64()?;
            let next_seq = r.u64()?;
            let acked = r.u64()?;
            let max_sent = r.u64()?;
            let offered = match r.u8()? {
                0 => None,
                1 => Some(r.rate()?),
                _ => return Err(SnapshotError::Malformed("offered tag")),
            };
            let last_tx = match r.u8()? {
                0 => None,
                1 => Some((r.time()?, r.u64()?)),
                _ => return Err(SnapshotError::Malformed("last-tx tag")),
            };
            let mut timer_gen = [0u64; TIMER_SLOTS];
            for g in &mut timer_gen {
                *g = r.u64()?;
            }
            let stopped = r.bool()?;
            let sched = match r.u8()? {
                0 => SchedState::Idle,
                1 => SchedState::Ready,
                2 => SchedState::Waiting,
                _ => return Err(SnapshotError::Malformed("sched state tag")),
            };
            let wait_until = r.time()?;
            let last_rate = r.rate()?;
            let words = r.words()?;
            let mut cc = factory.make(fid, self.line_rate);
            cc.restore_state(&words);
            self.flows.insert(
                fid,
                SenderFlow {
                    dst,
                    size,
                    next_seq,
                    acked,
                    max_sent,
                    cc,
                    offered,
                    last_tx,
                    timer_gen,
                    stopped,
                    sched,
                    wait_until,
                    last_rate,
                },
            );
        }
        let nr = r.len()?;
        self.ready.clear();
        for _ in 0..nr {
            self.ready.push_back(FlowId(r.u64()?));
        }
        let nw = r.len()?;
        self.waiting.clear();
        for _ in 0..nw {
            let t = r.time()?;
            let fid = FlowId(r.u64()?);
            self.waiting.push(Reverse((t, fid)));
        }
        let nrecv = r.len()?;
        self.recv.clear();
        for _ in 0..nrecv {
            let fid = FlowId(r.u64()?);
            let rf = ReceiverFlow {
                expected: r.u64()?,
                nack_armed: r.bool()?,
                complete: r.bool()?,
            };
            self.recv.insert(fid, rf);
        }
        self.wake_at = match r.u8()? {
            0 => None,
            1 => Some(r.time()?),
            _ => return Err(SnapshotError::Malformed("wake-at tag")),
        };
        Ok(())
    }

    /// A packet arrived at this host.
    pub fn handle_arrive(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        flow_dir: &FxHashMap<FlowId, FlowMeta>,
        pkt: Packet,
    ) {
        k.prof.enter(Phase::HostCompute);
        match pkt.kind {
            PacketKind::PfcPause => {
                self.paused = true;
            }
            PacketKind::PfcResume => {
                self.paused = false;
                self.try_send(k, topo, trace);
            }
            PacketKind::Data { seq, payload, last } => {
                self.receive_data(k, topo, trace, flow_dir, &pkt, seq, payload, last);
            }
            PacketKind::Ack {
                cum_seq,
                ecn_echo,
                data_tx_time,
                int,
            } => {
                self.receive_ack(k, topo, trace, pkt.flow, cum_seq, ecn_echo, data_tx_time, int);
            }
            PacketKind::Nack { expected_seq } => {
                if let Some(f) = self.flows.get_mut(&pkt.flow) {
                    // Stale-NACK suppression: under reordering or
                    // duplication a NACK can arrive after the gap it
                    // reported was already repaired (its expected_seq is
                    // below our cumulative ack) — rolling back to before
                    // `acked` would retransmit delivered data forever.
                    // Only honor a NACK whose expected_seq still lies in
                    // the unacked window.
                    if expected_seq >= f.acked && expected_seq < f.next_seq {
                        f.next_seq = expected_seq;
                        // Pacing baseline keeps its spacing; the rollback
                        // itself is instantaneous.
                    }
                }
                self.activate(pkt.flow);
                self.try_send(k, topo, trace);
            }
            PacketKind::RoccCnp {
                fair_rate_units,
                cp,
            } => {
                self.deliver_feedback(
                    k,
                    pkt.flow,
                    FeedbackEvent::RoccCnp {
                        fair_rate_units,
                        cp,
                    },
                );
            }
            PacketKind::RoccQueueReport {
                q_cur_units,
                f_max_units,
                cp,
            } => {
                self.deliver_feedback(
                    k,
                    pkt.flow,
                    FeedbackEvent::RoccQueueReport {
                        q_cur_units,
                        f_max_units,
                        cp,
                    },
                );
            }
            PacketKind::DcqcnCnp => {
                self.deliver_feedback(k, pkt.flow, FeedbackEvent::DcqcnCnp);
            }
            PacketKind::QcnFb { fb, cp } => {
                self.deliver_feedback(k, pkt.flow, FeedbackEvent::QcnFb { fb, cp });
            }
        }
    }

    /// A packet arrived with a failed FCS (fault-injected bit corruption).
    /// The frame is discarded, but a corrupted *data* packet leaves a gap
    /// the receiver can see — so, like an out-of-order arrival, it arms a
    /// NACK to nudge the sender's go-back-N instead of waiting out a full
    /// RTO. Corrupted control is dropped silently: ACKs are cumulative and
    /// congestion feedback is periodic, so both repair themselves.
    pub fn handle_corrupt_arrive(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        pkt: Packet,
    ) {
        k.prof.enter(Phase::HostCompute);
        if let PacketKind::Data { .. } = pkt.kind {
            let rf = self.recv.entry(pkt.flow).or_default();
            if !rf.complete && !rf.nack_armed {
                rf.nack_armed = true;
                let expected = rf.expected;
                self.ctrl_q.push_back(Packet {
                    flow: pkt.flow,
                    src: self.id,
                    dst: pkt.src,
                    kind: PacketKind::Nack {
                        expected_seq: expected,
                    },
                    ecn: false,
                    int: IntStack::new(),
                    sent_at: k.now,
                });
                self.try_send(k, topo, trace);
            }
        }
    }

    /// The NIC's attached link was restored after an outage. Any PFC pause
    /// state from before the outage is stale (the pausing switch resyncs its
    /// own side too), so clear it and restart transmission.
    pub fn on_link_restored(&mut self, k: &mut Kernel, topo: &Topology, trace: &mut Trace) {
        k.prof.enter(Phase::HostCompute);
        self.paused = false;
        self.try_send(k, topo, trace);
    }

    /// Crash: NIC and transport soft state is lost — the in-flight frame,
    /// queued ACKs/NACKs, pacing and wake bookkeeping, every pending timer,
    /// and the unacked transmit window (senders roll back to the cumulative
    /// ack). Receiver-side reassembly state is retained: it lives in host
    /// memory the go-back-N protocol cannot renegotiate, and wiping it would
    /// deadlock any sender mid-flow forever.
    /// Returns the wire bytes of the destroyed in-flight frame so the
    /// engine can settle the conservation ledger (queued control frames
    /// were never injected — they only enter the ledger at `transmit`).
    pub fn on_crash(&mut self) -> u64 {
        self.busy = false;
        let lost = self
            .in_flight
            .take()
            .map(|p| p.wire_bytes())
            .unwrap_or(0);
        self.paused = false;
        self.ctrl_q.clear();
        self.ready.clear();
        self.waiting.clear();
        self.wake_at = None;
        for f in self.flows.values_mut() {
            f.next_seq = f.acked;
            f.last_tx = None;
            f.sched = SchedState::Idle;
            f.wait_until = SimTime::ZERO;
            // Invalidate every pending timer (they are replayed by the
            // engine while the host is down and must die on arrival).
            for g in f.timer_gen.iter_mut() {
                *g = g.wrapping_add(1);
            }
        }
        lost
    }

    /// Come back from a pause or crash-restart: reset the TX path, re-arm
    /// the retransmission timeout for every flow that still has unacked
    /// data, and restart transmission. The RTO guarantees forward progress
    /// even if every in-flight packet and pending event was destroyed
    /// during the outage.
    pub fn revive(&mut self, k: &mut Kernel, topo: &Topology, trace: &mut Trace) {
        self.busy = false;
        // A pause can strand a serialized-but-undelivered frame (its TxDone
        // was discarded while the host was down); it never reaches the wire.
        if let Some(p) = self.in_flight.take() {
            k.san.destroy(p.wire_bytes());
        }
        self.wake_at = None;
        let fids: Vec<FlowId> = self.flows.keys().copied().collect();
        for fid in fids {
            let needs_rto = self
                .flows
                .get(&fid)
                .is_some_and(|f| f.acked < f.next_seq || f.has_data());
            if needs_rto {
                self.arm_rto(k, fid);
            }
            self.activate(fid);
        }
        self.try_send(k, topo, trace);
    }

    /// Queue a feedback packet for RP processing after the reaction delay
    /// (paper: 15 µs), plus the host-stack latency in the testbed profile.
    fn deliver_feedback(&mut self, k: &mut Kernel, flow: FlowId, fb: FeedbackEvent) {
        let mut delay = k.config.rp_feedback_delay + k.config.host_stack_latency;
        let jitter = k.config.host_stack_jitter.as_nanos();
        if jitter > 0 {
            delay += SimDuration::from_nanos(k.rng.gen_range(0..=jitter));
        }
        k.schedule(
            k.now + delay,
            Event::Feedback {
                node: self.id,
                flow,
                fb,
            },
        );
    }

    /// RP-delayed feedback delivery.
    pub fn handle_feedback(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        flow: FlowId,
        fb: FeedbackEvent,
    ) {
        k.prof.enter(Phase::HostCompute);
        let mut ctx = self.cc_ctx(k, trace.cc_mask());
        let Some(f) = self.flows.get_mut(&flow) else {
            return;
        };
        f.cc.on_feedback(&mut ctx, fb);
        let events = std::mem::take(&mut ctx.events);
        self.publish_cc_events(k, trace, flow, events);
        self.apply_timer_reqs(k, flow, ctx);
        self.activate_on_rate_change(flow);
        self.try_send(k, topo, trace);
    }

    /// A CC or transport timer fired.
    pub fn handle_cc_timer(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        flow: FlowId,
        token: u8,
        gen: u64,
    ) {
        k.prof.enter(Phase::HostCompute);
        {
            let Some(f) = self.flows.get_mut(&flow) else {
                return;
            };
            let t = token as usize % TIMER_SLOTS;
            if f.timer_gen[t] != gen {
                return; // stale (reset or cancelled)
            }
            if token == RTO_TOKEN {
                // Go-back-N timeout: roll back to the cumulative ack.
                if f.acked < f.next_seq {
                    f.next_seq = f.acked;
                    let _ = f;
                    self.arm_rto(k, flow);
                    self.activate(flow);
                    self.try_send(k, topo, trace);
                }
                return;
            }
        }
        let mut ctx = self.cc_ctx(k, trace.cc_mask());
        let Some(f) = self.flows.get_mut(&flow) else {
            return;
        };
        f.cc.on_timer(&mut ctx, token);
        let events = std::mem::take(&mut ctx.events);
        self.publish_cc_events(k, trace, flow, events);
        self.apply_timer_reqs(k, flow, ctx);
        self.activate_on_rate_change(flow);
        self.try_send(k, topo, trace);
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_data(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        flow_dir: &FxHashMap<FlowId, FlowMeta>,
        pkt: &Packet,
        seq: u64,
        payload: u64,
        last: bool,
    ) {
        let rf = self.recv.entry(pkt.flow).or_default();
        if rf.complete {
            // Duplicate of an already-finished flow (lossy-mode
            // retransmission overlap): still ACK so the sender finishes.
            let cum = rf.expected;
            self.ctrl_q.push_back(Packet {
                flow: pkt.flow,
                src: self.id,
                dst: pkt.src,
                kind: PacketKind::Ack {
                    cum_seq: cum,
                    ecn_echo: pkt.ecn,
                    data_tx_time: pkt.sent_at,
                    int: pkt.int,
                },
                ecn: false,
                int: IntStack::new(),
                sent_at: k.now,
            });
            self.try_send(k, topo, trace);
            return;
        }
        if seq == rf.expected {
            rf.expected += payload;
            rf.nack_armed = false;
            trace.note_delivery(pkt.flow, payload);
            if last {
                rf.complete = true;
                let meta = flow_dir.get(&pkt.flow);
                trace.note_fct(FctRecord {
                    flow: pkt.flow,
                    size: rf.expected,
                    start: meta.map(|m| m.start).unwrap_or(SimTime::ZERO),
                    end: k.now,
                });
            }
        } else if seq > rf.expected && !rf.nack_armed {
            rf.nack_armed = true;
            let expected = rf.expected;
            self.ctrl_q.push_back(Packet {
                flow: pkt.flow,
                src: self.id,
                dst: pkt.src,
                kind: PacketKind::Nack {
                    expected_seq: expected,
                },
                ecn: false,
                int: IntStack::new(),
                sent_at: k.now,
            });
        }
        // Always ACK cumulatively, echoing this packet's congestion signals.
        let cum = self.recv.get(&pkt.flow).map(|r| r.expected).unwrap_or(0);
        self.ctrl_q.push_back(Packet {
            flow: pkt.flow,
            src: self.id,
            dst: pkt.src,
            kind: PacketKind::Ack {
                cum_seq: cum,
                ecn_echo: pkt.ecn,
                data_tx_time: pkt.sent_at,
                int: pkt.int,
            },
            ecn: false,
            int: IntStack::new(),
            sent_at: k.now,
        });
        self.try_send(k, topo, trace);
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_ack(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        flow: FlowId,
        cum_seq: u64,
        ecn_echo: bool,
        data_tx_time: SimTime,
        int: IntStack,
    ) {
        let mut completed = false;
        {
            let mut ctx = self.cc_ctx(k, trace.cc_mask());
            let Some(f) = self.flows.get_mut(&flow) else {
                return;
            };
            let newly = cum_seq.saturating_sub(f.acked);
            if cum_seq > f.acked {
                f.acked = cum_seq;
                // A crash rolls next_seq back to the then-current acked; an
                // ACK already in flight can land afterwards and cover bytes
                // past the rollback point. Those bytes are delivered — skip
                // ahead rather than retransmit them (and keep the
                // acked ≤ next_seq invariant intact).
                if f.next_seq < f.acked {
                    f.next_seq = f.acked;
                }
            }
            let rtt = k.now.saturating_since(data_tx_time);
            let ack = AckEvent {
                newly_acked: newly,
                cum_seq,
                rtt,
                ecn_echo,
                int,
            };
            f.cc.on_ack(&mut ctx, ack);
            let size = f.size;
            let acked = f.acked;
            let outstanding = f.next_seq > f.acked;
            let events = std::mem::take(&mut ctx.events);
            self.publish_cc_events(k, trace, flow, events);
            self.apply_timer_reqs(k, flow, ctx);
            if size != u64::MAX && acked >= size {
                completed = true;
            } else if newly > 0 {
                if outstanding {
                    self.arm_rto(k, flow);
                } else {
                    self.cancel_rto(flow);
                }
            }
        }
        if completed {
            self.remove_flow(flow);
        } else {
            self.activate_on_rate_change(flow);
        }
        self.try_send(k, topo, trace);
    }
}
