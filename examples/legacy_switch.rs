//! Legacy-ASIC deployment (§3.6): rate computation at the host.
//!
//! Some installed switch ASICs can't do arithmetic in the feedback path.
//! RoCC still works: the congestion point ships its raw queue depth (plus
//! Fmax, the key into the host's parameter registry) in a queue-report
//! message, and every source replicates the fair-rate computation locally.
//! This example runs the same contended scenario in both modes and shows
//! they land on the same equilibrium.
//!
//! ```text
//! cargo run --release --example legacy_switch
//! ```

use rocc::core::{HostCalcRoccFactory, RoccHostCcFactory, RoccSwitchCcFactory};
use rocc::sim::cc::{HostCcFactory, SwitchCcFactory};
use rocc::sim::prelude::*;

fn run(label: &str, host: Box<dyn HostCcFactory>, switch: Box<dyn SwitchCcFactory>) {
    const N: usize = 6;
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    let (port, _) = b.connect(sw, dst, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut senders = Vec::new();
    for i in 0..N {
        let h = b.add_host(format!("h{i}"));
        b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        senders.push(h);
    }
    let mut sim = Sim::new(b.build(), SimConfig::default(), host, switch);
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(sw, port);
    for (i, &s) in senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(BitRate::from_gbps(36)),
        });
    }
    sim.run_until(SimTime::from_millis(8));
    let base: Vec<u64> = (0..N)
        .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
        .collect();
    sim.run_until(SimTime::from_millis(16));
    let rates: Vec<f64> = (0..N)
        .map(|i| (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / 8e-3)
        .collect();
    let tail: Vec<f64> = sim.trace.queue_series[0]
        .iter()
        .filter(|s| s.t >= SimTime::from_millis(8))
        .map(|s| s.v)
        .collect();
    let qmean = tail.iter().sum::<f64>() / tail.len() as f64;
    let rate_strs: Vec<String> = rates.iter().map(|r| format!("{:.2}", r / 1e9)).collect();
    println!("{label:>18}: queue {:.0} KB, per-flow Gb/s [{}]", qmean / 1e3, rate_strs.join(" "));
}

fn main() {
    println!("Six flows on one 40G bottleneck; ideal fair share 6.36 Gb/s each\n");
    run(
        "switch-computed",
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    run(
        "host-computed",
        Box::new(HostCalcRoccFactory::default()),
        Box::new(RoccSwitchCcFactory::new().host_computed()),
    );
    println!();
    println!("Same fair split, same queue at Qref = 150 KB. The host-computed");
    println!("mode only needs the switch to read its queue depth and mirror a");
    println!("32-byte report — viable on ASICs with no floating point at all.");
}
