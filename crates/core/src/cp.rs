//! The congestion-point fair-rate computation (paper Alg. 1).
//!
//! Every update interval T the calculator reads the egress queue depth and
//! produces the new fair rate F (in multiples of ΔF):
//!
//! 1. **Multiplicative decrease** — if the queue exceeds Qmax (and F is
//!    still high, > Fmax/8), F drops straight to Fmin; if the queue *grew*
//!    by more than Qmid in one interval, F halves. This tames sudden bursts
//!    before they overrun the buffer and trigger PFC.
//! 2. **PI controller** — otherwise
//!    `F ← F − α·(Qcur − Qref) − β·(Qcur − Qold)`, driving the queue to the
//!    reference depth Qref. A stable queue means arrival rate equals drain
//!    rate, i.e. F is the max-min fair share, with no need to know the flow
//!    count or drain rate.
//! 3. **Auto-tuning** — the gains (α, β) are the static pair (α̃, β̃) scaled
//!    down by a power of two chosen from which of six quantized regions of
//!    `[Fmin, Fmax]` the current F falls into (small F ⇒ many flows ⇒ high
//!    loop gain ⇒ smaller α, β keep the loop stable; §5.3).
//!
//! All arithmetic runs on the Q47.16 fixed-point datapath ([`crate::fixed`])
//! — scaling by powers of two is exact shifts, mimicking the ASIC.

use crate::fixed::Fx;
use crate::params::CpParams;
use rocc_sim::prelude::BitRate;

/// The per-port fair-rate state machine.
#[derive(Debug, Clone)]
pub struct FairRateCalculator {
    p: CpParams,
    /// Current fair rate F, in multiples of ΔF.
    f: Fx,
    /// Queue depth at the previous update, in multiples of ΔQ.
    q_old: i64,
    alpha_static: Fx,
    beta_static: Fx,
    /// Gains selected by the most recent auto-tune (telemetry/tests).
    last_gains: (Fx, Fx),
    /// Auto-tune region chosen by the most recent auto-tune (0..=5).
    last_region: u32,
    /// Snapshot of the most recent update (telemetry).
    last_update: Option<LastUpdate>,
}

/// Which branch of Alg. 1 produced the latest rate (telemetry/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Queue above Qmax: F ← Fmin (Alg. 1 line 3).
    MdToMin,
    /// Queue grew by ≥ Qmid: F ← F/2 (Alg. 1 line 5).
    MdHalve,
    /// PI update (Alg. 1 line 8).
    Pi,
}

impl From<UpdateKind> for rocc_sim::telemetry::CpDecisionKind {
    fn from(k: UpdateKind) -> Self {
        match k {
            UpdateKind::MdToMin => rocc_sim::telemetry::CpDecisionKind::MdToMin,
            UpdateKind::MdHalve => rocc_sim::telemetry::CpDecisionKind::MdHalve,
            UpdateKind::Pi => rocc_sim::telemetry::CpDecisionKind::Pi,
        }
    }
}

/// Full description of the most recent [`FairRateCalculator::update`] —
/// everything the decision-level telemetry wants to attribute one Alg. 1
/// tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LastUpdate {
    /// Which branch fired.
    pub kind: UpdateKind,
    /// Fair rate after the update, in multiples of ΔF.
    pub fair_rate_units: u32,
    /// Proportional gain in force (the most recent auto-tune selection;
    /// MD branches do not re-tune, so this is the gain the *next* PI tick
    /// would start from).
    pub alpha: f64,
    /// Integral gain in force.
    pub beta: f64,
    /// Auto-tune region (0 = F ≥ Fmax/2 … 5 = smallest gains). Remains at
    /// its previous value on MD branches, 0 when auto-tune is disabled.
    pub region: u32,
    /// Queue depth consumed by the update, in bytes.
    pub q_cur_bytes: u64,
}

impl FairRateCalculator {
    /// Start at F = Fmax (an uncongested port imposes no limit).
    pub fn new(p: CpParams) -> Self {
        p.validate();
        FairRateCalculator {
            f: Fx::from_int(p.f_max as i64),
            q_old: 0,
            alpha_static: Fx::from_f64(p.alpha_static),
            beta_static: Fx::from_f64(p.beta_static),
            last_gains: (
                Fx::from_f64(p.alpha_static),
                Fx::from_f64(p.beta_static),
            ),
            last_region: 0,
            last_update: None,
            p,
        }
    }

    /// Parameters in force.
    pub fn params(&self) -> &CpParams {
        &self.p
    }

    /// Current fair rate, in multiples of ΔF (what a CNP would carry).
    pub fn fair_rate_units(&self) -> u32 {
        self.f.round_int().clamp(self.p.f_min as i64, self.p.f_max as i64) as u32
    }

    /// Current fair rate as a [`BitRate`].
    pub fn fair_rate(&self) -> BitRate {
        BitRate::from_bps(self.p.delta_f.as_bps() * self.fair_rate_units() as u64)
    }

    /// True when this port currently constrains flows (F below Fmax):
    /// the CP sends CNPs only in this state.
    pub fn is_congested(&self) -> bool {
        self.fair_rate_units() < self.p.f_max
    }

    /// Gains chosen by the last auto-tune.
    pub fn gains(&self) -> (f64, f64) {
        (self.last_gains.0.to_f64(), self.last_gains.1.to_f64())
    }

    /// Snapshot of the most recent [`FairRateCalculator::update`], or
    /// `None` before the first tick. This is the decision-telemetry
    /// surface: branch taken, rate, gains, auto-tune region, queue input.
    pub fn last_update(&self) -> Option<LastUpdate> {
        self.last_update
    }

    /// Number of words [`FairRateCalculator::snapshot_state`] appends —
    /// the codec is fixed-width so callers can split concatenated state.
    pub const STATE_WORDS: usize = 12;

    /// Append the calculator's dynamic state (F, Qold, last gains/region,
    /// last-update snapshot) as plain words for the engine snapshot layer.
    /// Parameters are construction-time configuration and are not captured.
    pub fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.f.raw() as u64);
        out.push(self.q_old as u64);
        out.push(self.last_gains.0.raw() as u64);
        out.push(self.last_gains.1.raw() as u64);
        out.push(self.last_region as u64);
        match self.last_update {
            None => out.extend_from_slice(&[0; 7]),
            Some(lu) => {
                out.push(1);
                out.push(match lu.kind {
                    UpdateKind::MdToMin => 0,
                    UpdateKind::MdHalve => 1,
                    UpdateKind::Pi => 2,
                });
                out.push(lu.fair_rate_units as u64);
                out.push(lu.alpha.to_bits());
                out.push(lu.beta.to_bits());
                out.push(lu.region as u64);
                out.push(lu.q_cur_bytes);
            }
        }
    }

    /// Restore state captured by [`FairRateCalculator::snapshot_state`].
    /// Short input leaves the calculator unchanged — the engine verifies
    /// snapshot digests before this is ever reached.
    pub fn restore_state(&mut self, state: &[u64]) {
        if state.len() < Self::STATE_WORDS {
            return;
        }
        self.f = Fx::from_raw(state[0] as i64);
        self.q_old = state[1] as i64;
        self.last_gains = (
            Fx::from_raw(state[2] as i64),
            Fx::from_raw(state[3] as i64),
        );
        self.last_region = state[4] as u32;
        self.last_update = if state[5] == 1 {
            Some(LastUpdate {
                kind: match state[6] {
                    0 => UpdateKind::MdToMin,
                    1 => UpdateKind::MdHalve,
                    _ => UpdateKind::Pi,
                },
                fair_rate_units: state[7] as u32,
                alpha: f64::from_bits(state[8]),
                beta: f64::from_bits(state[9]),
                region: state[10] as u32,
                q_cur_bytes: state[11],
            })
        } else {
            None
        };
    }

    /// Alg. 1 `Auto_Tune`: quantize `[Fmin, Fmax]` into six power-of-two
    /// regions and scale the static gains by the region's ratio.
    fn auto_tune(&mut self) -> (Fx, Fx) {
        if !self.p.auto_tune {
            return (self.alpha_static, self.beta_static);
        }
        let f_max = Fx::from_int(self.p.f_max as i64);
        let mut level: u32 = 2;
        while self.f < f_max.shr(level.trailing_zeros()) && level < 64 {
            level *= 2;
        }
        let ratio = level / 2; // 1, 2, 4, 8, 16, or 32
        let shift = ratio.trailing_zeros();
        let gains = (self.alpha_static.shr(shift), self.beta_static.shr(shift));
        self.last_gains = gains;
        self.last_region = shift;
        gains
    }

    /// Alg. 1 `Calculate_Fair_Rate`: consume the current queue depth (in
    /// bytes) and return the new fair rate in multiples of ΔF, plus which
    /// branch fired.
    pub fn update(&mut self, q_cur_bytes: u64) -> (u32, UpdateKind) {
        let q_cur = (q_cur_bytes / self.p.delta_q) as i64;
        let f_md_floor = Fx::from_int(self.p.f_max as i64).shr(3); // Fmax/8
        let kind;
        if self.p.multiplicative_decrease
            && q_cur >= self.p.q_max as i64
            && self.f > f_md_floor
        {
            self.f = Fx::from_int(self.p.f_min as i64);
            kind = UpdateKind::MdToMin;
        } else if self.p.multiplicative_decrease
            && (q_cur - self.q_old) >= self.p.q_mid as i64
            && self.f > f_md_floor
        {
            self.f = self.f.halved();
            kind = UpdateKind::MdHalve;
        } else {
            let (alpha, beta) = self.auto_tune();
            self.f = self.f
                - alpha.mul_int(q_cur - self.p.q_ref as i64)
                - beta.mul_int(q_cur - self.q_old);
            kind = UpdateKind::Pi;
        }
        // Boundary checks (Alg. 1 lines 9–12).
        self.f = self.f.clamp_fx(
            Fx::from_int(self.p.f_min as i64),
            Fx::from_int(self.p.f_max as i64),
        );
        self.q_old = q_cur;
        let units = self.fair_rate_units();
        self.last_update = Some(LastUpdate {
            kind,
            fair_rate_units: units,
            alpha: self.last_gains.0.to_f64(),
            beta: self.last_gains.1.to_f64(),
            region: self.last_region,
            q_cur_bytes,
        });
        (units, kind)
    }
}

/// A floating-point reference implementation of Alg. 1, used to bound the
/// quantization effect of the fixed-point datapath (DESIGN.md ablation 5).
/// Semantically identical to [`FairRateCalculator`], but F, α, β live in
/// `f64`.
#[derive(Debug, Clone)]
pub struct FairRateCalculatorF64 {
    p: CpParams,
    f: f64,
    q_old: i64,
}

impl FairRateCalculatorF64 {
    /// Start at F = Fmax.
    pub fn new(p: CpParams) -> Self {
        p.validate();
        FairRateCalculatorF64 {
            f: p.f_max as f64,
            q_old: 0,
            p,
        }
    }

    /// Current fair rate in multiples of ΔF (rounded as a CNP would carry).
    pub fn fair_rate_units(&self) -> u32 {
        self.f.round().clamp(self.p.f_min as f64, self.p.f_max as f64) as u32
    }

    fn auto_tune(&self) -> (f64, f64) {
        if !self.p.auto_tune {
            return (self.p.alpha_static, self.p.beta_static);
        }
        let f_max = self.p.f_max as f64;
        let mut level = 2.0;
        while self.f < f_max / level && level < 64.0 {
            level *= 2.0;
        }
        let ratio = level / 2.0;
        (self.p.alpha_static / ratio, self.p.beta_static / ratio)
    }

    /// Alg. 1 in floating point.
    pub fn update(&mut self, q_cur_bytes: u64) -> u32 {
        let q_cur = (q_cur_bytes / self.p.delta_q) as i64;
        let f_md_floor = self.p.f_max as f64 / 8.0;
        if self.p.multiplicative_decrease
            && q_cur >= self.p.q_max as i64
            && self.f > f_md_floor
        {
            self.f = self.p.f_min as f64;
        } else if self.p.multiplicative_decrease
            && (q_cur - self.q_old) >= self.p.q_mid as i64
            && self.f > f_md_floor
        {
            self.f /= 2.0;
        } else {
            let (alpha, beta) = self.auto_tune();
            self.f -= alpha * (q_cur - self.p.q_ref as i64) as f64
                + beta * (q_cur - self.q_old) as f64;
        }
        self.f = self.f.clamp(self.p.f_min as f64, self.p.f_max as f64);
        self.q_old = q_cur;
        self.fair_rate_units()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CpParams, DELTA_Q};
    use rocc_sim::prelude::SimDuration;

    fn calc() -> FairRateCalculator {
        FairRateCalculator::new(CpParams::for_40g())
    }

    #[test]
    fn starts_uncongested_at_fmax() {
        let c = calc();
        assert_eq!(c.fair_rate_units(), 4000);
        assert!(!c.is_congested());
        assert_eq!(c.fair_rate(), BitRate::from_gbps(40));
    }

    #[test]
    fn empty_queue_keeps_fmax() {
        let mut c = calc();
        for _ in 0..100 {
            let (f, k) = c.update(0);
            assert_eq!(f, 4000);
            assert_eq!(k, UpdateKind::Pi);
        }
    }

    #[test]
    fn md_to_min_on_queue_above_qmax() {
        let mut c = calc();
        let (f, k) = c.update(400_000); // > Qmax (360 KB)
        assert_eq!(k, UpdateKind::MdToMin);
        assert_eq!(f, 10); // Fmin
    }

    #[test]
    fn md_halves_on_rapid_queue_growth() {
        let mut c = calc();
        c.update(0);
        // Growth of 310 KB in one interval (> Qmid = 300 KB), but below Qmax.
        let (f, k) = c.update(310_000);
        assert_eq!(k, UpdateKind::MdHalve);
        assert_eq!(f, 2000);
    }

    #[test]
    fn md_suppressed_when_f_already_low() {
        let mut c = calc();
        // Drive F to Fmin via MD.
        c.update(400_000);
        assert_eq!(c.fair_rate_units(), 10);
        // Queue still above Qmax, but F ≤ Fmax/8 so MD must not re-fire;
        // the PI branch runs instead (and clamps at Fmin).
        let (_, k) = c.update(400_000);
        assert_eq!(k, UpdateKind::Pi);
    }

    #[test]
    fn pi_decreases_rate_when_queue_above_ref() {
        let mut c = calc();
        c.update(150_000); // exactly Qref: no change pressure beyond ΔQold
        let before = c.fair_rate_units();
        let (after, k) = c.update(200_000); // 50 KB above Qref, growing
        assert_eq!(k, UpdateKind::Pi);
        assert!(after < before, "rate must fall: {before} -> {after}");
    }

    #[test]
    fn pi_increases_rate_when_queue_below_ref() {
        let mut c = calc();
        // Force F low first.
        c.update(400_000);
        let before = c.fair_rate_units();
        // Empty queue: below Qref, shrinking → F rises.
        let (after, _) = c.update(0);
        assert!(after > before, "rate must rise: {before} -> {after}");
    }

    #[test]
    fn rate_always_within_bounds() {
        let mut c = calc();
        for q in [0u64, 1 << 10, 1 << 14, 1 << 18, 1 << 22, 0, 1 << 22, 0] {
            let (f, _) = c.update(q);
            assert!((10..=4000).contains(&f), "F out of bounds: {f}");
        }
    }

    #[test]
    fn auto_tune_levels_follow_paper() {
        // ratio = 1 while F ≥ Fmax/2, then doubles per octave down, capped
        // at 32 (six regions).
        let p = CpParams::for_40g();
        let mut c = FairRateCalculator::new(p);
        let expect = [
            (4000.0, 1u32),
            (1999.0, 2),
            (999.0, 4),
            (499.0, 8),
            (249.0, 16),
            (124.0, 32),
            (10.0, 32),
        ];
        for (f, ratio) in expect {
            c.f = Fx::from_f64(f);
            let (a, b) = c.auto_tune();
            let exp_a = 0.3 / ratio as f64;
            let exp_b = 1.5 / ratio as f64;
            assert!(
                (a.to_f64() - exp_a).abs() < 1e-3,
                "alpha at F={f}: {} vs {exp_a}",
                a.to_f64()
            );
            assert!(
                (b.to_f64() - exp_b).abs() < 1e-3,
                "beta at F={f}: {} vs {exp_b}",
                b.to_f64()
            );
        }
    }

    /// Closed-loop convergence: N flows obey the published fair rate; the
    /// queue integrates arrivals minus drain. The rate must converge to
    /// C/N and the queue to Qref, for a wide range of N (the auto-tuner's
    /// whole point, Fig. 8).
    fn simulate_closed_loop(n: u64, link: BitRate, p: CpParams) -> (f64, f64) {
        let t = p.update_interval;
        let mut c = FairRateCalculator::new(p);
        let mut q_bytes: f64 = 0.0;
        let mut f_units = c.fair_rate_units();
        for _ in 0..2000 {
            // 2000 * 40 µs = 80 ms
            let arrival = (n * f_units as u64 * p.delta_f.as_bps()) as f64;
            let drain = link.as_bps() as f64;
            q_bytes += (arrival - drain) * t.as_secs_f64() / 8.0;
            q_bytes = q_bytes.max(0.0);
            let (f, _) = c.update(q_bytes as u64);
            f_units = f;
        }
        let fair_bps = f_units as u64 * p.delta_f.as_bps();
        (fair_bps as f64, q_bytes)
    }

    #[test]
    fn converges_for_small_and_large_n() {
        let link = BitRate::from_gbps(40);
        for n in [2u64, 10, 100] {
            let (rate, q) = simulate_closed_loop(n, link, CpParams::for_40g());
            let ideal = link.as_bps() as f64 / n as f64;
            let err = (rate - ideal).abs() / ideal;
            assert!(
                err < 0.10,
                "N={n}: rate {rate:.0} vs ideal {ideal:.0} (err {err:.2})"
            );
            let qref = 150_000.0;
            assert!(
                (q - qref).abs() / qref < 0.35,
                "N={n}: queue {q:.0} vs Qref {qref}"
            );
        }
    }

    #[test]
    fn converges_on_100g_profile() {
        let link = BitRate::from_gbps(100);
        for n in [2u64, 10, 100] {
            let (rate, _) = simulate_closed_loop(n, link, CpParams::for_100g());
            let ideal = link.as_bps() as f64 / n as f64;
            assert!(
                (rate - ideal).abs() / ideal < 0.10,
                "N={n}: {rate:.0} vs {ideal:.0}"
            );
        }
    }

    #[test]
    fn fixed_gains_struggle_where_auto_tune_succeeds() {
        // Ablation: with auto-tuning disabled and the aggressive static
        // gains, large N drives the loop unstable (queue far from Qref or
        // oscillating rate). We check the auto-tuned loop lands closer to
        // the ideal rate than the fixed-gain loop for N=100.
        let link = BitRate::from_gbps(40);
        let mut fixed = CpParams::for_40g();
        fixed.auto_tune = false;
        let (r_fixed, _) = simulate_closed_loop(100, link, fixed);
        let (r_auto, _) = simulate_closed_loop(100, link, CpParams::for_40g());
        let ideal = link.as_bps() as f64 / 100.0;
        let err_fixed = (r_fixed - ideal).abs() / ideal;
        let err_auto = (r_auto - ideal).abs() / ideal;
        assert!(
            err_auto <= err_fixed + 1e-9,
            "auto-tune must not be worse: auto {err_auto:.3} vs fixed {err_fixed:.3}"
        );
    }

    #[test]
    fn update_interval_is_paper_t() {
        assert_eq!(
            calc().params().update_interval,
            SimDuration::from_micros(40)
        );
    }

    #[test]
    fn delta_q_scaling_quantizes_queue() {
        let mut c = calc();
        // Depths within the same ΔQ bucket are indistinguishable.
        let (f1, _) = c.update(DELTA_Q - 1);
        let mut c2 = calc();
        let (f2, _) = c2.update(0);
        assert_eq!(f1, f2);
    }
}
