//! Chrome-trace / Perfetto export: renders a finished run as a JSON trace
//! that loads directly in `ui.perfetto.dev` (or `chrome://tracing`).
//!
//! Track layout:
//!
//! * **Process 1 — flows.** One thread per flow. The flow's lifetime is a
//!   slice (start → completion, or run end if unfinished); RP transitions
//!   are instant events on the flow's track; the RP rate limiter is a
//!   per-flow counter.
//! * **Process 100+n — each switch n.** One thread per egress port. PFC
//!   pause→resume windows are slices; CNP emissions are instants; sampled
//!   queue depth and the CP fair rate are counters.
//! * **CNP causality.** Every CNP emission opens a flow arrow (`ph:"s"`)
//!   on the congestion point's track, finished (`ph:"f"`) at the next RP
//!   transition of the steered flow — the per-hop feedback path is visible
//!   as arrows from switch to sender.
//! * **Process 999 — engine.** Present only when the phase profiler was
//!   enabled for the run: event-heap depth and live wire-packet slab
//!   occupancy as counter tracks, sampled at the profiler's heap stride.
//!
//! Timestamps are microseconds (the Chrome trace convention); the exporter
//! is a pure read over the collected [`crate::trace::Trace`], so exporting
//! cannot perturb a run.

use crate::engine::Sim;
use crate::packet::FlowId;
use crate::telemetry::SimEvent;
use crate::fastmap::FxHashMap;
use crate::time::SimTime;

/// Process id of the flow tracks.
const FLOW_PID: u64 = 1;
/// Process-id base for switches: switch n gets pid `SWITCH_PID_BASE + n`.
const SWITCH_PID_BASE: u64 = 100;
/// Process id of the engine-internals tracks (profiler counters).
const ENGINE_PID: u64 = 999;

fn us(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1000.0
}

fn meta_process(out: &mut Vec<String>, pid: u64, name: &str) {
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
    ));
}

fn meta_thread(out: &mut Vec<String>, pid: u64, tid: u64, name: &str) {
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
    ));
}

/// Export the run as a Chrome-trace JSON document.
pub fn export_chrome_trace(sim: &Sim) -> String {
    let mut ev: Vec<String> = Vec::new();
    let end = sim.kernel.now;

    // ---- flow process: metadata, lifetime slices, completion map.
    meta_process(&mut ev, FLOW_PID, "flows");
    let mut fct_end: FxHashMap<FlowId, SimTime> = FxHashMap::default();
    for r in &sim.trace.fcts {
        fct_end.insert(r.flow, r.end);
    }
    for spec in sim.flows() {
        let tid = spec.id.0;
        meta_thread(&mut ev, FLOW_PID, tid, &format!("flow {}", spec.id.0));
        let done = fct_end.get(&spec.id).copied();
        let stop = done.unwrap_or(end);
        let dur = (us(stop) - us(spec.start)).max(0.0);
        let name = if done.is_some() {
            format!("flow {} ({} B)", spec.id.0, spec.size)
        } else {
            format!("flow {} ({} B, unfinished)", spec.id.0, spec.size)
        };
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":{FLOW_PID},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{name}\",\"cat\":\"flow\"}}",
            us(spec.start),
            dur
        ));
    }

    // ---- switch processes: metadata for every switch that appears.
    let mut switch_named: Vec<bool> = vec![false; sim.topo().nodes().len()];
    let mut name_switch = |ev: &mut Vec<String>, node: usize| {
        if !switch_named[node] {
            switch_named[node] = true;
            meta_process(ev, SWITCH_PID_BASE + node as u64, &format!("switch {node}"));
        }
    };

    // ---- telemetry event pass: PFC slices, CNP arrows, RP instants,
    // fair-rate and RP-rate counters.
    let mut pause_open: FxHashMap<(usize, usize), SimTime> = FxHashMap::default();
    // CNP arrows pending per flow: (arrow id, emit time).
    let mut pending_cnp: FxHashMap<FlowId, Vec<u64>> = FxHashMap::default();
    let mut arrow_id: u64 = 0;
    for e in &sim.trace.telemetry.events {
        match *e {
            SimEvent::Pfc {
                t,
                node,
                port,
                pause,
            } => {
                name_switch(&mut ev, node.0);
                let pid = SWITCH_PID_BASE + node.0 as u64;
                if pause {
                    pause_open.entry((node.0, port.0)).or_insert(t);
                } else if let Some(start) = pause_open.remove(&(node.0, port.0)) {
                    ev.push(format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"PFC paused\",\"cat\":\"pfc\"}}",
                        port.0,
                        us(start),
                        (us(t) - us(start)).max(0.0)
                    ));
                }
            }
            SimEvent::CnpEmit {
                t,
                cp,
                flow,
                fair_rate_units,
            } => {
                name_switch(&mut ev, cp.node.0);
                let pid = SWITCH_PID_BASE + cp.node.0 as u64;
                arrow_id += 1;
                ev.push(format!(
                    "{{\"ph\":\"s\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"id\":{arrow_id},\"name\":\"cnp\",\"cat\":\"cnp\",\"args\":{{\"flow\":{},\"fair_rate_units\":{fair_rate_units}}}}}",
                    cp.port.0,
                    us(t),
                    flow.0
                ));
                pending_cnp.entry(flow).or_default().push(arrow_id);
            }
            SimEvent::RpTransition {
                t,
                flow,
                kind,
                rate_bps,
                ..
            } => {
                ev.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{FLOW_PID},\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"rp {}\",\"cat\":\"rp\",\"args\":{{\"rate_bps\":{rate_bps}}}}}",
                    flow.0,
                    us(t),
                    kind.as_str()
                ));
                ev.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{FLOW_PID},\"tid\":{},\"ts\":{},\"name\":\"rp Mbps flow {}\",\"args\":{{\"mbps\":{}}}}}",
                    flow.0,
                    us(t),
                    flow.0,
                    rate_bps / 1_000_000
                ));
                // A CNP-driven transition closes the oldest pending arrow
                // for this flow (recovery doublings are timer-driven).
                if kind != crate::telemetry::RpTransitionKind::RecoveryDouble {
                    if let Some(ids) = pending_cnp.get_mut(&flow) {
                        if !ids.is_empty() {
                            let id = ids.remove(0);
                            ev.push(format!(
                                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{FLOW_PID},\"tid\":{},\"ts\":{},\"id\":{id},\"name\":\"cnp\",\"cat\":\"cnp\"}}",
                                flow.0,
                                us(t)
                            ));
                        }
                    }
                }
            }
            SimEvent::CpDecision {
                t,
                cp,
                fair_rate_units,
                ..
            } => {
                name_switch(&mut ev, cp.node.0);
                let pid = SWITCH_PID_BASE + cp.node.0 as u64;
                ev.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"name\":\"fair_rate_units p{}\",\"args\":{{\"units\":{fair_rate_units}}}}}",
                    cp.port.0,
                    us(t),
                    cp.port.0
                ));
            }
            _ => {}
        }
    }
    // Pauses still open at run end render as slices ending at `now`.
    let mut open: Vec<((usize, usize), SimTime)> = pause_open.into_iter().collect();
    open.sort();
    for ((node, port), start) in open {
        let pid = SWITCH_PID_BASE + node as u64;
        name_switch(&mut ev, node);
        ev.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{port},\"ts\":{},\"dur\":{},\"name\":\"PFC paused (open)\",\"cat\":\"pfc\"}}",
            us(start),
            (us(end) - us(start)).max(0.0)
        ));
    }

    // ---- sampled queue-depth counters from the classic trace series.
    for (i, &(node, port)) in sim.trace.watched_queues().iter().enumerate() {
        name_switch(&mut ev, node.0);
        let pid = SWITCH_PID_BASE + node.0 as u64;
        for s in &sim.trace.queue_series[i] {
            ev.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"name\":\"queue bytes p{}\",\"args\":{{\"bytes\":{}}}}}",
                port.0,
                us(s.t),
                port.0,
                s.v as u64
            ));
        }
    }

    // ---- engine internals: heap-depth / slab-occupancy counters from the
    // phase profiler, when it was enabled for this run.
    if sim.kernel.prof.is_enabled() && !sim.kernel.prof.heap_series().is_empty() {
        meta_process(&mut ev, ENGINE_PID, "engine");
        meta_thread(&mut ev, ENGINE_PID, 0, "scheduler");
        for s in sim.kernel.prof.heap_series() {
            let ts = us(SimTime::from_nanos(s.t_ns));
            ev.push(format!(
                "{{\"ph\":\"C\",\"pid\":{ENGINE_PID},\"tid\":0,\"ts\":{ts},\"name\":\"event heap depth\",\"args\":{{\"events\":{}}}}}",
                s.heap
            ));
            ev.push(format!(
                "{{\"ph\":\"C\",\"pid\":{ENGINE_PID},\"tid\":0,\"ts\":{ts},\"name\":\"slab live packets\",\"args\":{{\"packets\":{}}}}}",
                s.slab_live
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        ev.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{NullHostCcFactory, NullSwitchCcFactory};
    use crate::config::SimConfig;
    use crate::engine::FlowSpec;
    use crate::telemetry::EventMask;
    use crate::time::SimDuration;
    use crate::topology::{NodeRole, TopologyBuilder};
    use crate::units::BitRate;

    #[test]
    fn trace_covers_flows_pfc_and_queues() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let d = b.add_host("d");
        b.connect(d, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..4 {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let mut sim = Sim::new(
            b.build(),
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.trace.telemetry.collect(EventMask::ALL);
        sim.trace.sample_period = Some(SimDuration::from_micros(20));
        sim.trace.watch_queue(sw, crate::topology::PortId(0));
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst: d,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        sim.run_until_flows_done(SimTime::from_millis(100))
            .assert_complete();
        let json = export_chrome_trace(&sim);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Flow lifetime slices, process metadata, PFC slices, queue counters.
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"flows\""));
        assert!(json.contains("\"cat\":\"flow\""));
        assert!(json.contains("\"name\":\"PFC paused\""));
        assert!(json.contains("queue bytes p0"));
        // Every slice has non-negative duration and balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains("\"dur\":-"));
        // Profiler was off: no engine-internals process in the trace.
        assert!(!json.contains("event heap depth"));
    }

    #[test]
    fn profiler_adds_engine_counter_tracks() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let d = b.add_host("d");
        b.connect(d, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let s = b.add_host("s");
        b.connect(s, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let mut sim = Sim::new(
            b.build(),
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.enable_profiler();
        sim.add_flow(FlowSpec {
            id: FlowId(0),
            src: s,
            dst: d,
            size: 500_000,
            start: SimTime::ZERO,
            offered: None,
        });
        sim.run_until_flows_done(SimTime::from_millis(100))
            .assert_complete();
        let json = export_chrome_trace(&sim);
        assert!(json.contains("\"name\":\"engine\""));
        assert!(json.contains("event heap depth"));
        assert!(json.contains("slab live packets"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
