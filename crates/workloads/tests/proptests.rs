//! Property-based tests for workload generation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rocc_workloads::{FlowSizeDist, PoissonWorkload};

proptest! {
    /// Quantile function is monotone and stays within the distribution's
    /// support, for both published distributions.
    #[test]
    fn quantile_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        for d in [FlowSizeDist::web_search(), FlowSizeDist::fb_hadoop()] {
            let (lo, hi) = (u1.min(u2), u1.max(u2));
            prop_assert!(d.quantile(lo) <= d.quantile(hi));
            prop_assert!(d.quantile(0.0) <= d.quantile(lo));
            prop_assert!(d.quantile(hi) <= d.quantile(1.0));
        }
    }

    /// Sampling respects the CDF: the empirical fraction below any
    /// published CDF point converges to its probability.
    #[test]
    fn sampling_matches_cdf_point(seed in 0u64..1000) {
        let d = FlowSizeDist::web_search();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000;
        let below_200k = (0..n).filter(|_| d.sample(&mut rng) <= 200_000).count();
        let frac = below_200k as f64 / n as f64;
        // CDF(200 kB) = 0.60; 4000 samples → ±4σ ≈ ±0.031.
        prop_assert!((frac - 0.60).abs() < 0.05, "frac {frac}");
    }

    /// Poisson generation: all arrivals within the horizon, sorted, flows
    /// target valid destinations, λ scales linearly with load.
    #[test]
    fn generation_invariants(
        load in 0.1f64..0.74,
        senders in 1usize..6,
        dsts in 2usize..6,
        seed in 0u64..500,
    ) {
        let wl = PoissonWorkload {
            dist: FlowSizeDist::fb_hadoop(),
            load,
            link_bps: 40_000_000_000,
            duration_ns: 5_000_000,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();
        wl.generate(&mut rng, senders, dsts, true, &mut flows);
        for w in flows.windows(2) {
            prop_assert!(w[0].start_ns <= w[1].start_ns);
        }
        for f in &flows {
            prop_assert!(f.start_ns < wl.duration_ns);
            prop_assert!(f.src_idx < senders);
            prop_assert!(f.dst_idx < dsts);
            prop_assert!(f.dst_idx != f.src_idx % dsts);
            prop_assert!(f.size >= 75);
        }
        // λ scales with load.
        let wl2 = PoissonWorkload { load: load * 2.0, ..wl.clone() };
        prop_assert!((wl2.lambda() / wl.lambda() - 2.0).abs() < 1e-9);
    }
}
