//! Open-loop Poisson flow arrivals at a target average link load.
//!
//! For each sender, flows arrive as a Poisson process with rate
//! `λ = load · C / (8 · mean_flow_size)` so the offered load averages the
//! requested fraction of the access link. Destinations are drawn uniformly
//! from the sender's destination set — the paper's fat-tree scenario sends
//! from every host behind the first two edge switches to every host behind
//! the third.

use crate::dist::FlowSizeDist;
use rand::Rng;

/// One generated flow (simulator-agnostic: indices, bytes, nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratedFlow {
    /// Index into the caller's sender list.
    pub src_idx: usize,
    /// Index into the caller's destination list.
    pub dst_idx: usize,
    /// Flow size in bytes.
    pub size: u64,
    /// Arrival time in nanoseconds.
    pub start_ns: u64,
}

/// Workload generator configuration.
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    /// Flow-size distribution.
    pub dist: FlowSizeDist,
    /// Target average load as a fraction of the sender access-link rate.
    pub load: f64,
    /// Sender access-link rate in bits/s.
    pub link_bps: u64,
    /// Workload horizon in nanoseconds (arrivals beyond it are dropped).
    pub duration_ns: u64,
}

impl PoissonWorkload {
    /// Per-sender flow arrival rate λ in flows/second.
    pub fn lambda(&self) -> f64 {
        assert!(self.load > 0.0 && self.load < 1.5, "unreasonable load");
        self.load * self.link_bps as f64 / (8.0 * self.dist.mean())
    }

    /// Generate arrivals for `n_senders` senders and `n_dsts` destinations.
    /// A sender never targets `exclude_same_index` (set true when sender i
    /// and destination i are the same physical host).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_senders: usize,
        n_dsts: usize,
        exclude_same_index: bool,
        out: &mut Vec<GeneratedFlow>,
    ) {
        assert!(n_dsts > if exclude_same_index { 1 } else { 0 });
        let lambda = self.lambda();
        for s in 0..n_senders {
            let mut t = 0.0_f64;
            loop {
                // Exponential inter-arrival via inverse transform.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / lambda;
                let start_ns = (t * 1e9) as u64;
                if start_ns >= self.duration_ns {
                    break;
                }
                let mut d = rng.gen_range(0..n_dsts);
                if exclude_same_index && d == s % n_dsts {
                    d = (d + 1) % n_dsts;
                }
                out.push(GeneratedFlow {
                    src_idx: s,
                    dst_idx: d,
                    size: self.dist.sample(rng),
                    start_ns,
                });
            }
        }
        // Deterministic global ordering by time (ties by src).
        out.sort_by_key(|f| (f.start_ns, f.src_idx, f.dst_idx, f.size));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wl(load: f64) -> PoissonWorkload {
        PoissonWorkload {
            dist: FlowSizeDist::fb_hadoop(),
            load,
            link_bps: 40_000_000_000,
            duration_ns: 50_000_000, // 50 ms
        }
    }

    #[test]
    fn lambda_formula() {
        let w = wl(0.7);
        let expect = 0.7 * 40e9 / (8.0 * w.dist.mean());
        assert!((w.lambda() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn offered_load_close_to_target() {
        let w = wl(0.7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut flows = Vec::new();
        w.generate(&mut rng, 8, 8, true, &mut flows);
        let total_bytes: u64 = flows.iter().map(|f| f.size).sum();
        let offered = total_bytes as f64 * 8.0 / (8.0 * 0.05) / 40e9; // per sender
        assert!(
            (offered - 0.7).abs() < 0.1,
            "offered load {offered:.3} vs target 0.7"
        );
    }

    #[test]
    fn arrivals_sorted_and_bounded() {
        let w = wl(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut flows = Vec::new();
        w.generate(&mut rng, 4, 4, true, &mut flows);
        assert!(!flows.is_empty());
        for pair in flows.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns);
        }
        assert!(flows.iter().all(|f| f.start_ns < w.duration_ns));
    }

    #[test]
    fn self_targeting_excluded() {
        let w = wl(0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut flows = Vec::new();
        w.generate(&mut rng, 4, 4, true, &mut flows);
        assert!(flows.iter().all(|f| f.dst_idx != f.src_idx % 4));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let w = wl(0.6);
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut flows = Vec::new();
            w.generate(&mut rng, 3, 5, false, &mut flows);
            flows
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn higher_load_means_more_flows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = Vec::new();
        wl(0.3).generate(&mut rng, 4, 4, true, &mut lo);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hi = Vec::new();
        wl(0.9).generate(&mut rng, 4, 4, true, &mut hi);
        assert!(hi.len() > lo.len());
    }
}
