//! Engine performance benchmark: events/sec on a chaos-grade incast and
//! end-to-end wall-clock on the multi-seed incast sweep (serial and
//! parallel), emitted as `BENCH_sim.json` so CI can track the perf
//! trajectory and fail on regressions.
//!
//! Usage:
//!   perf bench <out_dir>      — run benchmarks, write <out_dir>/BENCH_sim.json
//!   perf check <fresh> <base> — exit nonzero if <fresh> regressed >20%
//!                               in events/sec against committed <base>

use rocc_experiments::micro::sim_with;
use rocc_experiments::parallel::{map_cells, ExecMode};
use rocc_experiments::schemes::Scheme;
use rocc_sim::prelude::*;

/// Pre-refactor single-thread throughput (events/sec) of the seed
/// engine on this benchmark, measured before the slab/FxHashMap rework.
/// Kept in the JSON so the speedup trajectory stays visible even after
/// the baseline file is regenerated on faster hardware.
const PRE_REFACTOR_EVENTS_PER_SEC: f64 = 1_937_557.0;
/// Pre-refactor serial sweep wall-clock (seconds) on the same host.
const PRE_REFACTOR_SWEEP_SECONDS: f64 = 0.340;

/// Dumbbell: `n` senders incast one receiver through a single switch.
fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// One incast cell: `senders` flows of `size` bytes under `scheme`.
fn incast_cell(scheme: Scheme, senders: usize, size: u64, seed: u64) -> (u64, f64) {
    let (topo, srcs, dst) = dumbbell(senders, 40);
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut sim = sim_with(topo, scheme, 4, cfg);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(400)).assert_complete();
    let p = sim.profile();
    (p.events_processed, p.wall_seconds)
}

/// Single-thread engine throughput: one large RoCC incast, best of 3.
fn bench_engine() -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for rep in 0..3 {
        let (events, wall) = incast_cell(Scheme::Rocc, 12, 4_000_000, 100 + rep);
        if best.is_none_or(|(_, bw)| wall < bw) {
            best = Some((events, wall));
        }
    }
    best.unwrap()
}

/// The multi-seed incast sweep grid: 3 schemes × 5 seeds.
fn sweep_cells() -> Vec<(Scheme, u64)> {
    let mut cells = Vec::new();
    for scheme in Scheme::large_scale_set() {
        for seed in 0..5u64 {
            cells.push((scheme, 1000 + seed));
        }
    }
    cells
}

/// Run the sweep in the given mode, returning (wall seconds, total
/// events processed across cells — identical in both modes by
/// construction, asserted by the caller).
fn run_sweep(mode: ExecMode) -> (f64, u64) {
    let t0 = std::time::Instant::now();
    let events = map_cells(mode, sweep_cells(), |(scheme, seed)| {
        incast_cell(scheme, 6, 1_000_000, seed).0
    });
    (t0.elapsed().as_secs_f64(), events.iter().sum())
}

/// Extract `"key":<number>` from a flat-enough JSON document. Fails the
/// process on a missing key: a baseline that lost its fields should
/// fail the check loudly, not silently pass.
fn json_number(doc: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("key {key:?} missing from JSON"));
    let rest = &doc[at + needle.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("key {key:?} is not a number: {e}"))
}

fn cmd_bench(out_dir: &str) {
    let (events, wall) = bench_engine();
    let eps = events as f64 / wall;
    let (sweep_serial, ev_serial) = run_sweep(ExecMode::Serial);
    let (sweep_parallel, ev_parallel) = run_sweep(ExecMode::Parallel);
    assert_eq!(
        ev_serial, ev_parallel,
        "parallel sweep processed a different event count — determinism broken"
    );
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let engine_speedup = eps / PRE_REFACTOR_EVENTS_PER_SEC;
    let sweep_speedup = PRE_REFACTOR_SWEEP_SECONDS / sweep_serial.min(sweep_parallel);
    println!("engine: {events} events in {wall:.3}s = {eps:.0} events/sec ({engine_speedup:.2}x vs pre-refactor)");
    println!("sweep (serial):   {sweep_serial:.3}s over {ev_serial} events");
    println!("sweep (parallel): {sweep_parallel:.3}s on {threads} thread(s)");
    println!("sweep speedup vs pre-refactor: {sweep_speedup:.2}x");
    let json = format!(
        "{{\"engine\":{{\"events_processed\":{events},\"wall_seconds\":{wall},\"events_per_sec\":{eps},\
         \"pre_refactor_events_per_sec\":{PRE_REFACTOR_EVENTS_PER_SEC},\"speedup_vs_pre_refactor\":{engine_speedup}}},\
         \"sweep\":{{\"serial_wall_seconds\":{sweep_serial},\"parallel_wall_seconds\":{sweep_parallel},\
         \"threads\":{threads},\"events_total\":{ev_serial},\
         \"pre_refactor_serial_wall_seconds\":{PRE_REFACTOR_SWEEP_SECONDS},\"speedup_vs_pre_refactor\":{sweep_speedup}}}}}"
    );
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let path = format!("{out_dir}/BENCH_sim.json");
    std::fs::write(&path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}

fn cmd_check(fresh_path: &str, base_path: &str) {
    let fresh = std::fs::read_to_string(fresh_path).expect("read fresh BENCH_sim.json");
    let base = std::fs::read_to_string(base_path).expect("read base BENCH_sim.json");
    let fresh_eps = json_number(&fresh, "events_per_sec");
    let base_eps = json_number(&base, "events_per_sec");
    let floor = 0.8 * base_eps;
    println!("fresh: {fresh_eps:.0} events/sec, committed baseline: {base_eps:.0} (floor {floor:.0})");
    if fresh_eps < floor {
        eprintln!(
            "PERF REGRESSION: events/sec dropped {:.1}% (allowed: 20%)",
            100.0 * (1.0 - fresh_eps / base_eps)
        );
        std::process::exit(1);
    }
    println!("perf check passed");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(|s| s.as_str()) {
        Some("bench") => {
            let out_dir = args.get(2).map(|s| s.as_str()).unwrap_or("bench_out");
            cmd_bench(out_dir);
        }
        Some("check") => {
            let (Some(fresh), Some(base)) = (args.get(2), args.get(3)) else {
                eprintln!("usage: perf check <fresh> <base>");
                std::process::exit(2);
            };
            cmd_check(fresh, base);
        }
        _ => {
            eprintln!("usage: perf bench <out_dir> | perf check <fresh> <base>");
            std::process::exit(2);
        }
    }
}
