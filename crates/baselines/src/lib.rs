//! # rocc-baselines — comparison congestion-control schemes
//!
//! From-scratch implementations of every scheme the RoCC paper compares
//! against, on the same `rocc-sim` traits RoCC itself uses:
//!
//! | Scheme | Switch action | Source action | Module |
//! |---|---|---|---|
//! | DCQCN | RED/ECN marking | α-based MD + staged recovery | [`dcqcn`] |
//! | DCQCN+PI | PI-driven ECN marking | DCQCN RP | [`dcqcn_pi`] |
//! | QCN | sampled multi-bit Fb | Fb-proportional MD + staged recovery | [`qcn`] |
//! | TIMELY | none | RTT-gradient rate control | [`timely`] |
//! | HPCC | INT stamping | per-hop-utilization window control | [`hpcc`] |
//!
//! The paper verifies its DCQCN and HPCC re-implementations by reproducing
//! their published convergence behaviour (App. A.1); this crate's versions
//! are verified the same way by `rocc-experiments::fig19`.

#![warn(missing_docs)]

pub mod dcqcn;
pub mod dcqcn_pi;
pub mod hpcc;
pub mod qcn;
pub mod timely;

pub use dcqcn::{DcqcnHostCcFactory, DcqcnParams, DcqcnSwitchCcFactory, RedParams};
pub use dcqcn_pi::{PiMarkingParams, PiMarkingSwitchCcFactory};
pub use hpcc::{HpccHostCcFactory, HpccParams, HpccSwitchCcFactory};
pub use qcn::{QcnCpParams, QcnHostCcFactory, QcnRpParams, QcnSwitchCcFactory};
pub use timely::{TimelyHostCcFactory, TimelyParams};
