//! # rocc-stats — statistics for network experiments
//!
//! Percentiles, means with confidence intervals over repeated runs,
//! flow-size binning (the paper reports FCT per flow-size bin with 95% CIs
//! over 5 repetitions), and Jain's fairness index.

#![warn(missing_docs)]

/// Summary statistics of one sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample set. Returns `None` for empty input.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    Some(Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample (type-7, the common default). Returns `None` for empty input.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(v[lo]);
    }
    let f = pos - lo as f64;
    Some(v[lo] * (1.0 - f) + v[hi] * f)
}

/// Two-sided Student-t critical values at 95% for small n (the paper runs
/// 5 repetitions → 4 degrees of freedom → t = 2.776).
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// A mean with a 95% confidence half-width over independent repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Mean over repetitions.
    pub mean: f64,
    /// 95% confidence half-width (± this).
    pub ci95: f64,
    /// Number of repetitions.
    pub n: usize,
}

/// Mean ± 95% CI across per-repetition values (Student t, as appropriate
/// for the paper's 5 repetitions).
pub fn mean_ci95(reps: &[f64]) -> Option<MeanCi> {
    if reps.is_empty() {
        return None;
    }
    let n = reps.len();
    let mean = reps.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(MeanCi {
            mean,
            ci95: 0.0,
            n,
        });
    }
    let var = reps.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    Some(MeanCi {
        mean,
        ci95: t_critical_95(n - 1) * se,
        n,
    })
}

/// Assign `size` to the paper-style bin: the first edge ≥ size (values
/// beyond the last edge land in the last bin).
pub fn bin_index(edges: &[u64], size: u64) -> usize {
    for (i, &e) in edges.iter().enumerate() {
        if size <= e {
            return i;
        }
    }
    edges.len() - 1
}

/// Group values by flow-size bin: `(size, value)` pairs → per-bin vectors.
pub fn bin_values(edges: &[u64], items: impl IntoIterator<Item = (u64, f64)>) -> Vec<Vec<f64>> {
    let mut out = vec![Vec::new(); edges.len()];
    for (size, v) in items {
        out[bin_index(edges, size)].push(v);
    }
    out
}

/// Jain's fairness index: (Σx)² / (n·Σx²); 1.0 = perfectly fair.
pub fn jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 == 0.0 {
        return Some(1.0);
    }
    Some(s * s / (xs.len() as f64 * s2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.118).abs() < 1e-3);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn p99_on_large_sample() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let p99 = percentile(&xs, 0.99).unwrap();
        assert!((p99 - 990.01).abs() < 0.02);
    }

    #[test]
    fn ci_for_five_reps_uses_t4() {
        // Paper setup: 5 repetitions, 95% CI → t = 2.776.
        let r = mean_ci95(&[10.0, 11.0, 9.0, 10.5, 9.5]).unwrap();
        assert_eq!(r.n, 5);
        assert!((r.mean - 10.0).abs() < 1e-12);
        let sd: f64 = 0.625f64.sqrt(); // sample variance 0.625
        let expect = 2.776 * sd / 5f64.sqrt();
        assert!((r.ci95 - expect).abs() < 1e-9);
    }

    #[test]
    fn ci_single_rep_is_zero() {
        let r = mean_ci95(&[3.0]).unwrap();
        assert_eq!(r.ci95, 0.0);
    }

    #[test]
    fn binning_matches_paper_convention() {
        let edges = [10_000u64, 20_000, 30_000];
        assert_eq!(bin_index(&edges, 500), 0);
        assert_eq!(bin_index(&edges, 10_000), 0);
        assert_eq!(bin_index(&edges, 10_001), 1);
        assert_eq!(bin_index(&edges, 25_000), 2);
        assert_eq!(bin_index(&edges, 99_000_000), 2);
    }

    #[test]
    fn bin_values_groups() {
        let edges = [10u64, 20];
        let bins = bin_values(&edges, vec![(5, 1.0), (15, 2.0), (25, 3.0), (8, 4.0)]);
        assert_eq!(bins[0], vec![1.0, 4.0]);
        assert_eq!(bins[1], vec![2.0, 3.0]);
    }

    #[test]
    fn jain_index() {
        assert_eq!(jain_fairness(&[1.0, 1.0, 1.0]), Some(1.0));
        let unfair = jain_fairness(&[1.0, 0.0, 0.0]).unwrap();
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_fairness(&[]).is_none());
    }
}
