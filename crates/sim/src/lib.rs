//! # rocc-sim — a deterministic packet-level datacenter network simulator
//!
//! This crate is the simulation substrate for the RoCC reproduction
//! (CoNEXT '20): a single-threaded, event-driven, packet-level model of an
//! RDMA datacenter fabric, standing in for the paper's OMNeT++/INET setup.
//!
//! It models:
//!
//! * full-duplex links with line-rate serialization and propagation delay,
//! * store-and-forward switches with per-egress FIFO data queues, a
//!   strict-priority control queue (prioritized CNPs, paper §3.3), ECMP
//!   routing, and per-ingress PFC (802.1Qbb) pause/resume with the paper's
//!   500 KB / 800 KB thresholds,
//! * hosts with per-flow rate limiters, optional windows, a go-back-N
//!   reliable transport, and the 15 µs RP feedback reaction delay,
//! * three buffering regimes: lossless PFC, unlimited buffers (Fig. 18),
//!   and tail-drop with go-back-N recovery (Fig. 20).
//!
//! Congestion control is pluggable via the [`cc::SwitchCc`] (congestion
//! point) and [`cc::HostCc`] (reaction point) traits; `rocc-core` implements
//! RoCC itself, `rocc-baselines` the comparison schemes.
//!
//! ## Example
//!
//! ```
//! use rocc_sim::prelude::*;
//!
//! // Two senders incast one receiver through a switch.
//! let mut b = TopologyBuilder::new();
//! let sw = b.add_switch("sw", NodeRole::Switch);
//! let dst = b.add_host("dst");
//! b.connect(dst, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
//! let mut srcs = vec![];
//! for i in 0..2 {
//!     let h = b.add_host(format!("src{i}"));
//!     b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
//!     srcs.push(h);
//! }
//! let mut sim = Sim::new(
//!     b.build(),
//!     SimConfig::default(),
//!     Box::new(NullHostCcFactory),
//!     Box::new(NullSwitchCcFactory),
//! );
//! for (i, &s) in srcs.iter().enumerate() {
//!     sim.add_flow(FlowSpec {
//!         id: FlowId(i as u64),
//!         src: s,
//!         dst,
//!         size: 1_000_000,
//!         start: SimTime::ZERO,
//!         offered: None,
//!     });
//! }
//! sim.run_until_flows_done(SimTime::from_millis(50)).assert_complete();
//! assert_eq!(sim.trace.fcts.len(), 2);
//! ```
//!
//! Determinism: for a fixed [`config::SimConfig::seed`] and identical
//! inputs, every run produces identical results — events at equal
//! timestamps are ordered by insertion sequence.

#![warn(missing_docs)]

pub mod artifacts;
pub mod cc;
pub mod config;
pub mod digest;
pub mod engine;
pub mod fastmap;
pub mod fault;
pub mod host;
pub mod metrics;
pub mod packet;
pub mod perfetto;
pub mod profiler;
pub mod sanitizer;
pub mod sched;
pub mod slab;
pub mod snapshot;
pub mod switch;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::artifacts::{ensure_dir, write_artifact, ArtifactError};
    pub use crate::cc::{
        AckEvent, CtrlEmit, FeedbackEvent, FixedRateFactory, HostCc, HostCcCtx, HostCcFactory,
        NullHostCcFactory, NullSwitchCcFactory, PacketMeta, RateDecision, SwitchCc, SwitchCcCtx,
        SwitchCcFactory,
    };
    pub use crate::config::{
        BufferMode, ConfigError, PfcConfig, RunBudget, SimConfig, DEFAULT_STALL_EVENTS,
    };
    pub use crate::digest::{
        bisect_divergence, first_ledger_divergence, parse_ledger_jsonl, BisectOptions,
        BisectOutcome, ComponentDigests, ComponentState, DigestLedger, DigestLedgerEntry,
        DivergenceReport, LedgerDivergence, ParsedLedger, WordDiff, DIGEST_LEDGER_SCHEMA,
        DIVERGENCE_REPORT_SCHEMA,
    };
    pub use crate::engine::{CheckpointSink, Event, FlowMeta, FlowSpec, Kernel, Sim};
    pub use crate::fastmap::{FxHashMap, FxHashSet, FxHasher};
    pub use crate::fault::{
        FaultDecision, FaultEvent, FaultPlan, FaultState, FaultTarget, HostFault, HostFaultKind,
        LinkFault, LinkFlap,
    };
    pub use crate::metrics::{MetricRow, Observatory};
    pub use crate::packet::{CpId, FlowId, IntHop, IntStack, Packet, PacketKind};
    pub use crate::perfetto::export_chrome_trace;
    pub use crate::profiler::{DepthSample, Phase, PhaseProfiler, ProfileContext};
    pub use crate::sanitizer::{
        PauseCycleNode, PauseReport, RunVerdict, Sanitizer, SanitizerReport, SimError,
    };
    pub use crate::sched::{
        Backend, HeapScheduler, SchedStats, Scheduled, Scheduler, SchedulerImpl, TimingWheel,
        WHEEL_LEVELS,
    };
    pub use crate::slab::{PacketRef, PacketSlab};
    pub use crate::snapshot::{
        config_digest, inspect, SnapshotError, SnapshotInfo, SNAPSHOT_MAGIC,
    };
    pub use crate::telemetry::{
        CcEvent, CounterLabels, CpDecisionKind, DropCause, EventMask, EventSubscriber, Histogram,
        RpTransitionKind, SimEvent, SimProfile, Telemetry, VerdictKind,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LinkId, NodeId, NodeRole, PortId, Topology, TopologyBuilder};
    pub use crate::trace::{FaultCounters, FctRecord, PfcEvent, Sample, Trace};
    pub use crate::units::{kb, mb, BitRate};
}
