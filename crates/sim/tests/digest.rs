//! Divergence-observatory integration suite (see DESIGN.md §3k).
//!
//! Pins the bisector's headline contract on the golden chaos scenario:
//! injecting a single RP rate-word bit flip after event `k` of a faulted
//! run must be traced back to exactly event `k` and attributed to a host
//! CC component — across the golden seeds 1/7/42. Also pins the
//! digest/words coupling (a component digest changes iff that
//! component's snapshot words change) and tolerant parsing of torn
//! digest-ledger tails as produced by a crashed run-loop writer.

use proptest::prelude::*;
use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// The golden chaos incast: 6-sender incast with data loss, CNP loss and
/// a mid-run link flap, RoCC end to end — the same scenario the
/// golden-engine and scheduler-differential suites pin.
fn build_chaos(seed: u64) -> Sim {
    let (topo, srcs, dst) = dumbbell(6, 40);
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.004)
            .with_loss(FaultTarget::Cnp, 0.01)
            .with_flap(
                LinkId(3),
                SimTime::from_micros(400),
                SimTime::from_micros(900),
            ),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 1_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim
}

/// The acceptance bar for the whole observatory: a single bit flipped in
/// one host's CC state after event `k` is localized to exactly event `k`
/// and charged to a `host/…` component, on every faulted golden seed.
#[test]
fn bisector_finds_the_exact_flip_event_on_faulted_seeds() {
    for seed in [1u64, 7, 42] {
        let flip_at = 10_000u64;
        let mut a = build_chaos(seed);
        let mut b = build_chaos(seed);
        let opts = BisectOptions {
            scan_stride: 2048,
            max_events: 30_000,
            perturb_b_at: Some(flip_at),
        };
        match bisect_divergence(&mut a, &mut b, &opts) {
            BisectOutcome::Diverged(rep) => {
                assert_eq!(
                    rep.first_divergent_event, flip_at,
                    "seed {seed}: bisected to the wrong event"
                );
                assert!(
                    rep.component.starts_with("host/"),
                    "seed {seed}: flip charged to {} — expected a host CC component",
                    rep.component
                );
                assert_ne!(rep.digest_a, rep.digest_b);
                // The perturbation is one bit of one rate word: the
                // word-level diff must be exactly one word, one bit.
                assert_eq!(
                    rep.word_diff.len(),
                    1,
                    "seed {seed}: expected one differing word, got {:?}",
                    rep.word_diff
                );
                let d = &rep.word_diff[0];
                assert_eq!(
                    (d.a ^ d.b).count_ones(),
                    1,
                    "seed {seed}: expected a single-bit flip, got {:016x} vs {:016x}",
                    d.a,
                    d.b
                );
                // At the flip event both runs still agree on what happens
                // next — only state diverged, not the schedule (yet).
                assert!(rep.event_a.is_some());
                assert_eq!(rep.event_a, rep.event_b, "seed {seed}");
            }
            BisectOutcome::Identical { events } => panic!(
                "seed {seed}: injected flip never diverged through {events} events"
            ),
        }
    }
}

/// Two identically built runs never diverge: the bisector scans to its
/// event cap and says so, on every golden seed.
#[test]
fn identical_runs_bisect_to_identical() {
    for seed in [1u64, 7, 42] {
        let mut a = build_chaos(seed);
        let mut b = build_chaos(seed);
        let opts = BisectOptions {
            scan_stride: 2048,
            max_events: 12_000,
            perturb_b_at: None,
        };
        match bisect_divergence(&mut a, &mut b, &opts) {
            BisectOutcome::Identical { events } => {
                assert_eq!(events, 12_000, "seed {seed}: scan stopped early")
            }
            BisectOutcome::Diverged(rep) => panic!(
                "seed {seed}: identical runs reported divergent: {}",
                rep.summary()
            ),
        }
    }
}

/// A ledger recorded by the real run loop, torn mid-line as a crashed
/// writer would leave it, still parses: every complete row survives, the
/// torn tail is flagged, and the truncated ledger agrees with the full
/// one on every comparable row.
#[test]
fn run_loop_ledger_tolerates_a_torn_tail() {
    let mut sim = build_chaos(7);
    sim.enable_digest_ledger(1024);
    sim.run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();
    let ledger = sim.take_digest_ledger().expect("ledger enabled above");
    assert!(
        ledger.entries().len() >= 8,
        "run too short to exercise the ledger: {} rows",
        ledger.entries().len()
    );
    let text = ledger.to_jsonl();

    // The intact file parses clean and round-trips every row.
    let full = parse_ledger_jsonl(&text);
    assert!(!full.torn_tail);
    assert_eq!(full.entries.len(), ledger.entries().len());
    assert_eq!(&full.entries, ledger.entries());

    // Tear the final line mid-digest, as a crash mid-write would.
    let last_line_start = text.trim_end().rfind('\n').expect("multi-row ledger") + 1;
    let torn_text = &text[..last_line_start + 40];
    let torn = parse_ledger_jsonl(torn_text);
    assert!(torn.torn_tail, "truncated tail not flagged");
    assert_eq!(torn.entries.len(), full.entries.len() - 1);
    assert_eq!(
        first_ledger_divergence(&torn.entries, &full.entries),
        None,
        "comparable rows must agree"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The digest/words contract, at an arbitrary cut point of a faulted
    /// run: perturbing one host's CC state changes that component's
    /// snapshot words and digest, and *only* that component's — every
    /// component whose words are untouched keeps its digest bit for bit.
    #[test]
    fn component_digest_changes_iff_its_words_change(
        seed_idx in 0usize..3,
        frac in 0.0f64..1.0,
    ) {
        let seed = [1u64, 7, 42][seed_idx];
        let k = (frac * 20_000.0) as u64;
        let mut sim = build_chaos(seed);
        while sim.events_processed() < k && sim.step() {}

        let before_states = sim.component_states();
        let before = sim.state_digest();
        prop_assert!(sim.inject_rp_perturbation(), "no host CC state to perturb");
        let after_states = sim.component_states();
        let after = sim.state_digest();

        // Same component set, same order, on both sides.
        prop_assert_eq!(before.len(), after.len());
        let mut changed = Vec::new();
        for (b, a) in before_states.iter().zip(after_states.iter()) {
            prop_assert_eq!(&b.name, &a.name);
            let words_differ = b.bytes != a.bytes;
            let digests_differ =
                before.get(&b.name).expect("named") != after.get(&a.name).expect("named");
            prop_assert_eq!(
                words_differ, digests_differ,
                "component {}: words_differ={} but digests_differ={}",
                b.name, words_differ, digests_differ
            );
            if words_differ {
                changed.push(b.name.clone());
            }
        }
        // The flip touches exactly one host component and nothing else.
        prop_assert_eq!(changed.len(), 1, "changed: {:?}", &changed);
        prop_assert!(changed[0].starts_with("host/"), "changed: {:?}", &changed);
    }
}

/// Stepping the sim changes the kernel digest (time and the event cursor
/// advance), so two different cut points of the same run never share a
/// combined digest — the ledger can't silently alias distinct states.
#[test]
fn distinct_cut_points_have_distinct_digests() {
    let mut sim = build_chaos(7);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..64 {
        let d = rocc_sim::digest::combined_digest(&sim.state_digest());
        assert!(seen.insert(d), "combined digest repeated mid-run");
        assert!(sim.step(), "run drained before 64 events");
    }
}
