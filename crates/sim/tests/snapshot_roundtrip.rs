//! Snapshot/restore round-trip fidelity on the chaos scenario.
//!
//! The property behind sub-cell crash recovery: for ANY event index `k`
//! of a faulted run, `restore(snapshot(sim at k))` into an identically
//! rebuilt sim, run to completion, must reproduce the uninterrupted
//! run's fingerprint bit for bit — event counts, FCT nanoseconds,
//! drop/retransmit/control counters, fault-injection counters — and the
//! same clean sanitizer verdict. The scenario is the same 6-sender
//! incast with data loss, CNP loss and a link flap that pins the golden
//! engine fingerprints, across the golden seeds 1/7/42.

use proptest::prelude::*;
use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;
use rocc_sim::snapshot;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// The golden chaos incast, built but not run. The restore protocol
/// requires the caller to rebuild the sim identically before restoring,
/// so both the snapshot side and the restore side call this.
fn build_chaos(seed: u64) -> Sim {
    let (topo, srcs, dst) = dumbbell(6, 40);
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.004)
            .with_loss(FaultTarget::Cnp, 0.01)
            .with_flap(
                LinkId(3),
                SimTime::from_micros(400),
                SimTime::from_micros(900),
            ),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 1_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim
}

/// Everything simulation-visible a finished run produced.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    fcts: Vec<(u64, u64)>,
    drops: u64,
    retx: u64,
    ctrl_emitted: u64,
    injected_drops: u64,
}

fn fingerprint(sim: &Sim) -> Fingerprint {
    Fingerprint {
        events: sim.events_processed(),
        fcts: sim
            .trace
            .fcts
            .iter()
            .map(|r| (r.flow.0, r.end.as_nanos()))
            .collect(),
        drops: sim.trace.drops,
        retx: sim.trace.retx_bytes,
        ctrl_emitted: sim.trace.ctrl_emitted,
        injected_drops: sim.trace.faults.data_lost + sim.trace.faults.ctrl_lost,
    }
}

const HORIZON: SimTime = SimTime::from_millis(100);

/// Uninterrupted reference run: fingerprint plus total event count (the
/// proptest draws its cut points from the latter).
fn reference(seed: u64) -> (Fingerprint, u64) {
    let mut sim = build_chaos(seed);
    let verdict = sim.run_until_flows_done(HORIZON);
    assert!(verdict.is_complete(), "reference must finish: {verdict:?}");
    let f = fingerprint(&sim);
    let events = f.events;
    (f, events)
}

/// Step to event `k`, snapshot, restore into a fresh identically built
/// sim, run to completion; return its fingerprint and the snapshot.
fn roundtrip(seed: u64, k: u64) -> (Fingerprint, Vec<u8>) {
    let mut donor = build_chaos(seed);
    while donor.events_processed() < k && donor.step() {}
    let bytes = donor.snapshot();

    let mut resumed = build_chaos(seed);
    resumed
        .restore(&bytes)
        .expect("snapshot of an identically built sim must restore");
    assert_eq!(resumed.events_processed(), donor.events_processed());
    let verdict = resumed.run_until_flows_done(HORIZON);
    assert!(verdict.is_complete(), "resumed run must finish: {verdict:?}");
    (fingerprint(&resumed), bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identical resume from an arbitrary cut point of any golden
    /// seed's faulted run.
    #[test]
    fn restore_at_any_event_index_is_bit_identical(
        seed_idx in 0usize..3,
        frac in 0.0f64..1.0,
    ) {
        let seed = [1u64, 7, 42][seed_idx];
        let (want, total) = reference(seed);
        let k = (frac * total as f64) as u64;
        let (got, bytes) = roundtrip(seed, k);
        prop_assert_eq!(got, want, "resume from event {} of seed {}", k, seed);

        // The container header tells the truth about the cut point.
        let info = snapshot::inspect(&bytes).expect("snapshot inspects clean");
        prop_assert_eq!(info.seed, seed);
        prop_assert_eq!(info.events_processed, k.min(total));
    }
}

/// The degenerate cut points: before the first event and after the last.
#[test]
fn restore_at_boundaries_is_bit_identical() {
    for seed in [1u64, 7, 42] {
        let (want, total) = reference(seed);
        let (at_start, _) = roundtrip(seed, 0);
        assert_eq!(at_start, want, "resume from event 0 of seed {seed}");
        let (at_end, _) = roundtrip(seed, total);
        assert_eq!(at_end, want, "resume from final event of seed {seed}");
    }
}

/// A snapshot taken under one config must refuse to restore into a sim
/// built with another (different seed ⇒ different config digest input),
/// and the error must identify the mismatch.
#[test]
fn restore_rejects_mismatched_seed() {
    let mut donor = build_chaos(7);
    while donor.events_processed() < 1000 && donor.step() {}
    let bytes = donor.snapshot();
    let mut other = build_chaos(42);
    match other.restore(&bytes) {
        Err(snapshot::SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

/// Prints the checkpoint cost table for EXPERIMENTS.md: snapshot size,
/// save/restore latency at mid-run, and whole-run wall time at several
/// auto-checkpoint strides (vs disabled). Run with:
///
/// ```text
/// cargo test --release -p rocc-sim --test snapshot_roundtrip -- --ignored --nocapture
/// ```
#[test]
#[ignore]
fn measure_checkpoint_costs() {
    let (_, total) = reference(7);
    // One-shot save/restore latency and size at the run's midpoint.
    let mut donor = build_chaos(7);
    while donor.events_processed() < total / 2 && donor.step() {}
    let t0 = std::time::Instant::now();
    let bytes = donor.snapshot();
    let save_us = t0.elapsed().as_micros();
    let mut target = build_chaos(7);
    let t1 = std::time::Instant::now();
    target.restore(&bytes).unwrap();
    let restore_us = t1.elapsed().as_micros();
    println!(
        "mid-run snapshot ({} events): {} bytes, save {save_us} us, restore {restore_us} us",
        total / 2,
        bytes.len()
    );

    // Whole-run wall time vs stride (0 = checkpointing disabled). The
    // sink only counts — the journaling I/O cost is the store's, not
    // the engine's.
    for stride in [0u64, 50_000, 20_000, 5_000, 1_000] {
        let mut best = f64::MAX;
        let saves = std::rc::Rc::new(std::cell::Cell::new(0u64));
        for _ in 0..5 {
            let mut sim = build_chaos(7);
            if stride > 0 {
                saves.set(0);
                let counter = saves.clone();
                sim.enable_auto_checkpoint(
                    stride,
                    Box::new(move |_ev, b| {
                        assert!(!b.is_empty());
                        counter.set(counter.get() + 1);
                    }),
                );
            }
            let t = std::time::Instant::now();
            sim.run_until_flows_done(HORIZON).assert_complete();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        println!(
            "stride {stride:>6}: {} checkpoints, best wall {best:.2} ms",
            saves.get()
        );
    }
}

/// Flipping any single byte of the container must be caught by the
/// digest (or structural) checks — never silently restored.
#[test]
fn restore_rejects_corrupt_container() {
    let mut donor = build_chaos(7);
    while donor.events_processed() < 1000 && donor.step() {}
    let bytes = donor.snapshot();
    let mut rng_state = 0x9e37_79b9u64;
    for _ in 0..32 {
        // Cheap LCG over byte positions; determinism keeps the test stable.
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pos = (rng_state >> 33) as usize % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        let mut sim = build_chaos(7);
        assert!(
            sim.restore(&corrupt).is_err(),
            "byte flip at {pos} restored silently"
        );
    }
}
