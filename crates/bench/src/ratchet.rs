//! Multi-metric performance ratchet over `BENCH_sim.json` (schema v2).
//!
//! A ratchet is a committed baseline that only moves in the *good*
//! direction: [`check`] fails when a fresh benchmark regresses past a
//! metric's tolerance against the baseline, and [`advance`] folds a fresh
//! run into the baseline by keeping, per metric, the better of the two
//! values — so improvements tighten the gate automatically while noise
//! within tolerance never loosens it.
//!
//! The JSON is hand-rolled on the write side and flat-parsed here, which
//! works because every metric key in the v2 schema is globally unique in
//! the document (`engine_wall_seconds` vs `serial_wall_seconds`, etc.).

/// Which way is better for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput).
    Higher,
    /// Smaller is better (wall-clock, overhead).
    Lower,
}

/// How much a fresh value may regress before [`check`] fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Fractional slack against the baseline: `Relative(0.2)` on a
    /// [`Direction::Higher`] metric fails below 80% of the baseline, on a
    /// [`Direction::Lower`] metric above 120%.
    Relative(f64),
    /// A fixed ceiling, independent of any baseline (the fresh value
    /// itself must not exceed it). The metric is not ratcheted.
    AbsoluteMax(f64),
}

/// One gated metric of the v2 benchmark document.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// The (globally unique) JSON key.
    pub key: &'static str,
    /// Which way improvement points.
    pub direction: Direction,
    /// Allowed regression before the gate trips.
    pub tolerance: Tolerance,
}

/// The ratcheted metric set for `BENCH_sim.json` v2.
///
/// Throughput gets the historical 20% slack (single-run noise on shared
/// CI hosts), wall-clock sweeps 25% (shorter, noisier), and profiler
/// overhead is an absolute gate on the *percentage* cost of the phase
/// profiler against the gated-off engine. The ceiling was 3% when the
/// engine ran at 4.5M events/sec; the timing-wheel engine is ~2x faster,
/// so the same absolute per-event profiler cost (a few ns of counter
/// bumps and sampled clock reads) is ~2x the percentage — the ceiling is
/// recalibrated to 5% to keep gating the same absolute budget.
pub const METRICS: &[Metric] = &[
    Metric {
        key: "events_per_sec",
        direction: Direction::Higher,
        tolerance: Tolerance::Relative(0.20),
    },
    Metric {
        key: "serial_wall_seconds",
        direction: Direction::Lower,
        tolerance: Tolerance::Relative(0.25),
    },
    Metric {
        key: "parallel_wall_seconds",
        direction: Direction::Lower,
        tolerance: Tolerance::Relative(0.25),
    },
    Metric {
        key: "profiler_overhead_pct",
        direction: Direction::Lower,
        tolerance: Tolerance::AbsoluteMax(5.0),
    },
];

/// Improvement ratio of a fresh benchmark value over the recorded
/// previous ratchet entry: pass `(fresh, base)` for higher-is-better
/// metrics (throughput) and `(base, fresh)` for lower-is-better ones
/// (wall-clock), so the result reads "Nx better" either way. Degenerate
/// inputs (absent baseline, zero denominators) report 1.0 — "no measured
/// change" — rather than poisoning the document with inf/NaN.
pub fn speedup(numer: Option<f64>, denom: Option<f64>) -> f64 {
    match (numer, denom) {
        (Some(n), Some(d)) if n > 0.0 && d > 0.0 => n / d,
        _ => 1.0,
    }
}

/// Extract `"key":<number>` from a flat-enough JSON document, or `None`
/// if the key is absent. (Keys in the v2 schema are globally unique; the
/// leading quote in the needle keeps `events_per_sec` from matching
/// inside `profiled_events_per_sec`.)
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)?;
    let rest = &doc[at + needle.len()..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Replace the number following `"key":` with `value`, returning the new
/// document. Panics if the key is absent — [`advance`] only rewrites keys
/// it just read.
fn replace_number(doc: &str, key: &str, value: f64) -> String {
    let needle = format!("\"{key}\":");
    let at = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("key {key:?} missing from JSON"));
    let start = at + needle.len();
    let rest = &doc[start..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    format!("{}{}{}", &doc[..start], value, &doc[start + end..])
}

/// One metric's verdict from [`check`].
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (the human-readable line says by how much).
    Pass(String),
    /// Regressed past tolerance.
    Fail(String),
    /// Metric absent from the baseline (fresh schema is newer): passes,
    /// flagged so the log shows the gate was vacuous.
    NoBaseline(String),
}

impl Verdict {
    /// Whether this verdict trips the gate.
    pub fn failed(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }

    /// The human-readable line.
    pub fn line(&self) -> &str {
        match self {
            Verdict::Pass(s) | Verdict::Fail(s) | Verdict::NoBaseline(s) => s,
        }
    }
}

/// Gate a fresh benchmark document against the committed ratchet: one
/// verdict per metric in [`METRICS`]. A metric missing from the *fresh*
/// document is a hard failure (the benchmark should always emit the full
/// schema); missing from the *baseline* it passes as [`Verdict::NoBaseline`]
/// so a schema upgrade can land before its first ratchet advance.
pub fn check(fresh: &str, base: &str) -> Vec<Verdict> {
    METRICS
        .iter()
        .map(|m| {
            let Some(f) = json_number(fresh, m.key) else {
                return Verdict::Fail(format!("{}: missing from fresh benchmark", m.key));
            };
            match m.tolerance {
                Tolerance::AbsoluteMax(max) => {
                    if f > max {
                        Verdict::Fail(format!("{}: {f:.3} exceeds absolute ceiling {max}", m.key))
                    } else {
                        Verdict::Pass(format!("{}: {f:.3} <= ceiling {max}", m.key))
                    }
                }
                Tolerance::Relative(tol) => {
                    let Some(b) = json_number(base, m.key) else {
                        return Verdict::NoBaseline(format!(
                            "{}: no baseline yet (fresh {f:.3})",
                            m.key
                        ));
                    };
                    let (bad, bound) = match m.direction {
                        Direction::Higher => (f < (1.0 - tol) * b, (1.0 - tol) * b),
                        Direction::Lower => (f > (1.0 + tol) * b, (1.0 + tol) * b),
                    };
                    let line = format!(
                        "{}: fresh {f:.3} vs ratchet {b:.3} (bound {bound:.3})",
                        m.key
                    );
                    if bad {
                        Verdict::Fail(format!("REGRESSION {line}"))
                    } else {
                        Verdict::Pass(line)
                    }
                }
            }
        })
        .collect()
}

/// Fold a fresh run into the ratchet: start from the fresh document (so
/// context fields — event counts, speedups, phase breakdown — describe
/// the latest run) and, for each relatively-gated metric where the old
/// baseline is still better, keep the baseline's value. Returns the new
/// ratchet document and a log line per retained/advanced metric.
/// Absolute-ceiling metrics always carry the fresh value: their gate does
/// not move.
pub fn advance(fresh: &str, base: &str) -> (String, Vec<String>) {
    let mut doc = fresh.to_string();
    let mut log = Vec::new();
    for m in METRICS {
        let Tolerance::Relative(_) = m.tolerance else {
            continue;
        };
        let Some(f) = json_number(fresh, m.key) else {
            continue;
        };
        let Some(b) = json_number(base, m.key) else {
            log.push(format!("{}: seeded at {f:.3}", m.key));
            continue;
        };
        let base_better = match m.direction {
            Direction::Higher => b > f,
            Direction::Lower => b < f,
        };
        if base_better {
            doc = replace_number(&doc, m.key, b);
            log.push(format!("{}: kept ratchet {b:.3} (fresh {f:.3})", m.key));
        } else {
            log.push(format!("{}: advanced {b:.3} -> {f:.3}", m.key));
        }
    }
    (doc, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2_doc(eps: f64, serial: f64, parallel: f64, overhead: f64) -> String {
        format!(
            "{{\"schema\":\"rocc-bench/v2\",\"engine\":{{\"events_per_sec\":{eps}}},\
             \"profiler\":{{\"profiler_overhead_pct\":{overhead}}},\
             \"sweep\":{{\"serial_wall_seconds\":{serial},\"parallel_wall_seconds\":{parallel}}}}}"
        )
    }

    #[test]
    fn identical_rerun_passes_check() {
        let doc = v2_doc(5.0e6, 0.14, 0.10, 1.2);
        let verdicts = check(&doc, &doc);
        assert_eq!(verdicts.len(), METRICS.len());
        assert!(verdicts.iter().all(|v| !v.failed()), "{verdicts:?}");
    }

    #[test]
    fn degraded_run_fails_each_gated_metric() {
        let base = v2_doc(5.0e6, 0.14, 0.10, 1.2);
        // Throughput down 30% (> 20% slack).
        let slow = v2_doc(3.5e6, 0.14, 0.10, 1.2);
        assert!(check(&slow, &base).iter().any(|v| v.failed()));
        // Serial sweep up 50% (> 25% slack).
        let sweepy = v2_doc(5.0e6, 0.21, 0.10, 1.2);
        assert!(check(&sweepy, &base).iter().any(|v| v.failed()));
        // Profiler overhead above the absolute 5% ceiling — fails even
        // though the baseline's overhead was worse (no ratchet for it).
        let heavy = v2_doc(5.0e6, 0.14, 0.10, 5.4);
        let base_heavy = v2_doc(5.0e6, 0.14, 0.10, 7.0);
        assert!(check(&heavy, &base_heavy).iter().any(|v| v.failed()));
    }

    #[test]
    fn noise_within_tolerance_passes() {
        let base = v2_doc(5.0e6, 0.14, 0.10, 1.2);
        let noisy = v2_doc(4.2e6, 0.17, 0.12, 2.9);
        assert!(check(&noisy, &base).iter().all(|v| !v.failed()));
    }

    #[test]
    fn advance_keeps_the_better_value_per_metric() {
        let base = v2_doc(5.0e6, 0.14, 0.10, 1.2);
        // Faster engine, slower sweep: the ratchet should take fresh eps
        // and keep the baseline sweep numbers.
        let fresh = v2_doc(6.0e6, 0.16, 0.12, 2.0);
        let (next, log) = advance(&fresh, &base);
        assert_eq!(json_number(&next, "events_per_sec"), Some(6.0e6));
        assert_eq!(json_number(&next, "serial_wall_seconds"), Some(0.14));
        assert_eq!(json_number(&next, "parallel_wall_seconds"), Some(0.10));
        // Overhead is ceiling-gated, not ratcheted: fresh value carries.
        assert_eq!(json_number(&next, "profiler_overhead_pct"), Some(2.0));
        assert_eq!(log.len(), 3);
        // The advanced ratchet still passes a check against itself and
        // against the run that produced it.
        assert!(check(&next, &next).iter().all(|v| !v.failed()));
        assert!(check(&fresh, &next).iter().all(|v| !v.failed()));
    }

    #[test]
    fn advance_over_v1_baseline_seeds_missing_metrics() {
        // v1 had only events_per_sec (plus sweep seconds under the same
        // keys); a fresh v2 doc against a baseline missing the overhead
        // metric must not fail the check and must seed on advance.
        let v1 = "{\"engine\":{\"events_per_sec\":5000000}}";
        let fresh = v2_doc(4.9e6, 0.14, 0.10, 1.0);
        assert!(check(&fresh, v1).iter().all(|v| !v.failed()));
        let (next, _) = advance(&fresh, v1);
        assert_eq!(json_number(&next, "serial_wall_seconds"), Some(0.14));
        assert!(check(&fresh, &next).iter().all(|v| !v.failed()));
    }

    #[test]
    fn speedup_is_vs_the_previous_ratchet_entry_not_a_constant() {
        // Higher-is-better: fresh/base.
        assert_eq!(speedup(Some(9.0e6), Some(4.5e6)), 2.0);
        // Lower-is-better callers flip the operands: base/fresh.
        assert_eq!(speedup(Some(0.30), Some(0.15)), 2.0);
        // Degenerate inputs (no baseline yet, zeroed wall) read as 1.0.
        assert_eq!(speedup(None, Some(4.5e6)), 1.0);
        assert_eq!(speedup(Some(4.5e6), None), 1.0);
        assert_eq!(speedup(Some(0.0), Some(1.0)), 1.0);
        assert_eq!(speedup(Some(1.0), Some(0.0)), 1.0);
    }

    #[test]
    fn json_number_respects_key_boundaries() {
        let doc = "{\"profiled_events_per_sec\":1.0,\"events_per_sec\":2.0}";
        assert_eq!(json_number(doc, "events_per_sec"), Some(2.0));
        assert_eq!(json_number(doc, "profiled_events_per_sec"), Some(1.0));
        assert_eq!(json_number(doc, "absent"), None);
        assert_eq!(json_number("{\"x\":3.5e-2}", "x"), Some(0.035));
    }
}
