//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface the workspace's `harness = false` bench
//! targets use: [`Criterion`], [`Criterion::benchmark_group`],
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of statistical analysis it runs each
//! benchmark a small fixed number of iterations and prints the mean wall
//! time — enough to keep `cargo bench` compiling, running, and producing a
//! comparable number, without the plotting/analysis stack.

use std::time::{Duration, Instant};

/// Iterations per benchmark. Deliberately small: these benches wrap whole
/// simulations, and the stub exists for smoke coverage, not rigor.
const ITERS: u32 = 3;

/// Runs closures and records their timing.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `f`, running it a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iters).unwrap_or(Duration::ZERO);
    println!("bench {label:<50} {per_iter:>12.3?}/iter ({iters} iters)");
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, ITERS, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), ITERS, &mut f);
        self
    }

    /// End the group (upstream finalizes reports here; the stub is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring upstream's
/// simple `criterion_group!(name, target...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
