//! Benchmarks regenerating the §6.1/§6.2 micro-benchmarks: Fig. 8
//! (fairness/stability), Fig. 9 (convergence under load swings), and
//! Fig. 13 (testbed-vs-sim validation).

use criterion::{criterion_group, criterion_main, Criterion};
use rocc_experiments::ablation::run_variant;
use rocc_experiments::{micro, Scale};
use rocc_core::RoccSwitchCcFactory;
use rocc_sim::prelude::{SimConfig, SimTime};
use std::hint::black_box;

/// Fig. 8's core case (N = 10 on 40G), shortened to a 6 ms horizon so a
/// criterion iteration stays sub-second; the fairness/queue outcome is
/// printed once.
fn bench_fig8(c: &mut Criterion) {
    let r = run_variant(
        "fig8-n10",
        10,
        RoccSwitchCcFactory::new(),
        SimConfig::default(),
        SimTime::from_millis(6),
    );
    eprintln!(
        "[fig8] N=10: queue {:.0} B (Qref 150 KB), Jain fairness {:.4}",
        r.queue_mean, r.fairness
    );
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("dumbbell_n10_rocc_6ms", |b| {
        b.iter(|| {
            black_box(run_variant(
                "bench",
                10,
                RoccSwitchCcFactory::new(),
                SimConfig::default(),
                SimTime::from_millis(6),
            ))
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let r = micro::fig9(Scale::Quick);
    let last = r.rate.last().map(|s| s.v / 1e9).unwrap_or(0.0);
    eprintln!("[fig9] final fair rate back at {:.1} Gb/s (expect ~13.3)", last);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("load_swing_3_to_96_flows", |b| {
        b.iter(|| black_box(micro::fig9(Scale::Quick)))
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let runs = micro::fig13(Scale::Quick);
    for r in &runs {
        eprintln!(
            "[fig13] {}-{}: queue {:.0} B (expect ~75 KB)",
            r.profile, r.scenario, r.queue_mean
        );
    }
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("testbed_vs_sim_four_cells", |b| {
        b.iter(|| black_box(micro::fig13(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig8, bench_fig9, bench_fig13);
criterion_main!(benches);
