//! The reaction point: per-flow rate limiting at the source (paper Alg. 2).
//!
//! Two rules make multi-bottleneck fairness fall out for free:
//!
//! * **CNP arbitration** — a received rate is accepted iff it came from the
//!   same CP as the last accepted CNP, *or* it is ≤ the current rate. The
//!   rate limiter therefore always follows the most congested CP on the
//!   flow's path (fair, §3.5).
//! * **Fast recovery** — if no CNP is accepted for a timer period, the rate
//!   doubles; once it exceeds Rmax the limiter uninstalls and the flow
//!   transmits as if uncongested (eff).

use crate::params::RpParams;
use rocc_sim::cc::{FeedbackEvent, HostCc, HostCcCtx, RateDecision};
use rocc_sim::prelude::{BitRate, CpId};
use rocc_sim::telemetry::{CcEvent, EventMask, RpTransitionKind};

/// Timer token used for fast recovery.
pub const RECOVERY_TOKEN: u8 = 0;

/// RoCC's per-flow reaction point.
#[derive(Debug)]
pub struct RoccHostCc {
    p: RpParams,
    /// Maximum send rate (NIC line rate).
    r_max: BitRate,
    /// Current sending rate Rcur (meaningful while installed).
    r_cur: BitRate,
    /// CP that generated the last accepted CNP.
    cp_cur: Option<CpId>,
    /// True while the rate limiter is installed.
    installed: bool,
}

impl RoccHostCc {
    /// A fresh flow starts uninstalled (line rate).
    pub fn new(p: RpParams, r_max: BitRate) -> Self {
        RoccHostCc {
            p,
            r_max,
            r_cur: r_max,
            cp_cur: None,
            installed: false,
        }
    }

    /// True while the rate limiter is installed.
    pub fn is_installed(&self) -> bool {
        self.installed
    }

    /// Current CP being followed (diagnostics).
    pub fn current_cp(&self) -> Option<CpId> {
        self.cp_cur
    }

    /// Current raw Rcur (may exceed Rmax mid-recovery; diagnostics).
    pub fn r_cur(&self) -> BitRate {
        self.r_cur
    }
}

impl HostCc for RoccHostCc {
    fn decision(&self) -> RateDecision {
        if self.installed {
            RateDecision::line_rate(self.r_cur.min(self.r_max))
        } else {
            RateDecision::line_rate(self.r_max)
        }
    }

    fn on_feedback(&mut self, ctx: &mut HostCcCtx, fb: FeedbackEvent) {
        let FeedbackEvent::RoccCnp {
            fair_rate_units,
            cp,
        } = fb
        else {
            return; // not ours (mixed-scheme runs)
        };
        let r_rcvd = BitRate::from_bps(self.p.delta_f.as_bps() * fair_rate_units as u64);
        // Alg. 2 line 4: accept iff same CP, or the rate is not an increase.
        let accept = !self.installed
            || r_rcvd <= self.r_cur
            || self.cp_cur == Some(cp);
        if accept {
            // Classify before mutating: install vs. CP switch vs. a plain
            // rate update from the CP already being followed.
            let kind = if !self.installed {
                RpTransitionKind::Install
            } else if self.cp_cur != Some(cp) {
                RpTransitionKind::CpSwitch
            } else {
                RpTransitionKind::RateUpdate
            };
            self.r_cur = r_rcvd;
            self.cp_cur = Some(cp);
            self.installed = true;
            // Accepting a CNP (re)arms — i.e. resets — the recovery timer.
            ctx.set_timer(RECOVERY_TOKEN, self.p.recovery_timer);
            if ctx.wants(EventMask::RP_TRANSITION) {
                ctx.events.push(CcEvent::RpTransition {
                    kind,
                    rate_bps: self.r_cur.as_bps(),
                    cp: self.cp_cur,
                });
            }
        }
    }

    /// RoCC's RP never pushes a flow above the NIC line rate —
    /// [`RoccHostCc::decision`] caps at `Rmax` even mid-recovery — and the
    /// fair rate floors at zero. The sanitizer audits this promise.
    fn rate_bounds(&self) -> Option<(BitRate, BitRate)> {
        Some((BitRate::ZERO, self.r_max))
    }

    fn on_timer(&mut self, ctx: &mut HostCcCtx, token: u8) {
        if token != RECOVERY_TOKEN || !self.installed {
            return;
        }
        if self.r_cur > self.r_max {
            // Alg. 2 lines 9–10: the limiter has recovered past line rate;
            // uninstall so the flow transmits as without congestion.
            self.installed = false;
            self.cp_cur = None;
            self.r_cur = self.r_max;
            if ctx.wants(EventMask::RP_TRANSITION) {
                ctx.events.push(CcEvent::RpTransition {
                    kind: RpTransitionKind::Uninstall,
                    rate_bps: self.r_cur.as_bps(),
                    cp: None,
                });
            }
            return;
        }
        // Alg. 2 line 12: exponential recovery. A CNP may legitimately carry
        // a fair rate of zero (f(Qcur) floors at 0 under severe congestion);
        // doubling zero never makes progress, so recovery restarts from one
        // ΔF unit instead — otherwise a flow that accepted a zero-rate CNP
        // just before a CNP blackout would stay frozen at zero forever.
        self.r_cur = if self.r_cur == BitRate::ZERO {
            self.p.delta_f
        } else {
            self.r_cur.saturating_double()
        };
        ctx.set_timer(RECOVERY_TOKEN, self.p.recovery_timer);
        if ctx.wants(EventMask::RP_TRANSITION) {
            ctx.events.push(CcEvent::RpTransition {
                kind: RpTransitionKind::RecoveryDouble,
                rate_bps: self.r_cur.as_bps(),
                cp: self.cp_cur,
            });
        }
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.r_cur.as_bps());
        out.push(self.installed as u64);
        match self.cp_cur {
            None => out.extend_from_slice(&[0, 0, 0]),
            Some(cp) => out.extend_from_slice(&[1, cp.node.0 as u64, cp.port.0 as u64]),
        }
    }

    fn restore_state(&mut self, state: &[u64]) {
        let [r_cur, installed, has_cp, node, port] = state else {
            return; // digest-verified upstream; short input is a no-op
        };
        self.r_cur = BitRate::from_bps(*r_cur);
        self.installed = *installed != 0;
        self.cp_cur = (*has_cp != 0).then_some(CpId {
            node: rocc_sim::prelude::NodeId(*node as usize),
            port: rocc_sim::prelude::PortId(*port as usize),
        });
    }
}

/// Factory installing [`RoccHostCc`] on every flow.
#[derive(Debug, Clone, Default)]
pub struct RoccHostCcFactory {
    /// RP parameters (ΔF, recovery timer).
    pub params: RpParams,
}

impl RoccHostCcFactory {
    /// Paper-default factory.
    pub fn new() -> Self {
        Self::default()
    }
}

impl rocc_sim::cc::HostCcFactory for RoccHostCcFactory {
    fn make(
        &self,
        _flow: rocc_sim::prelude::FlowId,
        link_rate: BitRate,
    ) -> Box<dyn HostCc> {
        Box::new(RoccHostCc::new(self.params, link_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::{NodeId, PortId, SimDuration, SimTime};

    fn ctx() -> HostCcCtx {
        HostCcCtx {
            now: SimTime::ZERO,
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: EventMask::ALL,
        }
    }

    fn cp(n: usize) -> CpId {
        CpId {
            node: NodeId(n),
            port: PortId(0),
        }
    }

    fn cnp(units: u32, c: CpId) -> FeedbackEvent {
        FeedbackEvent::RoccCnp {
            fair_rate_units: units,
            cp: c,
        }
    }

    fn rp() -> RoccHostCc {
        RoccHostCc::new(RpParams::default(), BitRate::from_gbps(40))
    }

    #[test]
    fn starts_uninstalled_at_line_rate() {
        let r = rp();
        assert!(!r.is_installed());
        assert_eq!(r.decision().rate, BitRate::from_gbps(40));
    }

    #[test]
    fn first_cnp_installs_and_sets_rate() {
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(400, cp(1))); // 4 Gb/s
        assert!(r.is_installed());
        assert_eq!(r.decision().rate, BitRate::from_gbps(4));
        assert_eq!(r.current_cp(), Some(cp(1)));
        assert_eq!(c.set_timers.len(), 1, "recovery timer armed");
    }

    #[test]
    fn lower_rate_from_other_cp_accepted() {
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(400, cp(1)));
        r.on_feedback(&mut c, cnp(200, cp(2))); // 2 Gb/s < 4 Gb/s
        assert_eq!(r.decision().rate, BitRate::from_gbps(2));
        assert_eq!(r.current_cp(), Some(cp(2)));
    }

    #[test]
    fn higher_rate_from_other_cp_rejected() {
        // The most congested CP on the path rules (multi-bottleneck, fair).
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(200, cp(1)));
        r.on_feedback(&mut c, cnp(800, cp(2))); // increase from a stranger CP
        assert_eq!(r.decision().rate, BitRate::from_gbps(2));
        assert_eq!(r.current_cp(), Some(cp(1)));
    }

    #[test]
    fn higher_rate_from_same_cp_accepted() {
        // The bottleneck relaxing must let the flow speed up immediately.
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(200, cp(1)));
        r.on_feedback(&mut c, cnp(800, cp(1)));
        assert_eq!(r.decision().rate, BitRate::from_gbps(8));
    }

    #[test]
    fn fast_recovery_doubles_until_uninstall() {
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(1000, cp(1))); // 10 Gb/s on a 40G NIC
        let mut rates = Vec::new();
        for _ in 0..4 {
            let mut c = ctx();
            r.on_timer(&mut c, RECOVERY_TOKEN);
            rates.push(r.r_cur());
        }
        assert_eq!(
            rates,
            vec![
                BitRate::from_gbps(20),
                BitRate::from_gbps(40),
                BitRate::from_gbps(80), // exceeds Rmax...
                BitRate::from_gbps(40), // ...next expiry uninstalls
            ]
        );
        assert!(!r.is_installed());
        assert_eq!(r.decision().rate, BitRate::from_gbps(40));
    }

    #[test]
    fn decision_caps_at_line_rate_mid_recovery() {
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(3000, cp(1))); // 30 Gb/s
        let mut c = ctx();
        r.on_timer(&mut c, RECOVERY_TOKEN); // 60 Gb/s internally
        assert!(r.is_installed());
        assert_eq!(r.decision().rate, BitRate::from_gbps(40), "capped at Rmax");
    }

    #[test]
    fn recovery_escapes_zero_rate() {
        // A zero-rate CNP followed by total CNP loss must not freeze the
        // flow: recovery restarts from one ΔF unit and still uninstalls
        // within a bounded number of periods.
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(0, cp(1)));
        assert!(r.is_installed());
        assert_eq!(r.r_cur(), BitRate::ZERO);
        let mut periods = 0;
        while r.is_installed() {
            let mut c = ctx();
            r.on_timer(&mut c, RECOVERY_TOKEN);
            periods += 1;
            assert!(periods <= 64, "recovery failed to terminate");
        }
        assert_eq!(r.decision().rate, BitRate::from_gbps(40));
        // First period escapes zero; the rest double: ΔF · 2^(k-1) > Rmax.
        assert!(periods >= 2);
    }

    #[test]
    fn reinstalls_after_uninstall() {
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(4000, cp(1)));
        // Recover all the way out.
        for _ in 0..3 {
            let mut c = ctx();
            r.on_timer(&mut c, RECOVERY_TOKEN);
        }
        assert!(!r.is_installed());
        // New congestion: a CNP reinstalls.
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(100, cp(3)));
        assert!(r.is_installed());
        assert_eq!(r.decision().rate, BitRate::from_gbps(1));
    }

    #[test]
    fn foreign_feedback_ignored() {
        let mut r = rp();
        let mut c = ctx();
        r.on_feedback(&mut c, FeedbackEvent::DcqcnCnp);
        assert!(!r.is_installed());
    }

    #[test]
    fn timer_when_uninstalled_is_noop() {
        let mut r = rp();
        let mut c = ctx();
        r.on_timer(&mut c, RECOVERY_TOKEN);
        assert!(!r.is_installed());
        assert!(c.set_timers.is_empty());
    }

    #[test]
    fn declared_rate_bounds_hold_through_recovery() {
        let mut r = rp();
        let (lo, hi) = r.rate_bounds().expect("RoCC RP declares bounds");
        assert_eq!((lo, hi), (BitRate::ZERO, BitRate::from_gbps(40)));
        let mut c = ctx();
        r.on_feedback(&mut c, cnp(3000, cp(1)));
        for _ in 0..6 {
            let mut c = ctx();
            r.on_timer(&mut c, RECOVERY_TOKEN);
            let rate = r.decision().rate;
            assert!(rate >= lo && rate <= hi, "decision {rate:?} out of bounds");
        }
    }

    #[test]
    fn default_recovery_period() {
        assert_eq!(
            RpParams::default().recovery_timer,
            SimDuration::from_micros(100)
        );
    }
}
