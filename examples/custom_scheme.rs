//! Build your own congestion control on the simulator's traits.
//!
//! The simulator is scheme-agnostic: anything implementing
//! [`SwitchCc`]/[`HostCc`] can be dropped in next to RoCC and the paper's
//! baselines. This example implements "TinyCC" — a deliberately simple
//! switch-driven scheme (threshold on/off rate feedback, no PI, no
//! auto-tuning) — runs it against RoCC on the same scenario, and shows
//! why the paper's control loop earns its complexity.
//!
//! ```text
//! cargo run --release --example custom_scheme
//! ```

use rocc::core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc::sim::cc::{
    CtrlEmit, FeedbackEvent, HostCc, HostCcCtx, HostCcFactory, PacketMeta, RateDecision,
    SwitchCc, SwitchCcCtx, SwitchCcFactory,
};
use rocc::sim::prelude::*;
use std::collections::HashMap;

/// TinyCC congestion point: every 40 µs, if the queue is above 100 KB,
/// tell every queued flow to run at C/8; if it is below 50 KB, tell them
/// to run at line rate. Bang-bang control — no PI, no auto-tuning.
struct TinySwitchCc {
    cp: CpId,
    line_rate: BitRate,
    queued: HashMap<FlowId, (u32, NodeId)>,
}

impl SwitchCc for TinySwitchCc {
    fn timer_period(&self) -> Option<SimDuration> {
        Some(SimDuration::from_micros(40))
    }

    fn on_timer(&mut self, ctx: &mut SwitchCcCtx<'_>) {
        let rate_units = if ctx.qlen_bytes > 100_000 {
            (self.line_rate.as_bps() / 8 / 10_000_000) as u32 // C/8 in ΔF units
        } else if ctx.qlen_bytes < 50_000 {
            (self.line_rate.as_bps() / 10_000_000) as u32 // line rate
        } else {
            return; // dead band: say nothing
        };
        for (&flow, &(_, src)) in &self.queued {
            ctx.emits.push(CtrlEmit {
                flow,
                to: src,
                kind: PacketKind::RoccCnp {
                    fair_rate_units: rate_units,
                    cp: self.cp,
                },
            });
        }
    }

    fn on_enqueue(&mut self, _ctx: &mut SwitchCcCtx<'_>, pkt: PacketMeta) -> bool {
        let e = self.queued.entry(pkt.flow).or_insert((0, pkt.src));
        e.0 += 1;
        false
    }

    fn on_dequeue(&mut self, _ctx: &mut SwitchCcCtx<'_>, pkt: PacketMeta) -> Option<IntHop> {
        if let Some(e) = self.queued.get_mut(&pkt.flow) {
            e.0 -= 1;
            if e.0 == 0 {
                self.queued.remove(&pkt.flow);
            }
        }
        None
    }
}

struct TinySwitchFactory;

impl SwitchCcFactory for TinySwitchFactory {
    fn make(&self, cp: CpId, link_rate: BitRate) -> Box<dyn SwitchCc> {
        Box::new(TinySwitchCc {
            cp,
            line_rate: link_rate,
            queued: HashMap::new(),
        })
    }
}

/// TinyCC reaction point: obey the last rate heard, no arbitration, no
/// fast recovery (rate only changes when told).
struct TinyHostCc {
    rate: BitRate,
}

impl HostCc for TinyHostCc {
    fn decision(&self) -> RateDecision {
        RateDecision::line_rate(self.rate)
    }

    fn on_feedback(&mut self, _ctx: &mut HostCcCtx, fb: FeedbackEvent) {
        if let FeedbackEvent::RoccCnp {
            fair_rate_units, ..
        } = fb
        {
            self.rate = BitRate::from_mbps(10).scale(fair_rate_units as f64);
        }
    }
}

struct TinyHostFactory;

impl HostCcFactory for TinyHostFactory {
    fn make(&self, _flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        Box::new(TinyHostCc { rate: link_rate })
    }
}

fn run(
    name: &str,
    host_cc: Box<dyn HostCcFactory>,
    switch_cc: Box<dyn SwitchCcFactory>,
) -> (f64, f64, f64) {
    const N: usize = 8;
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    let (port, _) = b.connect(sw, dst, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut senders = Vec::new();
    for i in 0..N {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        senders.push(h);
    }
    let mut sim = Sim::new(b.build(), SimConfig::default(), host_cc, switch_cc);
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(sw, port);
    for (i, &s) in senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(BitRate::from_gbps(36)),
        });
    }
    sim.run_until(SimTime::from_millis(8));
    let base: Vec<u64> = (0..N)
        .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
        .collect();
    let (_, t0) = sim.switch(sw).snapshot(port);
    sim.run_until(SimTime::from_millis(16));
    let (_, t1) = sim.switch(sw).snapshot(port);
    let util = (t1 - t0) as f64 * 8.0 / 8e-3 / 40e9;
    let rates: Vec<f64> = (0..N)
        .map(|i| (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / 8e-3)
        .collect();
    let tail: Vec<f64> = sim.trace.queue_series[0]
        .iter()
        .filter(|s| s.t >= SimTime::from_millis(8))
        .map(|s| s.v)
        .collect();
    let qmean = tail.iter().sum::<f64>() / tail.len() as f64;
    let qsd = (tail.iter().map(|v| (v - qmean).powi(2)).sum::<f64>() / tail.len() as f64).sqrt();
    println!("{name}:");
    println!("  utilization      {:>6.1}%", util * 100.0);
    println!(
        "  queue            {:>6.0} KB +- {:.0} KB",
        qmean / 1e3,
        qsd / 1e3
    );
    println!(
        "  fairness (Jain)  {:>6.4}",
        rocc::stats::jain_fairness(&rates).unwrap()
    );
    (util, qmean, qsd)
}

fn main() {
    println!("Custom scheme demo: bang-bang \"TinyCC\" vs RoCC (8 flows, 40G)\n");
    let (_, _, tiny_sd) = run("TinyCC", Box::new(TinyHostFactory), Box::new(TinySwitchFactory));
    println!();
    let (_, _, rocc_sd) = run(
        "RoCC",
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    println!();
    println!(
        "TinyCC's queue oscillates {:.1}x harder than RoCC's — bang-bang",
        tiny_sd / rocc_sd.max(1.0)
    );
    println!("feedback cannot find the fair rate; the paper's PI controller can.");
}
