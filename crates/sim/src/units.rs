//! Bandwidth and byte-size units.
//!
//! Rates are stored in bits per second so that the paper's parameters
//! (ΔF = 10 Mb/s, link speeds of 10/40/100 Gb/s) are exactly representable.

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A transmission rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitRate(u64);

impl BitRate {
    /// Zero rate (a fully throttled flow).
    pub const ZERO: BitRate = BitRate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Construct from megabits per second (decimal, 10^6).
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second (decimal, 10^9).
    pub const fn from_gbps(gbps: u64) -> Self {
        BitRate(gbps * 1_000_000_000)
    }

    /// Rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in fractional Mb/s (reporting only).
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Rate in fractional Gb/s (reporting only).
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` at this rate, rounded up to whole
    /// nanoseconds so back-to-back packets never overlap on the wire.
    ///
    /// Panics if the rate is zero — a zero-rate sender must not serialize.
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0, "cannot serialize at zero rate");
        let bits = bytes * 8;
        // ceil(bits * 1e9 / rate) using u128 to avoid overflow.
        let ns = ((bits as u128) * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// Number of bytes transferred at this rate over `dur` (floor).
    pub fn bytes_over(self, dur: SimDuration) -> u64 {
        ((self.0 as u128 * dur.as_nanos() as u128) / (8 * 1_000_000_000)) as u64
    }

    /// Saturating doubling (used by fast-recovery style rate increases).
    pub fn saturating_double(self) -> Self {
        BitRate(self.0.saturating_mul(2))
    }

    /// Halve the rate (integer division).
    pub fn halved(self) -> Self {
        BitRate(self.0 / 2)
    }

    /// Scale by a float factor, clamping to non-negative.
    pub fn scale(self, factor: f64) -> Self {
        assert!(factor.is_finite(), "invalid rate scale {factor}");
        let v = (self.0 as f64 * factor).max(0.0);
        BitRate(v.round() as u64)
    }

    /// Component-wise min.
    pub fn min(self, other: Self) -> Self {
        BitRate(self.0.min(other.0))
    }

    /// Component-wise max.
    pub fn max(self, other: Self) -> Self {
        BitRate(self.0.max(other.0))
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for BitRate {
    fn add_assign(&mut self, rhs: BitRate) {
        *self = *self + rhs;
    }
}

impl Sub for BitRate {
    type Output = BitRate;
    fn sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gb/s", self.as_gbps_f64())
        } else {
            write!(f, "{:.1}Mb/s", self.as_mbps_f64())
        }
    }
}

/// Byte-size helpers matching the paper's KB-denominated thresholds
/// (the paper uses decimal KB: Qref = 150 KB = 150,000 B).
pub const fn kb(n: u64) -> u64 {
    n * 1_000
}

/// Decimal megabytes.
pub const fn mb(n: u64) -> u64 {
    n * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_times_match_link_speeds() {
        // 1000 B at 40 Gb/s = 200 ns; at 100 Gb/s = 80 ns; at 10 Gb/s = 800 ns.
        assert_eq!(
            BitRate::from_gbps(40).serialization_time(1000).as_nanos(),
            200
        );
        assert_eq!(
            BitRate::from_gbps(100).serialization_time(1000).as_nanos(),
            80
        );
        assert_eq!(
            BitRate::from_gbps(10).serialization_time(1000).as_nanos(),
            800
        );
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..e9 ns -> rounded up.
        let d = BitRate::from_bps(3).serialization_time(1);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic(expected = "zero rate")]
    fn zero_rate_serialization_panics() {
        BitRate::ZERO.serialization_time(100);
    }

    #[test]
    fn bytes_over_window() {
        // 40 Gb/s over 1 ms = 5,000,000 B.
        let b = BitRate::from_gbps(40).bytes_over(SimDuration::from_millis(1));
        assert_eq!(b, 5_000_000);
    }

    #[test]
    fn scaling_ops() {
        let r = BitRate::from_gbps(4);
        assert_eq!(r.halved(), BitRate::from_gbps(2));
        assert_eq!(r.saturating_double(), BitRate::from_gbps(8));
        assert_eq!(r.scale(0.5), BitRate::from_gbps(2));
        assert_eq!(BitRate::from_mbps(10).scale(1.5), BitRate::from_mbps(15));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", BitRate::from_gbps(40)), "40.00Gb/s");
        assert_eq!(format!("{}", BitRate::from_mbps(333)), "333.0Mb/s");
    }

    #[test]
    fn size_helpers_are_decimal() {
        assert_eq!(kb(150), 150_000);
        assert_eq!(mb(2), 2_000_000);
    }
}
