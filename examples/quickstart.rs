//! Quickstart: ten senders share one 40 GbE bottleneck under RoCC.
//!
//! Demonstrates the core loop of the library: build a topology, install
//! RoCC at the switch (congestion point) and hosts (reaction points), add
//! flows, run, and read fairness and queue behaviour from the trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rocc::core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc::sim::prelude::*;

fn main() {
    const N: usize = 10;
    let rate = BitRate::from_gbps(40);

    // Topology: N senders and one receiver on a single switch. The
    // switch-to-receiver link is the bottleneck.
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("switch", NodeRole::Switch);
    let dst = b.add_host("receiver");
    let (bottleneck, _) = b.connect(sw, dst, rate, SimDuration::from_micros(1));
    let mut senders = Vec::new();
    for i in 0..N {
        let h = b.add_host(format!("sender{i}"));
        b.connect(h, sw, rate, SimDuration::from_micros(1));
        senders.push(h);
    }

    // RoCC on every switch egress port and every flow; paper parameters
    // are selected automatically from each port's line rate.
    let mut sim = Sim::new(
        b.build(),
        SimConfig::default(),
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );

    // Instrument the bottleneck queue.
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(sw, bottleneck);

    // Long-running flows, each offering 90% of line rate.
    for (i, &src) in senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src,
            dst,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(rate.scale(0.9)),
        });
    }

    // Warm up past convergence, then measure for 8 ms.
    sim.run_until(SimTime::from_millis(8));
    let base: Vec<u64> = (0..N)
        .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
        .collect();
    sim.run_until(SimTime::from_millis(16));

    println!("Per-flow goodput over the measurement window:");
    let mut rates = Vec::new();
    for (i, &b) in base.iter().enumerate() {
        let bytes = sim.trace.delivered_bytes(FlowId(i as u64)) - b;
        let gbps = bytes as f64 * 8.0 / 8e-3 / 1e9;
        rates.push(gbps);
        println!("  flow {i}: {gbps:.2} Gb/s");
    }
    let mean = rates.iter().sum::<f64>() / N as f64;
    println!("mean {mean:.2} Gb/s — ideal fair share is {:.2} Gb/s", 40.0 / N as f64);

    // The queue holds at the reference depth (150 KB for 40G links).
    let tail: Vec<f64> = sim.trace.queue_series[0]
        .iter()
        .filter(|s| s.t >= SimTime::from_millis(8))
        .map(|s| s.v)
        .collect();
    let qmean = tail.iter().sum::<f64>() / tail.len() as f64;
    println!("bottleneck queue mean: {:.0} KB (Qref = 150 KB)", qmean / 1e3);
    println!(
        "PFC pause frames: {} (stable queues make PFC unnecessary)",
        sim.trace.pfc_events.len()
    );
}
