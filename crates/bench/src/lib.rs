//! # rocc-bench — benchmark harness
//!
//! All content lives in `benches/`: one Criterion target per group of
//! paper artifacts (`analysis` → Figs. 5–7, `micro` → Figs. 8/9/13,
//! `compare` → Figs. 11/12/19, `fct` → Figs. 14–18/20 + Table 3,
//! `ablation` → the DESIGN.md §5 design-choice studies). Each bench prints
//! the reproduced headline numbers once, then measures the run cost.

#![warn(missing_docs)]

pub mod ratchet;
