//! Engine phase profiler and scheduler introspection.
//!
//! Attributes wall-clock time and event counts to engine subsystems —
//! scheduler push/pop, switch forwarding, host/RP compute, CP ticks,
//! telemetry/sanitizer/observatory overhead — and collects the scheduler
//! statistics the timing-wheel redesign needs: push/pop totals, a
//! heap-depth time series, a same-timestamp burst-size histogram, the
//! event-type dispatch mix, and slab/fastmap load figures (the latter
//! read once at export time).
//!
//! ## Design constraints
//!
//! * **One-branch gating.** Every emission site in the hot path costs a
//!   single predictable branch while the profiler is disabled (the
//!   default), exactly like telemetry, the sanitizer, and the
//!   observatory.
//! * **No observer effect.** The profiler reads the host clock and bumps
//!   private counters; it never touches the run RNG, the event queue, or
//!   any CC state, so a profiled run is schedule-bit-identical to an
//!   unprofiled one (`tests/observer_effect.rs` pins this on the faulted
//!   golden seeds).
//! * **Sampled timing.** A host-clock read costs ~20 ns while a whole
//!   engine event dispatches in ~200 ns, so per-transition timing on
//!   every event would cost tens of percent. Instead every `stride`-th
//!   event is *timed*: from its pop to the next pop, every phase
//!   transition reads the clock and the elapsed nanoseconds accrue to
//!   the phase being left. Counts stay exact for every event; wall-time
//!   attribution is statistical, like any sampling profiler. Per-phase
//!   wall estimates are the sampled shares scaled to the run's measured
//!   total wall, so the reported shares sum to the total by
//!   construction. The sampling stride is an event count, not a clock,
//!   so enabling the profiler cannot change the schedule.

use crate::sched::{SchedStats, WHEEL_LEVELS};
use crate::telemetry::Histogram;
use std::time::Instant;

/// An engine subsystem that wall time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Popping the next event off the scheduler heap (includes the heap
    /// sift-down).
    SchedPop = 0,
    /// Pushing a new event onto the scheduler heap (includes the
    /// sift-up); nested inside whichever phase scheduled the event.
    SchedPush = 1,
    /// Switch data path: ingress, routing, queueing, PFC, egress.
    SwitchForward = 2,
    /// Host data path: NIC TX/RX, transport, RP compute, pacing.
    HostCompute = 3,
    /// Periodic switch-CC timers (RoCC fair-rate computation).
    CpTick = 4,
    /// The periodic sample tick: queue/throughput/flow-rate series and
    /// telemetry histograms.
    Telemetry = 5,
    /// The observatory time-series block inside the sample tick.
    Observatory = 6,
    /// Invariant-sanitizer audits and the PFC watchdog.
    Sanitizer = 7,
    /// Engine-level dispatch bookkeeping: budget checks, fault
    /// decisions, flow start/stop routing.
    Dispatch = 8,
}

/// Number of distinct [`Phase`]s.
pub const PHASE_COUNT: usize = 9;

/// JSON/export names, indexed by `Phase as usize`.
pub const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "sched_pop",
    "sched_push",
    "switch_forward",
    "host_compute",
    "cp_tick",
    "telemetry",
    "observatory",
    "sanitizer",
    "dispatch",
];

/// Number of distinct [`crate::engine::Event`] variants in the dispatch
/// mix.
pub const EVENT_KIND_COUNT: usize = 11;

/// Export names for the dispatch mix, indexed by
/// [`crate::engine::Event::kind_idx`].
pub const EVENT_KIND_NAMES: [&str; EVENT_KIND_COUNT] = [
    "arrive",
    "switch_tx_done",
    "host_tx_done",
    "host_wake",
    "cp_timer",
    "host_cc_timer",
    "feedback",
    "flow_start",
    "flow_stop",
    "sample",
    "fault",
];

/// Sentinel returned by [`PhaseProfiler::push_begin`] when no phase
/// restore is needed (profiler off, or outside a timed window).
pub const NO_PHASE: usize = usize::MAX;

/// Default sampling stride: one event in 256 is precisely timed. At
/// ~200 ns/event and ~8 clock reads per timed event this keeps the
/// timing cost well under 1% while still collecting thousands of samples
/// per benchmark-sized run.
pub const DEFAULT_STRIDE: u32 = 256;

/// Cap on the heap-depth series length; when full, every other sample is
/// dropped and the sampling stride doubles, so memory stays bounded on
/// arbitrarily long runs while coverage stays uniform.
const HEAP_SERIES_CAP: usize = 4096;

/// One heap-depth sample: simulated time, heap depth, live slab packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSample {
    /// Simulated nanoseconds at the sample.
    pub t_ns: u64,
    /// Scheduler heap length after the pop.
    pub heap: u64,
    /// Live packets in the slab arena.
    pub slab_live: u64,
}

/// The profiler state. Lives in [`crate::engine::Kernel`] so the switch
/// and host hot paths can mark phases through the `&mut Kernel` they
/// already receive.
#[derive(Debug)]
pub struct PhaseProfiler {
    on: bool,
    timing: bool,
    stride: u32,
    countdown: u32,
    current: usize,
    anchor: Instant,
    sampled_ns: [u64; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
    timed_events: u64,
    dispatch_mix: [u64; EVENT_KIND_COUNT],
    burst: Histogram,
    burst_ones: u64,
    cur_burst: u64,
    last_at_ns: u64,
    armed: bool,
    heap_series: Vec<DepthSample>,
    /// Per-level wheel occupancy at each heap-depth sample, compacted in
    /// lockstep with `heap_series` (all-zero rows under the heap backend).
    level_series: Vec<[u64; WHEEL_LEVELS]>,
    heap_skip_n: u32,
    heap_skip: u32,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler {
            on: false,
            timing: false,
            stride: DEFAULT_STRIDE,
            countdown: DEFAULT_STRIDE,
            current: Phase::Dispatch as usize,
            anchor: Instant::now(),
            sampled_ns: [0; PHASE_COUNT],
            counts: [0; PHASE_COUNT],
            timed_events: 0,
            dispatch_mix: [0; EVENT_KIND_COUNT],
            burst: Histogram::new(),
            burst_ones: 0,
            cur_burst: 0,
            last_at_ns: u64::MAX,
            armed: false,
            heap_series: Vec::new(),
            level_series: Vec::new(),
            heap_skip_n: 1,
            heap_skip: 1,
        }
    }
}

impl PhaseProfiler {
    /// Enable with the default sampling stride.
    pub fn enable(&mut self) {
        self.enable_with_stride(DEFAULT_STRIDE);
    }

    /// Enable with a custom sampling stride (1 = time every event;
    /// higher = cheaper and statistically coarser). Counts are exact at
    /// any stride.
    pub fn enable_with_stride(&mut self, stride: u32) {
        self.on = true;
        self.stride = stride.max(1);
        self.armed = true; // time the first event so short runs profile too
        self.countdown = self.stride;
        self.heap_skip_n = 1;
        self.heap_skip = 1;
    }

    /// Whether the profiler is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Zero every accumulator (sampled times, counts, scheduler stats,
    /// series) while keeping enablement and strides — the reset side of
    /// [`crate::engine::Sim::reset_profile`], so warm-up work can be
    /// excluded from a profile.
    pub fn reset_accumulators(&mut self) {
        self.timing = false;
        self.armed = self.on; // time the first post-reset event
        self.countdown = self.stride;
        self.sampled_ns = [0; PHASE_COUNT];
        self.counts = [0; PHASE_COUNT];
        self.timed_events = 0;
        self.dispatch_mix = [0; EVENT_KIND_COUNT];
        self.burst = Histogram::new();
        self.burst_ones = 0;
        self.cur_burst = 0;
        self.last_at_ns = u64::MAX;
        self.heap_series.clear();
        self.level_series.clear();
        self.heap_skip_n = 1;
        self.heap_skip = 1;
    }

    /// Flush the open interval into the current phase and move the
    /// anchor (timed windows only).
    #[inline]
    fn flush(&mut self) {
        let now = Instant::now();
        self.sampled_ns[self.current] += now.duration_since(self.anchor).as_nanos() as u64;
        self.anchor = now;
    }

    /// Switch attribution to `p`. One branch when disabled; outside a
    /// timed window only the phase-entry count is bumped.
    #[inline]
    pub fn enter(&mut self, p: Phase) {
        if !self.on {
            return;
        }
        self.counts[p as usize] += 1;
        if self.timing {
            self.flush();
            self.current = p as usize;
        }
    }

    /// An event is being popped: close the previous timed window (if
    /// any) and open a new one when the sampling countdown armed it.
    /// Must be called before the heap pop so the pop itself is
    /// attributed to [`Phase::SchedPop`]. Two predictable branches on
    /// the untimed path — all per-pop counting lives in
    /// [`PhaseProfiler::note_pop`] (`timing`/`armed` stay false while
    /// disabled, so no separate enabled check is needed here).
    #[inline]
    pub fn pop_begin(&mut self) {
        if self.timing {
            self.flush();
            self.timing = false;
        }
        if self.armed {
            self.armed = false;
            self.timing = true;
            self.timed_events += 1;
            self.anchor = Instant::now();
            self.current = Phase::SchedPop as usize;
        }
    }

    /// Scheduler bookkeeping for a successfully popped event: the pop
    /// count, same-instant burst tracking, and the sampling countdown —
    /// which both arms the next timed window (opened by the following
    /// [`PhaseProfiler::pop_begin`]) and paces heap-depth samples.
    /// Returns `true` when a heap-depth sample is due, so the caller
    /// only gathers the (heap depth, slab occupancy) snapshot on that
    /// stride — the common path stays a few compares and increments.
    #[inline]
    #[must_use]
    pub fn note_pop(&mut self, at_ns: u64) -> bool {
        if !self.on {
            return false;
        }
        if at_ns == self.last_at_ns {
            self.cur_burst += 1;
        } else {
            // Size-1 bursts are the overwhelmingly common case; batch
            // them in a counter instead of bucketing per pop.
            // `last_at_ns` is `u64::MAX` until the first pop, so
            // `cur_burst` is 0 exactly once and no burst is recorded.
            if self.cur_burst == 1 {
                self.burst_ones += 1;
            } else if self.cur_burst > 1 {
                self.burst.record(self.cur_burst);
            }
            self.cur_burst = 1;
            self.last_at_ns = at_ns;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.stride;
            self.armed = true;
            self.heap_skip -= 1;
            if self.heap_skip == 0 {
                self.heap_skip = self.heap_skip_n;
                return true;
            }
        }
        false
    }

    /// Record the heap-depth sample a `true` return from
    /// [`PhaseProfiler::note_pop`] asked for. `heap_after` is the queue
    /// length after the pop, `slab_live` the live packet count, and
    /// `levels` the scheduler's per-level bucket occupancy (all zeros
    /// under the heap backend).
    pub fn note_heap_sample(
        &mut self,
        at_ns: u64,
        heap_after: usize,
        slab_live: usize,
        levels: [u64; WHEEL_LEVELS],
    ) {
        self.heap_series.push(DepthSample {
            t_ns: at_ns,
            heap: heap_after as u64,
            slab_live: slab_live as u64,
        });
        self.level_series.push(levels);
        if self.heap_series.len() >= HEAP_SERIES_CAP {
            // Keep every other sample and double the stride: bounded
            // memory, uniform coverage. The level series compacts in
            // lockstep so row i always matches heap_series[i].
            let mut i = 0;
            self.heap_series.retain(|_| {
                i += 1;
                i % 2 == 1
            });
            let mut j = 0;
            self.level_series.retain(|_| {
                j += 1;
                j % 2 == 1
            });
            self.heap_skip_n = self.heap_skip_n.saturating_mul(2);
        }
    }

    /// An event of dispatch-mix kind `kind` enters engine dispatch.
    #[inline]
    pub fn dispatch_begin(&mut self, kind: usize) {
        if !self.on {
            return;
        }
        self.dispatch_mix[kind] += 1;
        if self.timing {
            self.flush();
            self.current = Phase::Dispatch as usize;
        }
    }

    /// A heap push begins (inside [`crate::engine::Kernel::schedule`]).
    /// Returns the phase to restore via [`PhaseProfiler::push_end`], or
    /// [`NO_PHASE`] when nothing needs restoring. Push *totals* are not
    /// counted here — the kernel's monotonic push sequence number
    /// already counts them for free (see
    /// [`crate::engine::Sim::profiled_pushes`]), so the untimed path is
    /// a single predictable branch.
    #[inline]
    pub fn push_begin(&mut self) -> usize {
        if self.timing {
            let prev = self.current;
            self.flush();
            self.current = Phase::SchedPush as usize;
            return prev;
        }
        NO_PHASE
    }

    /// Close a [`PhaseProfiler::push_begin`] window, restoring `prev`.
    #[inline]
    pub fn push_end(&mut self, prev: usize) {
        if prev == NO_PHASE {
            return;
        }
        self.flush();
        self.current = prev;
    }

    /// A run loop is exiting (drained, deadline, budget, or flows done):
    /// close any open timed window so wall time outside the engine is
    /// never attributed to a phase.
    #[inline]
    pub fn run_break(&mut self) {
        if !self.on {
            return;
        }
        if self.timing {
            self.flush();
            self.timing = false;
        }
    }

    /// Total heap pops dispatched in the window, derived from the
    /// dispatch mix (every successfully popped event enters dispatch
    /// exactly once) so the pop hot path never bumps a dedicated
    /// counter. Push totals come from the kernel's push sequence number
    /// via [`crate::engine::Sim::profiled_pushes`].
    pub fn pops(&self) -> u64 {
        self.dispatch_mix.iter().sum()
    }

    /// Events precisely timed by the sampling stride.
    pub fn timed_events(&self) -> u64 {
        self.timed_events
    }

    /// The strided heap-depth/slab-occupancy time series.
    pub fn heap_series(&self) -> &[DepthSample] {
        &self.heap_series
    }

    /// The per-level wheel-occupancy series, row-aligned with
    /// [`PhaseProfiler::heap_series`] (all-zero rows under the heap
    /// backend).
    pub fn level_series(&self) -> &[[u64; WHEEL_LEVELS]] {
        &self.level_series
    }

    /// The same-timestamp burst-size histogram, including the burst
    /// still open at call time.
    pub fn burst_histogram(&self) -> Histogram {
        let mut h = self.burst.clone();
        h.record_n(1, self.burst_ones);
        if self.cur_burst > 0 {
            h.record(self.cur_burst);
        }
        h
    }

    /// The event-type dispatch mix as `(name, count)` pairs, in
    /// [`EVENT_KIND_NAMES`] order.
    pub fn dispatch_mix(&self) -> Vec<(&'static str, u64)> {
        EVENT_KIND_NAMES
            .iter()
            .zip(self.dispatch_mix.iter())
            .map(|(&n, &c)| (n, c))
            .collect()
    }

    /// Per-phase share of sampled wall time, as `(name, share, count)`
    /// rows in [`PHASE_NAMES`] order. Shares sum to 1.0 when anything
    /// was timed, 0.0 otherwise. `pushes` is the window's push total,
    /// supplied by the caller because the kernel's push sequence number
    /// counts it for free (see [`crate::engine::Sim::profiled_pushes`]).
    pub fn phase_shares(&self, pushes: u64) -> Vec<(&'static str, f64, u64)> {
        let total: u64 = self.sampled_ns.iter().sum();
        // The pop and dispatch entry counts live in the mix (one entry
        // per dispatched event); materialize them here rather than
        // paying dedicated counter bumps per event in the hot path.
        let mut counts = self.counts;
        counts[Phase::SchedPop as usize] = self.pops();
        counts[Phase::Dispatch as usize] = self.pops();
        counts[Phase::SchedPush as usize] = pushes;
        PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let share = if total > 0 {
                    self.sampled_ns[i] as f64 / total as f64
                } else {
                    0.0
                };
                (n, share, counts[i])
            })
            .collect()
    }

    /// Render the `rocc-perf-profile/v1` JSON artifact. The engine-level
    /// context (total wall, slab/fastmap figures) comes from the caller
    /// because the profiler itself only sees phases and the scheduler.
    pub fn report_json(&self, ctx: &ProfileContext) -> String {
        let shares = self.phase_shares(ctx.pushes);
        let phases: Vec<String> = shares
            .iter()
            .map(|(name, share, count)| {
                let wall_ns = (*share * ctx.wall_ns as f64) as u64;
                format!(
                    "{{\"phase\":\"{name}\",\"share\":{},\"wall_ns\":{wall_ns},\"count\":{count}}}",
                    json_f64(*share)
                )
            })
            .collect();
        let mix: Vec<String> = self
            .dispatch_mix()
            .iter()
            .map(|(n, c)| format!("{{\"event\":\"{n}\",\"count\":{c}}}"))
            .collect();
        let depth: Vec<String> = self
            .heap_series
            .iter()
            .map(|s| format!("[{},{},{}]", s.t_ns, s.heap, s.slab_live))
            .collect();
        let levels: Vec<String> = self
            .level_series
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let depths_now: Vec<String> = ctx.level_depths.iter().map(|v| v.to_string()).collect();
        let eps = if ctx.wall_ns > 0 {
            ctx.events as f64 / (ctx.wall_ns as f64 / 1e9)
        } else {
            0.0
        };
        format!(
            "{{\"schema\":\"rocc-perf-profile/v1\",\
             \"events_processed\":{},\
             \"wall_seconds\":{},\
             \"sim_seconds\":{},\
             \"events_per_sec\":{},\
             \"sampling\":{{\"stride\":{},\"timed_events\":{}}},\
             \"phases\":[{}],\
             \"scheduler\":{{\"backend\":\"{}\",\"pushes\":{},\"pops\":{},\"peak_heap\":{},\"pending\":{},\
             \"cascades\":{},\"cascaded_events\":{},\"rebases\":{},\"max_level\":{},\
             \"level_depths\":[{}],\
             \"burst_hist\":{},\
             \"heap_depth_series\":[{}],\
             \"level_series\":[{}],\
             \"dispatch_mix\":[{}]}},\
             \"slab\":{{\"live\":{},\"peak_live\":{}}},\
             \"fastmap\":{{\"flow_dir_entries\":{}}}}}",
            ctx.events,
            json_f64(ctx.wall_ns as f64 / 1e9),
            json_f64(ctx.sim_ns as f64 / 1e9),
            json_f64(eps),
            self.stride,
            self.timed_events,
            phases.join(","),
            ctx.sched_backend,
            ctx.pushes,
            self.pops(),
            ctx.peak_heap,
            ctx.pending,
            ctx.sched.cascades,
            ctx.sched.cascaded_events,
            ctx.sched.rebases,
            ctx.sched.max_level,
            depths_now.join(","),
            self.burst_histogram().to_json("events"),
            depth.join(","),
            levels.join(","),
            mix.join(","),
            ctx.slab_live,
            ctx.slab_peak,
            ctx.flow_dir_entries,
        )
    }
}

/// Engine-level context for [`PhaseProfiler::report_json`], gathered by
/// [`crate::engine::Sim::perf_profile_json`].
#[derive(Debug, Clone, Copy)]
pub struct ProfileContext {
    /// Events dispatched in the profiled window.
    pub events: u64,
    /// Heap pushes in the profiled window (from the kernel's push
    /// sequence number — see [`crate::engine::Sim::profiled_pushes`]).
    pub pushes: u64,
    /// Wall nanoseconds accumulated inside run loops in the window.
    pub wall_ns: u64,
    /// Simulated nanoseconds covered by the window.
    pub sim_ns: u64,
    /// Peak scheduler-heap length over the whole run.
    pub peak_heap: usize,
    /// Scheduler-heap length at export time.
    pub pending: usize,
    /// Live packets in the slab arena at export time.
    pub slab_live: usize,
    /// Slab high-water mark over the whole run.
    pub slab_peak: usize,
    /// Entries in the flow directory (the hottest fastmap).
    pub flow_dir_entries: usize,
    /// Scheduler backend name ("heap" / "wheel").
    pub sched_backend: &'static str,
    /// Scheduler introspection counters (cascades, rebases; all zero
    /// under the heap backend).
    pub sched: SchedStats,
    /// Per-level wheel occupancy at export time (all zeros under the
    /// heap backend).
    pub level_depths: [u64; WHEEL_LEVELS],
}

/// Format an `f64` as JSON (no NaN/inf — those become 0).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ProfileContext {
        ProfileContext {
            events: 1000,
            pushes: 7,
            wall_ns: 2_000_000,
            sim_ns: 500_000,
            peak_heap: 40,
            pending: 3,
            slab_live: 2,
            slab_peak: 17,
            flow_dir_entries: 6,
            sched_backend: "wheel",
            sched: SchedStats {
                cascades: 3,
                cascaded_events: 11,
                rebases: 1,
                max_level: 4,
            },
            level_depths: [1, 0, 2, 0, 0, 0, 0, 0],
        }
    }

    #[test]
    fn disabled_profiler_collects_nothing() {
        let mut p = PhaseProfiler::default();
        p.pop_begin();
        assert!(!p.note_pop(10));
        p.enter(Phase::SwitchForward);
        let prev = p.push_begin();
        assert_eq!(prev, NO_PHASE);
        p.push_end(prev);
        p.dispatch_begin(0);
        p.run_break();
        assert_eq!(p.pops(), 0);
        assert!(p.heap_series().is_empty());
        assert_eq!(p.burst_histogram().count(), 0);
        assert!(p
            .phase_shares(0)
            .iter()
            .all(|(_, s, c)| *s == 0.0 && *c == 0));
    }

    #[test]
    fn counts_are_exact_and_shares_sum_to_one() {
        let mut p = PhaseProfiler::default();
        p.enable_with_stride(1); // time every event
        for i in 0..100u64 {
            p.pop_begin();
            if p.note_pop(i * 10) {
                p.note_heap_sample(i * 10, 5, 1, [0; WHEEL_LEVELS]);
            }
            p.dispatch_begin(0);
            p.enter(Phase::SwitchForward);
            let prev = p.push_begin();
            p.push_end(prev);
        }
        p.run_break();
        assert_eq!(p.pops(), 100);
        assert_eq!(p.timed_events(), 100);
        let shares = p.phase_shares(100);
        let sum: f64 = shares.iter().map(|(_, s, _)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        let by_name: std::collections::HashMap<&str, u64> =
            shares.iter().map(|&(n, _, c)| (n, c)).collect();
        assert_eq!(by_name["sched_pop"], 100);
        assert_eq!(by_name["sched_push"], 100);
        assert_eq!(by_name["switch_forward"], 100);
        assert_eq!(by_name["dispatch"], 100);
        assert_eq!(by_name["sanitizer"], 0);
    }

    #[test]
    fn sampling_stride_times_a_subset_but_counts_all() {
        let mut p = PhaseProfiler::default();
        p.enable_with_stride(8);
        for i in 0..64u64 {
            p.pop_begin();
            if p.note_pop(i) {
                p.note_heap_sample(i, 3, 0, [0; WHEEL_LEVELS]);
            }
            p.dispatch_begin(1);
        }
        p.run_break();
        assert_eq!(p.pops(), 64);
        // First event is always timed, then every 8th.
        assert_eq!(p.timed_events(), 1 + 63 / 8);
        let mix = p.dispatch_mix();
        assert_eq!(mix[1], ("switch_tx_done", 64));
    }

    #[test]
    fn burst_histogram_groups_same_timestamp_pops() {
        let mut p = PhaseProfiler::default();
        p.enable();
        // Bursts of 3, 1, 2 (the last closed by burst_histogram()).
        for at in [5, 5, 5, 9, 12, 12] {
            p.pop_begin();
            if p.note_pop(at) {
                p.note_heap_sample(at, 1, 0, [0; WHEEL_LEVELS]);
            }
        }
        let h = p.burst_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 3);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn heap_series_compacts_at_cap() {
        let mut p = PhaseProfiler::default();
        p.enable_with_stride(1);
        for i in 0..20_000u64 {
            p.pop_begin();
            if p.note_pop(i) {
                p.note_heap_sample(i, (i % 100) as usize, 0, [0; WHEEL_LEVELS]);
            }
        }
        assert!(p.heap_series().len() < HEAP_SERIES_CAP);
        assert_eq!(
            p.level_series().len(),
            p.heap_series().len(),
            "level series must compact in lockstep"
        );
        assert!(p.heap_skip_n > 1, "stride must grow under compaction");
        // Still covers the run: last sample is near the end.
        assert!(p.heap_series().last().unwrap().t_ns > 10_000);
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut p = PhaseProfiler::default();
        p.enable_with_stride(1);
        for i in 0..10u64 {
            p.pop_begin();
            if p.note_pop(i * 7) {
                p.note_heap_sample(i * 7, 4, 2, [0; WHEEL_LEVELS]);
            }
            p.dispatch_begin(0);
            p.enter(Phase::HostCompute);
        }
        p.run_break();
        let j = p.report_json(&ctx());
        assert!(j.starts_with("{\"schema\":\"rocc-perf-profile/v1\""));
        assert!(j.contains("\"phases\":["));
        assert!(j.contains("\"phase\":\"sched_pop\""));
        assert!(j.contains("\"burst_hist\":{"));
        assert!(j.contains("\"backend\":\"wheel\""));
        assert!(j.contains("\"cascades\":3"));
        assert!(j.contains("\"rebases\":1"));
        assert!(j.contains("\"level_depths\":[1,0,2,0,0,0,0,0]"));
        assert!(j.contains("\"level_series\":[["));
        assert!(j.contains("\"heap_depth_series\":[["));
        assert!(j.contains("\"dispatch_mix\":[{"));
        assert!(j.contains("\"flow_dir_entries\":6"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn reset_clears_accumulators_but_keeps_enablement() {
        let mut p = PhaseProfiler::default();
        p.enable_with_stride(4);
        for i in 0..16u64 {
            p.pop_begin();
            if p.note_pop(i) {
                p.note_heap_sample(i, 2, 1, [0; WHEEL_LEVELS]);
            }
            p.dispatch_begin(0);
        }
        assert!(p.pops() > 0);
        p.reset_accumulators();
        assert!(p.is_enabled());
        assert_eq!(p.pops(), 0);
        assert_eq!(p.timed_events(), 0);
        assert!(p.heap_series().is_empty());
        assert_eq!(p.burst_histogram().count(), 0);
        // Still collects after the reset.
        p.pop_begin();
        if p.note_pop(99) {
            p.note_heap_sample(99, 2, 1, [0; WHEEL_LEVELS]);
        }
        p.dispatch_begin(0);
        assert_eq!(p.pops(), 1);
    }
}
