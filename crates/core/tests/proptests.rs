//! Property-based tests for the RoCC algorithms.

use proptest::prelude::*;
use rocc_core::cnp::Cnp;
use rocc_core::fixed::Fx;
use rocc_core::{CpParams, FairRateCalculator, RoccHostCc, RpParams};
use rocc_sim::cc::{FeedbackEvent, HostCc, HostCcCtx};
use rocc_sim::prelude::*;

fn ctx() -> HostCcCtx {
    HostCcCtx {
        now: SimTime::ZERO,
        link_rate: BitRate::from_gbps(40),
        set_timers: Vec::new(),
        cancel_timers: Vec::new(),
        events: Vec::new(),
        event_mask: rocc_sim::telemetry::EventMask::NONE,
    }
}

proptest! {
    /// Alg. 1 invariant: whatever queue trajectory the CP observes, the
    /// fair rate stays within [Fmin, Fmax].
    #[test]
    fn fair_rate_always_bounded(queues in proptest::collection::vec(0u64..50_000_000, 1..200)) {
        let p = CpParams::for_40g();
        let mut c = FairRateCalculator::new(p);
        for q in queues {
            let (f, _) = c.update(q);
            prop_assert!(f >= p.f_min && f <= p.f_max, "F = {f}");
            prop_assert_eq!(f, c.fair_rate_units());
        }
    }

    /// The calculator is a pure deterministic state machine: identical
    /// queue sequences give identical rate sequences.
    #[test]
    fn fair_rate_deterministic(queues in proptest::collection::vec(0u64..10_000_000, 1..100)) {
        let run = || {
            let mut c = FairRateCalculator::new(CpParams::for_100g());
            queues.iter().map(|&q| c.update(q).0).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// A persistently empty queue always drives F back to Fmax, from any
    /// reachable state (eff: no lingering throttle without congestion).
    #[test]
    fn empty_queue_recovers_to_fmax(
        queues in proptest::collection::vec(0u64..10_000_000, 1..50),
    ) {
        let p = CpParams::for_40g();
        let mut c = FairRateCalculator::new(p);
        for q in queues {
            c.update(q);
        }
        // PI increase from the floor: worst case needs many rounds (gains
        // shrink by 32 at the bottom of the range).
        let mut f = 0;
        for _ in 0..100_000 {
            f = c.update(0).0;
            if f == p.f_max {
                break;
            }
        }
        prop_assert_eq!(f, p.f_max);
    }

    /// CNP wire format: round-trips arbitrary field values exactly.
    #[test]
    fn cnp_round_trip(units in 0u32..u32::MAX, node in 0usize..u32::MAX as usize,
                      port in 0usize..u16::MAX as usize, flow in 0u64..u64::MAX) {
        let c = Cnp {
            fair_rate_units: units,
            cp: CpId { node: NodeId(node), port: PortId(port) },
            flow: FlowId(flow),
        };
        prop_assert_eq!(Cnp::decode(&c.to_bytes()), Ok(c));
    }

    /// Fixed-point: shifts by k are exact division by 2^k for non-negative
    /// values, and add/sub round-trip.
    #[test]
    fn fixed_point_shift_exact(v in 0i64..1 << 40, k in 0u32..16) {
        let x = Fx::from_int(v);
        prop_assert_eq!(x.shr(k).raw(), x.raw() >> k);
        prop_assert_eq!(x.shr(k).shl(k).raw(), (x.raw() >> k) << k);
    }

    #[test]
    fn fixed_point_add_sub_roundtrip(a in -(1i64 << 40)..1 << 40, b in -(1i64 << 40)..1 << 40) {
        let x = Fx::from_int(a);
        let y = Fx::from_int(b);
        prop_assert_eq!(x + y - y, x);
    }

    /// Alg. 2 invariants under arbitrary CNP sequences: the published rate
    /// never exceeds line rate, never drops below the smallest rate ever
    /// received, and same-CP feedback is always accepted.
    #[test]
    fn rp_rate_bounded_by_feedback(
        cnps in proptest::collection::vec((1u32..5000, 0usize..4), 1..60),
    ) {
        let line = BitRate::from_gbps(40);
        let mut rp = RoccHostCc::new(RpParams::default(), line);
        let mut min_seen = u32::MAX;
        for (units, cp_idx) in cnps {
            min_seen = min_seen.min(units);
            let mut c = ctx();
            rp.on_feedback(&mut c, FeedbackEvent::RoccCnp {
                fair_rate_units: units,
                cp: CpId { node: NodeId(cp_idx), port: PortId(0) },
            });
            let r = rp.decision().rate;
            prop_assert!(r <= line);
            // The rate limiter never goes below the smallest rate any CP
            // ever demanded (it has no reason to).
            let floor = BitRate::from_mbps(10).scale(min_seen as f64);
            prop_assert!(r >= floor.min(line), "rate {r} below floor {floor}");
        }
    }

    /// Fast recovery from an arbitrary accepted rate always uninstalls in
    /// finitely many timer expirations, and the rate is monotone
    /// non-decreasing along the way.
    #[test]
    fn rp_recovery_terminates(units in 1u32..4000) {
        let line = BitRate::from_gbps(40);
        let mut rp = RoccHostCc::new(RpParams::default(), line);
        let mut c = ctx();
        rp.on_feedback(&mut c, FeedbackEvent::RoccCnp {
            fair_rate_units: units,
            cp: CpId { node: NodeId(0), port: PortId(0) },
        });
        let mut prev = rp.decision().rate;
        for _ in 0..64 {
            if !rp.is_installed() {
                break;
            }
            let mut c = ctx();
            rp.on_timer(&mut c, rocc_core::rp::RECOVERY_TOKEN);
            let cur = rp.decision().rate;
            prop_assert!(cur >= prev, "recovery must not decrease: {prev} -> {cur}");
            prev = cur;
        }
        prop_assert!(!rp.is_installed(), "recovery never uninstalled from {units} units");
        prop_assert_eq!(rp.decision().rate, line);
    }

    /// Robustness under CNP blackout: from ANY reachable installed state —
    /// arbitrary CNP histories, including zero-rate CNPs — a sustained lack
    /// of accepted CNPs uninstalls the limiter within an explicit bound of
    /// ceil(log2(Rmax/ΔF)) + 3 timer periods (one to escape a zero rate,
    /// the doublings from ΔF past Rmax, and the uninstalling expiry).
    #[test]
    fn rp_recovery_bounded_from_any_state(
        cnps in proptest::collection::vec((0u32..5000, 0usize..4), 1..40),
    ) {
        let line = BitRate::from_gbps(40);
        let p = RpParams::default();
        let mut rp = RoccHostCc::new(p, line);
        for (units, cp_idx) in cnps {
            let mut c = ctx();
            rp.on_feedback(&mut c, FeedbackEvent::RoccCnp {
                fair_rate_units: units,
                cp: CpId { node: NodeId(cp_idx), port: PortId(0) },
            });
        }
        prop_assume!(rp.is_installed());
        let ratio = line.as_bps() / p.delta_f.as_bps().max(1);
        let bound = (64 - ratio.leading_zeros() as u64) + 3;
        let mut periods = 0u64;
        while rp.is_installed() {
            let mut c = ctx();
            rp.on_timer(&mut c, rocc_core::rp::RECOVERY_TOKEN);
            periods += 1;
            prop_assert!(
                periods <= bound,
                "still installed after {} periods (bound {})", periods, bound
            );
        }
        prop_assert_eq!(rp.decision().rate, line);
    }
}

proptest! {
    /// Fixed-point vs floating-point datapath (DESIGN.md ablation 5): over
    /// arbitrary queue trajectories the Q47.16 datapath tracks the f64
    /// reference to within a small relative error — the hardware
    /// quantization the paper's "fixed point precision" note refers to is
    /// behaviourally negligible.
    #[test]
    fn fixed_point_tracks_float_reference(
        queues in proptest::collection::vec(0u64..2_000_000, 1..150),
    ) {
        use rocc_core::cp::FairRateCalculatorF64;
        let p = CpParams::for_40g();
        let mut fx = FairRateCalculator::new(p);
        let mut fl = FairRateCalculatorF64::new(p);
        for q in queues {
            let (a, _) = fx.update(q);
            let b = fl.update(q);
            let diff = (a as f64 - b as f64).abs();
            // Within 2% of Fmax or 3 units, whichever is larger, at every
            // step (errors do not accumulate thanks to the shared clamps).
            prop_assert!(
                diff <= (0.02 * p.f_max as f64).max(3.0),
                "fixed {a} vs float {b} at q={q}"
            );
        }
    }
}
