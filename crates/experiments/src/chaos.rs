//! Chaos experiments: congestion control under injected faults.
//!
//! The paper's robustness claims (§3, §5) are qualitative: RoCC keeps
//! working when the feedback loop itself is damaged, because CNPs are
//! regenerated every T from switch state (nothing to resynchronize) and
//! the RP's fast recovery bounds the damage of any lost CNP to one
//! recovery-timer period. These experiments quantify that by driving the
//! fault-injection layer of `rocc-sim` ([`FaultPlan`]):
//!
//! * [`cnp_loss_sweep`] — RoCC vs DCQCN on the dumbbell while 0.1–5% of
//!   CNPs are dropped at random (data packets untouched). Reports flow
//!   completions and FCT inflation per loss rate.
//! * [`cnp_blackout`] — a single RoCC flow is throttled by competing
//!   traffic, then the competitors stop at the same instant a total CNP
//!   blackout begins. Only fast recovery can restore the rate; the
//!   experiment records the RP rate trajectory back to line rate.

use crate::micro::{self, tail_stats};
use crate::scenarios;
use crate::schemes::Scheme;
use crate::Scale;
use rocc_sim::prelude::*;

/// CNP loss probabilities swept by [`cnp_loss_sweep`] (0 = fault-free
/// baseline).
pub const CNP_LOSS_GRID: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// One (scheme, CNP-loss-rate) cell of the chaos sweep.
#[derive(Debug)]
pub struct ChaosCell {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Per-CNP drop probability injected on every link.
    pub cnp_loss: f64,
    /// Finite flows offered.
    pub flows: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Mean flow completion time (ms) over completed flows.
    pub mean_fct_ms: f64,
    /// Worst flow completion time (ms).
    pub max_fct_ms: f64,
    /// Mean per-flow goodput (bits/s) over completed flows.
    pub mean_goodput_bps: f64,
    /// Control packets the fault layer dropped during the run.
    pub ctrl_lost: u64,
}

/// RoCC vs DCQCN on the N-sender 40G dumbbell while CNPs are dropped
/// uniformly at random with each probability in [`CNP_LOSS_GRID`]. Every
/// sender ships one finite flow; the run ends when all complete or the
/// horizon expires. Data packets are never touched, so FCT inflation and
/// incompletions are attributable to the damaged feedback loop alone.
pub fn cnp_loss_sweep(scale: Scale) -> Vec<ChaosCell> {
    let (n, size, horizon) = match scale {
        Scale::Quick => (8usize, 2_000_000u64, SimTime::from_millis(200)),
        Scale::Paper => (16, 10_000_000, SimTime::from_millis(1000)),
    };
    let mut out = Vec::new();
    for scheme in [Scheme::Rocc, Scheme::Dcqcn] {
        for &loss in &CNP_LOSS_GRID {
            let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
            let cfg = SimConfig {
                fault_plan: FaultPlan::default().with_loss(FaultTarget::Cnp, loss),
                ..SimConfig::default()
            };
            let mut sim = micro::sim_with(d.topo, scheme, 7, cfg);
            for (i, &s) in d.senders.iter().enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(i as u64),
                    src: s,
                    dst: d.receiver,
                    size,
                    start: SimTime::ZERO,
                    offered: None,
                });
            }
            sim.run_until_flows_done(horizon);
            let fcts: Vec<f64> = sim
                .trace
                .fcts
                .iter()
                .map(|r| r.fct().as_secs_f64())
                .collect();
            let completed = fcts.len();
            let mean = if completed > 0 {
                fcts.iter().sum::<f64>() / completed as f64
            } else {
                0.0
            };
            let max = fcts.iter().cloned().fold(0.0, f64::max);
            let goodput = if mean > 0.0 {
                fcts.iter().map(|f| size as f64 * 8.0 / f).sum::<f64>() / completed as f64
            } else {
                0.0
            };
            out.push(ChaosCell {
                scheme,
                cnp_loss: loss,
                flows: n,
                completed,
                mean_fct_ms: mean * 1e3,
                max_fct_ms: max * 1e3,
                mean_goodput_bps: goodput,
                ctrl_lost: sim.trace.faults.ctrl_lost,
            });
        }
    }
    out
}

/// Output of [`cnp_blackout`].
#[derive(Debug)]
pub struct BlackoutResult {
    /// RP rate of the surviving flow (bits/s) over the whole run.
    pub rate: Vec<Sample>,
    /// Mean RP rate (Gb/s) over the throttled window just before the
    /// blackout (expected ≈ the 10 Gb/s fair share of 4 flows).
    pub pre_blackout_gbps: f64,
    /// Mean RP rate (Gb/s) over the tail after the blackout began
    /// (expected = 40 Gb/s line rate: fast recovery uninstalled the
    /// limiter with zero CNP help).
    pub post_recovery_gbps: f64,
    /// When the competitors stopped and the CNP blackout began.
    pub blackout_start: SimTime,
    /// CNPs destroyed by the blackout.
    pub cnps_lost: u64,
}

/// Total-CNP-blackout recovery: four RoCC flows share the 40G dumbbell,
/// so flow 0 is held near 10 Gb/s by CNPs. At `blackout_start` flows 1–3
/// stop *and* every CNP on every link is destroyed from then on. No
/// feedback can ever tell flow 0 the bottleneck freed up; only the RP's
/// fast-recovery doubling (Alg. 2) can lift it back to line rate. The
/// paper's claim is that it does, within a handful of 100 µs periods.
pub fn cnp_blackout(scale: Scale) -> BlackoutResult {
    let (blackout_start, horizon) = match scale {
        Scale::Quick => (SimTime::from_millis(8), SimTime::from_millis(16)),
        Scale::Paper => (SimTime::from_millis(20), SimTime::from_millis(40)),
    };
    let d = scenarios::dumbbell(4, BitRate::from_gbps(40));
    let cfg = SimConfig {
        fault_plan: FaultPlan::default().with_loss_window(
            FaultTarget::Cnp,
            1.0,
            blackout_start,
            SimTime::MAX,
        ),
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_cc_rate(FlowId(0));
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: None,
        });
        if i > 0 {
            sim.stop_flow_at(FlowId(i as u64), blackout_start);
        }
    }
    sim.run_until(horizon);
    let rate = std::mem::take(&mut sim.trace.cc_rate_series[0]);
    // Pre: the converged tail of the contended phase. Post: leave a few
    // milliseconds for the queue to drain and recovery to double up.
    let pre_from = SimTime::from_nanos(blackout_start.as_nanos() / 2);
    let pre: Vec<Sample> = rate.iter().filter(|s| s.t < blackout_start).cloned().collect();
    let (pre_mean, _) = tail_stats(&pre, pre_from);
    let post_from =
        SimTime::from_nanos((blackout_start.as_nanos() + horizon.as_nanos()) / 2);
    let (post_mean, _) = tail_stats(&rate, post_from);
    BlackoutResult {
        rate,
        pre_blackout_gbps: pre_mean / 1e9,
        post_recovery_gbps: post_mean / 1e9,
        blackout_start,
        cnps_lost: sim.trace.faults.ctrl_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_cell_is_faultless_and_complete() {
        let cells = cnp_loss_sweep(Scale::Quick);
        let base = cells
            .iter()
            .find(|c| c.scheme == Scheme::Rocc && c.cnp_loss == 0.0)
            .unwrap();
        assert_eq!(base.completed, base.flows);
        assert_eq!(base.ctrl_lost, 0, "no faults may fire at p = 0");
        // Every RoCC cell up to 1% CNP loss still completes all flows.
        for c in cells.iter().filter(|c| c.scheme == Scheme::Rocc) {
            if c.cnp_loss <= 0.01 {
                assert_eq!(
                    c.completed, c.flows,
                    "RoCC lost flows at {}% CNP loss",
                    c.cnp_loss * 100.0
                );
            }
        }
    }

    #[test]
    fn blackout_recovers_to_line_rate() {
        let r = cnp_blackout(Scale::Quick);
        assert!(r.cnps_lost > 0, "blackout must destroy CNPs");
        assert!(
            r.pre_blackout_gbps < 20.0,
            "flow 0 not throttled pre-blackout: {:.1} Gb/s",
            r.pre_blackout_gbps
        );
        assert!(
            r.post_recovery_gbps > 35.0,
            "fast recovery failed to restore line rate: {:.1} Gb/s",
            r.post_recovery_gbps
        );
    }
}
