//! Run instrumentation: queue-depth samplers, flow rates, PFC counters,
//! flow-completion records.
//!
//! Experiments register what they want observed before the run; the engine
//! feeds the trace during the run; afterwards the experiment reads the
//! collected series. All counters are exact (event-driven); samplers are
//! periodic snapshots.

use crate::metrics::Observatory;
use crate::packet::FlowId;
use crate::fastmap::FxHashMap;
use crate::telemetry::{EventMask, SimEvent, Telemetry};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, PortId};

/// One point of a sampled time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample timestamp.
    pub t: SimTime,
    /// Sampled value (bytes for queues, bits/s for rates).
    pub v: f64,
}

/// A flow's completion record.
#[derive(Debug, Clone, Copy)]
pub struct FctRecord {
    /// The flow.
    pub flow: FlowId,
    /// Application bytes transferred.
    pub size: u64,
    /// First-packet send time.
    pub start: SimTime,
    /// Last-byte arrival time at the receiver.
    pub end: SimTime,
}

impl FctRecord {
    /// Flow completion time.
    pub fn fct(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// One PFC pause event.
#[derive(Debug, Clone, Copy)]
pub struct PfcEvent {
    /// When the PAUSE was generated.
    pub t: SimTime,
    /// Switch that generated it.
    pub node: NodeId,
    /// Ingress port whose occupancy crossed the threshold.
    pub port: PortId,
}

/// Counts of packets destroyed by injected faults, per class. Kept separate
/// from congestion [`Trace::drops`] so experiments can attribute loss to the
/// fault plan versus to queue overflow.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Data packets lost to random link loss.
    pub data_lost: u64,
    /// Control packets (ACK/NACK/feedback) lost to random link loss.
    pub ctrl_lost: u64,
    /// Data packets delivered corrupted and discarded at the receiver.
    pub data_corrupted: u64,
    /// Control packets delivered corrupted and discarded at the receiver.
    pub ctrl_corrupted: u64,
    /// Packets of any class destroyed because their link was down (in
    /// flight at the flap instant, or transmitted onto a dead link).
    pub link_down_drops: u64,
    /// Packets of any class discarded because their destination host was
    /// paused or crashed.
    pub host_down_drops: u64,
    /// Packets duplicated in transit (both copies delivered). Not counted
    /// in [`FaultCounters::total`]: duplication destroys nothing.
    pub duplicated: u64,
    /// Packets delivered out of order by an injected reorder fault. Not
    /// counted in [`FaultCounters::total`]: reordering destroys nothing.
    pub reordered: u64,
    /// Engine events (flow starts, CC timers) abandoned because their host
    /// is permanently crashed — down with no restore scheduled — instead of
    /// being re-queued every retry interval until the deadline. These are
    /// events, not packets, so they are excluded from
    /// [`FaultCounters::total`].
    pub abandoned_events: u64,
}

impl FaultCounters {
    /// Total packets *destroyed* by fault injection across all classes
    /// (duplication and reordering perturb delivery without destroying
    /// packets, so they are excluded).
    pub fn total(&self) -> u64 {
        self.data_lost
            + self.ctrl_lost
            + self.data_corrupted
            + self.ctrl_corrupted
            + self.link_down_drops
            + self.host_down_drops
    }
}

/// Everything recorded during one run.
#[derive(Debug, Default)]
pub struct Trace {
    /// Structured telemetry sink: typed event log, counters, histograms.
    /// Fully disabled by default (see [`crate::telemetry`]).
    pub telemetry: Telemetry,
    /// Time-series observatory: periodic queue/CP/flow/PFC samples exported
    /// as JSONL. Fully disabled by default (see [`crate::metrics`]).
    pub observatory: Observatory,
    /// Ports whose egress data-queue depth is sampled.
    watched_queues: Vec<(NodeId, PortId)>,
    /// Index into `watched_queues`/`queue_peak` by (node, port), so the
    /// per-enqueue peak update is O(1) instead of a scan over every
    /// watched queue.
    queue_index: FxHashMap<(NodeId, PortId), usize>,
    /// Sampled queue series, parallel to `watched_queues`.
    pub queue_series: Vec<Vec<Sample>>,
    /// Flows whose goodput (receiver-side delivery rate) is sampled.
    watched_flows: Vec<FlowId>,
    /// Sampled goodput series (bits/s), parallel to `watched_flows`.
    pub flow_rate_series: Vec<Vec<Sample>>,
    /// Receiver-side cumulative delivered bytes per watched flow.
    delivered: FxHashMap<FlowId, u64>,
    delivered_at_last_sample: Vec<u64>,
    /// Ports whose egress throughput is sampled.
    watched_ports: Vec<(NodeId, PortId)>,
    /// Sampled throughput series (bits/s), parallel to `watched_ports`.
    pub port_tput_series: Vec<Vec<Sample>>,
    tx_at_last_sample: Vec<u64>,
    /// Sampling period; `None` disables periodic sampling.
    pub sample_period: Option<SimDuration>,
    /// All PFC pause events.
    pub pfc_events: Vec<PfcEvent>,
    /// Completed flows.
    pub fcts: Vec<FctRecord>,
    /// Total data bytes retransmitted (go-back-N rollbacks).
    pub retx_bytes: u64,
    /// Total data bytes transmitted by senders (including retransmissions).
    pub tx_data_bytes: u64,
    /// Total feedback packets (RoCC CNPs / QCN Fb) emitted by switches.
    pub ctrl_emitted: u64,
    /// Packets dropped at switches by queue overflow (lossy mode tail
    /// drops). Routing failures and injected faults are counted separately
    /// in [`Trace::unroutable_drops`] and [`Trace::faults`].
    pub drops: u64,
    /// Packets discarded at a switch because no route to the destination
    /// existed. Distinct from congestion [`Trace::drops`]: any nonzero value
    /// here indicates a topology/routing bug, not load.
    pub unroutable_drops: u64,
    /// Packets destroyed by injected faults, by class.
    pub faults: FaultCounters,
    /// Peak egress-queue depth observed per watched queue (exact, not
    /// sampled), parallel to `watched_queues`.
    pub queue_peak: Vec<u64>,
    /// Sum of per-sample queue depths for all switch egress ports keyed by
    /// (node, port) — exact time-weighted accounting is done by the caller
    /// via sampling; this map holds cumulative (sum, count) per port.
    pub queue_avg_acc: FxHashMap<(NodeId, PortId), (f64, u64)>,
    /// Ports whose average queue should be accumulated at every sample tick.
    watched_avg_ports: Vec<(NodeId, PortId)>,
    /// Stop accumulating queue averages after this instant (e.g. the end
    /// of a workload's arrival window, so drain phases don't dilute them).
    pub avg_until: Option<SimTime>,
    /// Per-flow sender-side current CC rate samples (bits/s), if watched.
    watched_cc_flows: Vec<FlowId>,
    /// Sampled CC-rate series, parallel to `watched_cc_flows`.
    pub cc_rate_series: Vec<Vec<Sample>>,
}

impl Trace {
    /// New, empty trace with no sampling.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enable periodic sampling with the given period.
    pub fn with_sample_period(mut self, p: SimDuration) -> Self {
        self.sample_period = Some(p);
        self
    }

    /// Watch an egress data queue (sampled series + exact peak).
    pub fn watch_queue(&mut self, node: NodeId, port: PortId) {
        self.queue_index
            .entry((node, port))
            .or_insert(self.watched_queues.len());
        self.watched_queues.push((node, port));
        self.queue_series.push(Vec::new());
        self.queue_peak.push(0);
    }

    /// Watch a flow's receiver-side goodput.
    pub fn watch_flow_rate(&mut self, flow: FlowId) {
        self.watched_flows.push(flow);
        self.flow_rate_series.push(Vec::new());
        self.delivered_at_last_sample.push(0);
    }

    /// Watch an egress port's throughput.
    pub fn watch_port_tput(&mut self, node: NodeId, port: PortId) {
        self.watched_ports.push((node, port));
        self.port_tput_series.push(Vec::new());
        self.tx_at_last_sample.push(0);
    }

    /// Accumulate the long-run average depth of a queue.
    pub fn watch_queue_avg(&mut self, node: NodeId, port: PortId) {
        self.watched_avg_ports.push((node, port));
        self.queue_avg_acc.insert((node, port), (0.0, 0));
    }

    /// Watch a sender flow's instantaneous CC rate.
    pub fn watch_cc_rate(&mut self, flow: FlowId) {
        self.watched_cc_flows.push(flow);
        self.cc_rate_series.push(Vec::new());
    }

    /// Watched queue list (engine-facing).
    pub fn watched_queues(&self) -> &[(NodeId, PortId)] {
        &self.watched_queues
    }

    /// Watched throughput-port list (engine-facing).
    pub fn watched_ports(&self) -> &[(NodeId, PortId)] {
        &self.watched_ports
    }

    /// Watched average-queue port list (engine-facing).
    pub fn watched_avg_ports(&self) -> &[(NodeId, PortId)] {
        &self.watched_avg_ports
    }

    /// Watched goodput flows (engine-facing).
    pub fn watched_flows(&self) -> &[FlowId] {
        &self.watched_flows
    }

    /// Watched CC-rate flows (engine-facing).
    pub fn watched_cc_flows(&self) -> &[FlowId] {
        &self.watched_cc_flows
    }

    /// Record a queue-depth sample for watched queue `idx`.
    pub fn record_queue_sample(&mut self, idx: usize, t: SimTime, bytes: u64) {
        self.queue_series[idx].push(Sample {
            t,
            v: bytes as f64,
        });
    }

    /// Record exact queue peak (called on every enqueue by the engine).
    /// O(1) via the (node, port) index — this runs for every data packet
    /// enqueued at every switch.
    pub fn note_queue_depth(&mut self, node: NodeId, port: PortId, bytes: u64) {
        if let Some(&i) = self.queue_index.get(&(node, port)) {
            if bytes > self.queue_peak[i] {
                self.queue_peak[i] = bytes;
            }
        }
    }

    /// Accumulate an average-queue sample (ignored past [`Trace::avg_until`]).
    pub fn record_queue_avg(&mut self, t: SimTime, node: NodeId, port: PortId, bytes: u64) {
        if let Some(cut) = self.avg_until {
            if t > cut {
                return;
            }
        }
        if let Some(e) = self.queue_avg_acc.get_mut(&(node, port)) {
            e.0 += bytes as f64;
            e.1 += 1;
        }
    }

    /// Long-run average queue depth of a watched port, in bytes.
    pub fn queue_avg(&self, node: NodeId, port: PortId) -> Option<f64> {
        self.queue_avg_acc
            .get(&(node, port))
            .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
    }

    /// Record receiver-side delivery of `bytes` for `flow`.
    pub fn note_delivery(&mut self, flow: FlowId, bytes: u64) {
        *self.delivered.entry(flow).or_insert(0) += bytes;
    }

    /// Take a goodput sample for every watched flow (engine, on sample tick).
    pub fn sample_flow_rates(&mut self, t: SimTime, period: SimDuration) {
        let secs = period.as_secs_f64();
        for (i, f) in self.watched_flows.iter().enumerate() {
            let cur = self.delivered.get(f).copied().unwrap_or(0);
            let delta = cur - self.delivered_at_last_sample[i];
            self.delivered_at_last_sample[i] = cur;
            self.flow_rate_series[i].push(Sample {
                t,
                v: delta as f64 * 8.0 / secs,
            });
        }
    }

    /// Take a throughput sample for watched port `idx` given its cumulative
    /// tx byte counter.
    pub fn sample_port_tput(
        &mut self,
        idx: usize,
        t: SimTime,
        tx_bytes: u64,
        period: SimDuration,
    ) {
        let delta = tx_bytes - self.tx_at_last_sample[idx];
        self.tx_at_last_sample[idx] += delta;
        self.port_tput_series[idx].push(Sample {
            t,
            v: delta as f64 * 8.0 / period.as_secs_f64(),
        });
    }

    /// Record a CC-rate sample for watched flow index `idx`.
    pub fn record_cc_rate(&mut self, idx: usize, t: SimTime, bps: f64) {
        self.cc_rate_series[idx].push(Sample { t, v: bps });
    }

    /// One-branch hot-path guard spanning every event consumer: true when
    /// the telemetry sink *or* the observatory wants events of `class`.
    /// Emission sites call this before constructing a [`SimEvent`].
    #[inline]
    pub fn wants(&self, class: EventMask) -> bool {
        self.telemetry.wants(class) || self.observatory.wants_mask().intersects(class)
    }

    /// Classes CC callbacks should buffer: the union of the telemetry
    /// sink's and the observatory's decision-class interests.
    pub fn cc_mask(&self) -> EventMask {
        self.telemetry.cc_mask().union(self.observatory.cc_mask())
    }

    /// Route one event to every consumer (observatory first, then the
    /// telemetry sink's subscribers/log/metrics). Each consumer applies its
    /// own mask, so publishing an unwanted class is a cheap no-op.
    pub fn publish_event(&mut self, ev: SimEvent) {
        self.observatory.observe(&ev);
        self.telemetry.publish(ev);
    }

    /// Record a PFC pause event.
    pub fn note_pfc(&mut self, t: SimTime, node: NodeId, port: PortId) {
        self.pfc_events.push(PfcEvent { t, node, port });
        if self.wants(EventMask::PFC) {
            self.publish_event(SimEvent::Pfc {
                t,
                node,
                port,
                pause: true,
            });
        }
    }

    /// Record a PFC resume (XON) event. Resumes are not kept in
    /// [`Trace::pfc_events`] (which counts pauses, matching the paper's
    /// PFC metric) but are visible to telemetry and the observatory.
    pub fn note_pfc_resume(&mut self, t: SimTime, node: NodeId, port: PortId) {
        if self.wants(EventMask::PFC) {
            self.publish_event(SimEvent::Pfc {
                t,
                node,
                port,
                pause: false,
            });
        }
    }

    /// Record a completed flow.
    pub fn note_fct(&mut self, rec: FctRecord) {
        self.telemetry.record_fct(rec.fct().as_nanos());
        self.fcts.push(rec);
    }

    /// Total delivered bytes for a flow (receiver side).
    pub fn delivered_bytes(&self, flow: FlowId) -> u64 {
        self.delivered.get(&flow).copied().unwrap_or(0)
    }

    /// Serialize the trace's dynamic state: sampled series, delivery
    /// accounting (sorted by key for determinism), counters, fault
    /// counters, and the telemetry/observatory accumulators. Watch lists,
    /// sample period, and `avg_until` are configuration the restoring run
    /// re-registers; the decode verifies series lengths against them.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::{write_fct, write_pfc_event, write_sample_series};
        write_sample_series(w, &self.queue_series);
        write_sample_series(w, &self.flow_rate_series);
        write_sample_series(w, &self.port_tput_series);
        write_sample_series(w, &self.cc_rate_series);
        let mut delivered: Vec<(FlowId, u64)> =
            self.delivered.iter().map(|(f, b)| (*f, *b)).collect();
        delivered.sort_unstable_by_key(|(f, _)| f.0);
        w.usize(delivered.len());
        for (f, b) in delivered {
            w.u64(f.0);
            w.u64(b);
        }
        w.usize(self.delivered_at_last_sample.len());
        for &b in &self.delivered_at_last_sample {
            w.u64(b);
        }
        w.usize(self.tx_at_last_sample.len());
        for &b in &self.tx_at_last_sample {
            w.u64(b);
        }
        w.usize(self.pfc_events.len());
        for e in &self.pfc_events {
            write_pfc_event(w, e);
        }
        w.usize(self.fcts.len());
        for f in &self.fcts {
            write_fct(w, f);
        }
        w.u64(self.retx_bytes);
        w.u64(self.tx_data_bytes);
        w.u64(self.ctrl_emitted);
        w.u64(self.drops);
        w.u64(self.unroutable_drops);
        let fc = &self.faults;
        for v in [
            fc.data_lost,
            fc.ctrl_lost,
            fc.data_corrupted,
            fc.ctrl_corrupted,
            fc.link_down_drops,
            fc.host_down_drops,
            fc.duplicated,
            fc.reordered,
            fc.abandoned_events,
        ] {
            w.u64(v);
        }
        w.usize(self.queue_peak.len());
        for &p in &self.queue_peak {
            w.u64(p);
        }
        let mut avgs: Vec<((NodeId, PortId), (f64, u64))> =
            self.queue_avg_acc.iter().map(|(k, v)| (*k, *v)).collect();
        avgs.sort_unstable_by_key(|((n, p), _)| (n.0, p.0));
        w.usize(avgs.len());
        for ((n, p), (s, c)) in avgs {
            w.usize(n.0);
            w.usize(p.0);
            w.f64(s);
            w.u64(c);
        }
        self.telemetry.save_state(w);
        self.observatory.save_state(w);
    }

    /// Overwrite the trace's dynamic state from a [`Trace::save_state`]
    /// stream. Fails if the watch registrations of the rebuilt run do not
    /// match the captured series shapes.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::{read_fct, read_pfc_event, read_sample_series, SnapshotError};
        self.queue_series = read_sample_series(r, self.watched_queues.len())?;
        self.flow_rate_series = read_sample_series(r, self.watched_flows.len())?;
        self.port_tput_series = read_sample_series(r, self.watched_ports.len())?;
        self.cc_rate_series = read_sample_series(r, self.watched_cc_flows.len())?;
        let nd = r.len()?;
        self.delivered.clear();
        for _ in 0..nd {
            let f = FlowId(r.u64()?);
            let b = r.u64()?;
            self.delivered.insert(f, b);
        }
        let nls = r.len()?;
        if nls != self.watched_flows.len() {
            return Err(SnapshotError::Malformed("delivered-at-sample count"));
        }
        self.delivered_at_last_sample.clear();
        for _ in 0..nls {
            self.delivered_at_last_sample.push(r.u64()?);
        }
        let ntx = r.len()?;
        if ntx != self.watched_ports.len() {
            return Err(SnapshotError::Malformed("tx-at-sample count"));
        }
        self.tx_at_last_sample.clear();
        for _ in 0..ntx {
            self.tx_at_last_sample.push(r.u64()?);
        }
        let np = r.len()?;
        self.pfc_events.clear();
        for _ in 0..np {
            self.pfc_events.push(read_pfc_event(r)?);
        }
        let nf = r.len()?;
        self.fcts.clear();
        for _ in 0..nf {
            self.fcts.push(read_fct(r)?);
        }
        self.retx_bytes = r.u64()?;
        self.tx_data_bytes = r.u64()?;
        self.ctrl_emitted = r.u64()?;
        self.drops = r.u64()?;
        self.unroutable_drops = r.u64()?;
        self.faults = FaultCounters {
            data_lost: r.u64()?,
            ctrl_lost: r.u64()?,
            data_corrupted: r.u64()?,
            ctrl_corrupted: r.u64()?,
            link_down_drops: r.u64()?,
            host_down_drops: r.u64()?,
            duplicated: r.u64()?,
            reordered: r.u64()?,
            abandoned_events: r.u64()?,
        };
        let npk = r.len()?;
        if npk != self.watched_queues.len() {
            return Err(SnapshotError::Malformed("queue peak count"));
        }
        self.queue_peak.clear();
        for _ in 0..npk {
            self.queue_peak.push(r.u64()?);
        }
        let na = r.len()?;
        self.queue_avg_acc.clear();
        for _ in 0..na {
            let n = NodeId(r.usize()?);
            let p = PortId(r.usize()?);
            let s = r.f64()?;
            let c = r.u64()?;
            self.queue_avg_acc.insert((n, p), (s, c));
        }
        self.telemetry.load_state(r)?;
        self.observatory.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_record_duration() {
        let r = FctRecord {
            flow: FlowId(1),
            size: 1000,
            start: SimTime::from_micros(10),
            end: SimTime::from_micros(110),
        };
        assert_eq!(r.fct(), SimDuration::from_micros(100));
    }

    #[test]
    fn goodput_sampling() {
        let mut tr = Trace::new();
        tr.watch_flow_rate(FlowId(1));
        tr.note_delivery(FlowId(1), 125_000); // 1 Mbit
        tr.sample_flow_rates(SimTime::from_millis(1), SimDuration::from_millis(1));
        assert!((tr.flow_rate_series[0][0].v - 1e9).abs() < 1.0);
        // Next window delivers nothing.
        tr.sample_flow_rates(SimTime::from_millis(2), SimDuration::from_millis(1));
        assert_eq!(tr.flow_rate_series[0][1].v, 0.0);
    }

    #[test]
    fn fault_counters_total() {
        let mut f = FaultCounters::default();
        assert_eq!(f.total(), 0);
        f.data_lost = 3;
        f.ctrl_corrupted = 2;
        f.link_down_drops = 1;
        f.host_down_drops = 4;
        assert_eq!(f.total(), 10);
        // Duplication/reordering perturb but don't destroy — excluded.
        f.duplicated = 7;
        f.reordered = 9;
        assert_eq!(f.total(), 10);
    }

    #[test]
    fn queue_peak_tracking() {
        let mut tr = Trace::new();
        tr.watch_queue(NodeId(3), PortId(1));
        tr.note_queue_depth(NodeId(3), PortId(1), 100);
        tr.note_queue_depth(NodeId(3), PortId(1), 50);
        tr.note_queue_depth(NodeId(9), PortId(1), 999); // unwatched
        assert_eq!(tr.queue_peak[0], 100);
    }

    #[test]
    fn queue_average_accumulation() {
        let mut tr = Trace::new();
        tr.watch_queue_avg(NodeId(0), PortId(0));
        tr.record_queue_avg(SimTime::ZERO, NodeId(0), PortId(0), 100);
        tr.record_queue_avg(SimTime::ZERO, NodeId(0), PortId(0), 300);
        assert_eq!(tr.queue_avg(NodeId(0), PortId(0)), Some(200.0));
        assert_eq!(tr.queue_avg(NodeId(1), PortId(0)), None);
        // Samples past the cutoff are ignored.
        tr.avg_until = Some(SimTime::from_micros(1));
        tr.record_queue_avg(SimTime::from_micros(2), NodeId(0), PortId(0), 900);
        assert_eq!(tr.queue_avg(NodeId(0), PortId(0)), Some(200.0));
    }
}
