//! Artifact-directory handling for run outputs (verdict dumps, metrics
//! JSONL, Perfetto traces, manifests): recursive directory creation and
//! file writes with typed errors instead of a panic deep inside a run.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why an artifact could not be written.
#[derive(Debug)]
pub enum ArtifactError {
    /// The output directory (or a parent) could not be created.
    CreateDir {
        /// The directory that failed.
        path: PathBuf,
        /// The underlying IO error.
        source: io::Error,
    },
    /// The file itself could not be written.
    Write {
        /// The file that failed.
        path: PathBuf,
        /// The underlying IO error.
        source: io::Error,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::CreateDir { path, source } => {
                write!(
                    f,
                    "cannot create artifact directory {}: {source}",
                    path.display()
                )
            }
            ArtifactError::Write { path, source } => {
                write!(f, "cannot write artifact {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::CreateDir { source, .. } | ArtifactError::Write { source, .. } => {
                Some(source)
            }
        }
    }
}

/// Create `dir` (and every missing parent) if it does not exist.
pub fn ensure_dir(dir: impl AsRef<Path>) -> Result<(), ArtifactError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|source| ArtifactError::CreateDir {
        path: dir.to_path_buf(),
        source,
    })
}

/// Write `contents` to `path`, creating the parent directory chain first.
pub fn write_artifact(path: impl AsRef<Path>, contents: &str) -> Result<(), ArtifactError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            ensure_dir(parent)?;
        }
    }
    std::fs::write(path, contents).map_err(|source| ArtifactError::Write {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rocc_artifacts_{}_{name}", std::process::id()))
    }

    #[test]
    fn writes_through_missing_parents() {
        let root = scratch("nested");
        let _ = std::fs::remove_dir_all(&root);
        let path = root.join("a/b/c.json");
        write_artifact(&path, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn create_dir_failure_is_typed() {
        let root = scratch("clobber");
        let _ = std::fs::remove_dir_all(&root);
        // A file where a directory must go forces CreateDir to fail.
        std::fs::write(&root, "not a dir").unwrap();
        let err = ensure_dir(root.join("sub")).unwrap_err();
        assert!(matches!(err, ArtifactError::CreateDir { .. }));
        assert!(err.to_string().contains("cannot create artifact directory"));
        let _ = std::fs::remove_file(&root);
    }
}
