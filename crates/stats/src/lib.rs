//! # rocc-stats — statistics for network experiments
//!
//! Percentiles, means with confidence intervals over repeated runs,
//! flow-size binning (the paper reports FCT per flow-size bin with 95% CIs
//! over 5 repetitions), Jain's fairness index, and the fidelity metrics
//! used by the run observatory (`repro compare`): convergence-time
//! detection on sampled series, quantiles over pre-bucketed histograms,
//! and a normalized histogram distance.

#![warn(missing_docs)]

pub mod digest;

use std::fmt;

/// A typed rejection from a statistics function: the input is malformed in
/// a way that has no meaningful numeric answer. Callers get a value they
/// can report instead of a panic deep inside an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// The sample set is empty.
    Empty,
    /// A sample is NaN, so no total order over the samples exists.
    NanSample,
    /// The requested quantile is NaN or outside `[0, 1]`.
    QuantileOutOfRange {
        /// The offending quantile.
        q: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty sample set"),
            StatsError::NanSample => write!(f, "sample set contains NaN"),
            StatsError::QuantileOutOfRange { q } => {
                write!(f, "quantile {q} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Summary statistics of one sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample set. Returns `None` for empty input.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    Some(Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample (type-7, the common default). Rejects empty input, NaN samples,
/// and out-of-range `q` with a typed [`StatsError`] instead of asserting.
pub fn percentile(xs: &[f64], q: f64) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::QuantileOutOfRange { q });
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanSample);
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Ok(v[lo]);
    }
    let f = pos - lo as f64;
    Ok(v[lo] * (1.0 - f) + v[hi] * f)
}

/// The `q`-quantile of a pre-bucketed distribution: `buckets` is a sequence
/// of `(lower_bound, count)` pairs in ascending bound order (empty buckets
/// may be omitted). Returns the lower bound of the bucket holding the q-th
/// recorded value — the same convention as HDR-style histogram readers, so
/// `rocc-sim`'s telemetry histograms and `repro compare` share one
/// implementation. Rejects empty/zero-count input and out-of-range `q`.
pub fn bucket_quantile(buckets: &[(u64, u64)], q: f64) -> Result<u64, StatsError> {
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::QuantileOutOfRange { q });
    }
    let n: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if n == 0 {
        return Err(StatsError::Empty);
    }
    let rank = ((q * n as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(low, c) in buckets {
        seen += c;
        if seen >= rank {
            return Ok(low);
        }
    }
    // Unreachable: seen reaches n ≥ rank on the last bucket.
    Ok(buckets.last().map(|&(low, _)| low).unwrap_or(0))
}

/// First time after which a sampled series stays within `tol · target` of
/// `target` for every remaining sample (the paper's "convergence time" /
/// settle-time notion on Fig. 8/9 curves). `series` is `(time, value)`
/// pairs in time order. `None` when it never settles; an error for empty
/// input or a NaN target/tolerance.
pub fn convergence_time(
    series: &[(f64, f64)],
    target: f64,
    tol: f64,
) -> Result<Option<f64>, StatsError> {
    if series.is_empty() {
        return Err(StatsError::Empty);
    }
    if target.is_nan() || tol.is_nan() {
        return Err(StatsError::NanSample);
    }
    let band = tol * target.abs();
    let mut candidate: Option<f64> = None;
    for &(t, v) in series {
        if v.is_nan() {
            return Err(StatsError::NanSample);
        }
        if (v - target).abs() <= band {
            candidate.get_or_insert(t);
        } else {
            candidate = None;
        }
    }
    Ok(candidate)
}

/// Total-variation distance between two bucketed distributions, in
/// `[0, 1]`: half the L1 distance between the count-normalized histograms,
/// matching buckets by lower bound. 0 = identical shape, 1 = disjoint
/// support. Symmetric by construction. Rejects distributions with zero
/// total count.
pub fn histogram_distance(a: &[(u64, u64)], b: &[(u64, u64)]) -> Result<f64, StatsError> {
    let na: u64 = a.iter().map(|&(_, c)| c).sum();
    let nb: u64 = b.iter().map(|&(_, c)| c).sum();
    if na == 0 || nb == 0 {
        return Err(StatsError::Empty);
    }
    let mut keys: Vec<u64> = a.iter().chain(b.iter()).map(|&(low, _)| low).collect();
    keys.sort_unstable();
    keys.dedup();
    let mass = |xs: &[(u64, u64)], key: u64, n: u64| -> f64 {
        xs.iter()
            .filter(|&&(low, _)| low == key)
            .map(|&(_, c)| c)
            .sum::<u64>() as f64
            / n as f64
    };
    let l1: f64 = keys
        .iter()
        .map(|&k| (mass(a, k, na) - mass(b, k, nb)).abs())
        .sum();
    Ok((l1 / 2.0).clamp(0.0, 1.0))
}

/// Two-sided Student-t critical values at 95% for small n (the paper runs
/// 5 repetitions → 4 degrees of freedom → t = 2.776).
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// A mean with a 95% confidence half-width over independent repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Mean over repetitions.
    pub mean: f64,
    /// 95% confidence half-width (± this).
    pub ci95: f64,
    /// Number of repetitions.
    pub n: usize,
}

/// Mean ± 95% CI across per-repetition values (Student t, as appropriate
/// for the paper's 5 repetitions).
pub fn mean_ci95(reps: &[f64]) -> Option<MeanCi> {
    if reps.is_empty() {
        return None;
    }
    let n = reps.len();
    let mean = reps.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(MeanCi {
            mean,
            ci95: 0.0,
            n,
        });
    }
    let var = reps.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    Some(MeanCi {
        mean,
        ci95: t_critical_95(n - 1) * se,
        n,
    })
}

/// Assign `size` to the paper-style bin: the first edge ≥ size (values
/// beyond the last edge land in the last bin).
pub fn bin_index(edges: &[u64], size: u64) -> usize {
    for (i, &e) in edges.iter().enumerate() {
        if size <= e {
            return i;
        }
    }
    edges.len() - 1
}

/// Group values by flow-size bin: `(size, value)` pairs → per-bin vectors.
pub fn bin_values(edges: &[u64], items: impl IntoIterator<Item = (u64, f64)>) -> Vec<Vec<f64>> {
    let mut out = vec![Vec::new(); edges.len()];
    for (size, v) in items {
        out[bin_index(edges, size)].push(v);
    }
    out
}

/// Jain's fairness index: (Σx)² / (n·Σx²); 1.0 = perfectly fair.
pub fn jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 == 0.0 {
        return Some(1.0);
    }
    Some(s * s / (xs.len() as f64 * s2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.118).abs() < 1e-3);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Ok(1.0));
        assert_eq!(percentile(&xs, 1.0), Ok(4.0));
        assert_eq!(percentile(&xs, 0.5), Ok(2.5));
        assert_eq!(percentile(&xs, 0.25), Ok(1.75));
    }

    #[test]
    fn p99_on_large_sample() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let p99 = percentile(&xs, 0.99).unwrap();
        assert!((p99 - 990.01).abs() < 0.02);
    }

    #[test]
    fn percentile_rejects_bad_input_with_typed_errors() {
        assert_eq!(percentile(&[], 0.5), Err(StatsError::Empty));
        assert_eq!(
            percentile(&[1.0, f64::NAN], 0.5),
            Err(StatsError::NanSample)
        );
        assert_eq!(
            percentile(&[1.0], 1.5),
            Err(StatsError::QuantileOutOfRange { q: 1.5 })
        );
        assert_eq!(
            percentile(&[1.0], -0.1),
            Err(StatsError::QuantileOutOfRange { q: -0.1 })
        );
        assert!(matches!(
            percentile(&[1.0], f64::NAN),
            Err(StatsError::QuantileOutOfRange { .. })
        ));
    }

    #[test]
    fn bucket_quantile_walks_cumulative_counts() {
        // 10 values at 0, 80 at 100, 10 at 1000.
        let b = [(0u64, 10u64), (100, 80), (1000, 10)];
        assert_eq!(bucket_quantile(&b, 0.05), Ok(0));
        assert_eq!(bucket_quantile(&b, 0.5), Ok(100));
        assert_eq!(bucket_quantile(&b, 0.95), Ok(1000));
        assert_eq!(bucket_quantile(&b, 0.0), Ok(0));
        assert_eq!(bucket_quantile(&b, 1.0), Ok(1000));
        assert_eq!(bucket_quantile(&[], 0.5), Err(StatsError::Empty));
        assert!(matches!(
            bucket_quantile(&b, 2.0),
            Err(StatsError::QuantileOutOfRange { .. })
        ));
    }

    #[test]
    fn convergence_time_on_step_series() {
        // Steps to the target at t=3 and stays: converges at 3.
        let s: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64, if i < 3 { 0.0 } else { 100.0 }))
            .collect();
        assert_eq!(convergence_time(&s, 100.0, 0.05), Ok(Some(3.0)));
        // A late excursion resets the detector.
        let mut osc = s.clone();
        osc.push((10.0, 200.0));
        osc.push((11.0, 100.0));
        assert_eq!(convergence_time(&osc, 100.0, 0.05), Ok(Some(11.0)));
        // Never inside the band.
        assert_eq!(convergence_time(&s, 500.0, 0.01), Ok(None));
        assert_eq!(convergence_time(&[], 1.0, 0.1), Err(StatsError::Empty));
    }

    #[test]
    fn histogram_distance_bounds_and_symmetry() {
        let a = [(0u64, 50u64), (100, 50)];
        let same = [(0u64, 5u64), (100, 5)]; // same shape, different count
        let disjoint = [(1000u64, 7u64)];
        assert_eq!(histogram_distance(&a, &same), Ok(0.0));
        assert_eq!(histogram_distance(&a, &disjoint), Ok(1.0));
        let d1 = histogram_distance(&a, &disjoint).unwrap();
        let d2 = histogram_distance(&disjoint, &a).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(histogram_distance(&a, &[]), Err(StatsError::Empty));
    }

    #[test]
    fn ci_for_five_reps_uses_t4() {
        // Paper setup: 5 repetitions, 95% CI → t = 2.776.
        let r = mean_ci95(&[10.0, 11.0, 9.0, 10.5, 9.5]).unwrap();
        assert_eq!(r.n, 5);
        assert!((r.mean - 10.0).abs() < 1e-12);
        let sd: f64 = 0.625f64.sqrt(); // sample variance 0.625
        let expect = 2.776 * sd / 5f64.sqrt();
        assert!((r.ci95 - expect).abs() < 1e-9);
    }

    #[test]
    fn ci_single_rep_is_zero() {
        let r = mean_ci95(&[3.0]).unwrap();
        assert_eq!(r.ci95, 0.0);
    }

    #[test]
    fn binning_matches_paper_convention() {
        let edges = [10_000u64, 20_000, 30_000];
        assert_eq!(bin_index(&edges, 500), 0);
        assert_eq!(bin_index(&edges, 10_000), 0);
        assert_eq!(bin_index(&edges, 10_001), 1);
        assert_eq!(bin_index(&edges, 25_000), 2);
        assert_eq!(bin_index(&edges, 99_000_000), 2);
    }

    #[test]
    fn bin_values_groups() {
        let edges = [10u64, 20];
        let bins = bin_values(&edges, vec![(5, 1.0), (15, 2.0), (25, 3.0), (8, 4.0)]);
        assert_eq!(bins[0], vec![1.0, 4.0]);
        assert_eq!(bins[1], vec![2.0, 3.0]);
    }

    #[test]
    fn jain_index() {
        assert_eq!(jain_fairness(&[1.0, 1.0, 1.0]), Some(1.0));
        let unfair = jain_fairness(&[1.0, 0.0, 0.0]).unwrap();
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_fairness(&[]).is_none());
    }
}
