//! Engine performance benchmark: events/sec on a chaos-grade incast
//! (profiler off *and* on, so profiler overhead is measured every run),
//! end-to-end wall-clock on the multi-seed incast sweep (serial and
//! parallel), and a per-phase breakdown from the phase profiler — emitted
//! as `BENCH_sim.json` (schema `rocc-bench/v2`) plus a
//! `rocc-perf-profile/v1` artifact, and gated by the multi-metric ratchet
//! in [`rocc_bench::ratchet`].
//!
//! Usage:
//!
//! ```text
//! perf bench <out_dir> [<baseline>]
//!                               — run benchmarks; write
//!                                 <out_dir>/BENCH_sim.json and
//!                                 <out_dir>/perf_profile.json.
//!                                 Speedups are computed against the
//!                                 recorded previous ratchet entry
//!                                 (default: ./BENCH_sim.json), not a
//!                                 hardcoded constant.
//! perf check <fresh> <base>     — exit nonzero if <fresh> regressed
//!                                 past any ratchet tolerance vs <base>
//! perf ratchet <fresh> <base> [<out>]
//!                               — fold <fresh> into the ratchet,
//!                                 writing the advanced baseline to
//!                                 <out> (default: <base> in place)
//! ```
//!
//! The engine's scheduler backend follows the kernel's `ROCC_SCHEDULER`
//! env override (`heap` | `wheel`, default wheel) and is recorded in the
//! document, so CI can bench both backends and ratchet only the wheel.

use rocc_bench::ratchet;
use rocc_experiments::micro::sim_with;
use rocc_experiments::parallel::{map_cells, worker_threads, ExecMode};
use rocc_experiments::schemes::Scheme;
use rocc_sim::prelude::*;

/// Dumbbell: `n` senders incast one receiver through a single switch.
fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// One incast run: `senders` flows of `size` bytes under `scheme`,
/// optionally with the phase profiler live. Returns the finished sim.
fn incast_run(scheme: Scheme, senders: usize, size: u64, seed: u64, profile: bool) -> Sim {
    let (topo, srcs, dst) = dumbbell(senders, 40);
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut sim = sim_with(topo, scheme, 4, cfg);
    if profile {
        sim.enable_profiler();
    }
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(400)).assert_complete();
    sim
}

/// One incast cell for the sweep: (events processed, wall seconds).
fn incast_cell(scheme: Scheme, senders: usize, size: u64, seed: u64) -> (u64, f64) {
    let sim = incast_run(scheme, senders, size, seed, false);
    let p = sim.profile();
    (p.events_processed, p.wall_seconds)
}

/// Repetitions of the off/on engine pair. Single-run wall noise on a
/// shared host is several percent — larger than the overhead being
/// measured — so the estimator needs an ensemble to average over.
const ENGINE_REPS: usize = 25;
/// Walls kept per configuration after trimming the slowest runs.
const ENGINE_KEEP: usize = 16;

/// Single-thread engine throughput: the large RoCC incast with the
/// profiler off and on, reps *interleaved* so thermal/scheduler drift on
/// the host hits both configurations equally. Profiler overhead is
/// estimated by a trimmed-sum ratio: sort each configuration's walls,
/// drop the slowest `ENGINE_REPS - ENGINE_KEEP` (scheduler-noise spikes
/// are one-sided), and compare the sums of the remainder — far more
/// stable than any single-pair or best-vs-best comparison when the true
/// overhead is a couple of percent. Returns the best-wall sim of each
/// configuration plus the overhead estimate: `(off, on, overhead_pct)`.
fn bench_engine() -> (Sim, Sim, f64) {
    let mut best_off: Option<Sim> = None;
    let mut best_on: Option<Sim> = None;
    let mut walls_off = Vec::new();
    let mut walls_on = Vec::new();
    let keep_best = |slot: &mut Option<Sim>, sim: Sim| {
        if slot
            .as_ref()
            .is_none_or(|b| sim.profile().wall_seconds < b.profile().wall_seconds)
        {
            *slot = Some(sim);
        }
    };
    for rep in 0..ENGINE_REPS as u64 {
        // Alternate which configuration runs first so any slow drift in
        // host load cancels instead of biasing one side.
        let (a, b) = (rep % 2 == 0, rep % 2 == 1);
        let first = incast_run(Scheme::Rocc, 12, 4_000_000, 100 + rep, a);
        let second = incast_run(Scheme::Rocc, 12, 4_000_000, 100 + rep, b);
        let (off, on) = if a { (second, first) } else { (first, second) };
        walls_off.push(off.profile().wall_seconds);
        walls_on.push(on.profile().wall_seconds);
        keep_best(&mut best_off, off);
        keep_best(&mut best_on, on);
    }
    let trimmed_sum = |walls: &mut Vec<f64>| {
        walls.sort_by(|a, b| a.total_cmp(b));
        walls.iter().take(ENGINE_KEEP).sum::<f64>()
    };
    let sum_off = trimmed_sum(&mut walls_off);
    let sum_on = trimmed_sum(&mut walls_on);
    let overhead_pct = 100.0 * (sum_on / sum_off - 1.0);
    (best_off.unwrap(), best_on.unwrap(), overhead_pct)
}

/// The multi-seed incast sweep grid: 3 schemes × 5 seeds.
fn sweep_cells() -> Vec<(Scheme, u64)> {
    let mut cells = Vec::new();
    for scheme in Scheme::large_scale_set() {
        for seed in 0..5u64 {
            cells.push((scheme, 1000 + seed));
        }
    }
    cells
}

/// Run the sweep in the given mode, returning (wall seconds, total
/// events processed across cells — identical in both modes by
/// construction, asserted by the caller).
fn run_sweep(mode: ExecMode) -> (f64, u64) {
    let t0 = std::time::Instant::now();
    let events = map_cells(mode, sweep_cells(), |(scheme, seed)| {
        incast_cell(scheme, 6, 1_000_000, seed).0
    });
    (t0.elapsed().as_secs_f64(), events.iter().sum())
}

/// Render the per-phase breakdown block for the v2 document.
fn phases_json(sim: &Sim) -> String {
    let rows: Vec<String> = sim
        .kernel
        .prof
        .phase_shares(sim.profiled_pushes())
        .iter()
        .map(|(name, share, count)| {
            format!("{{\"phase\":\"{name}\",\"share\":{share:.6},\"count\":{count}}}")
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Baseline figures extracted from the previous ratchet entry: engine
/// throughput and the best sweep wall. `None` fields mean the baseline
/// document is missing or predates the key — speedups then report 1.0.
struct Baseline {
    events_per_sec: Option<f64>,
    sweep_wall_seconds: Option<f64>,
}

/// Read the committed baseline document (the previous ratchet entry).
/// A missing file is not an error — first runs and fresh checkouts just
/// get neutral speedups.
fn load_baseline(path: &str) -> Baseline {
    let Ok(doc) = std::fs::read_to_string(path) else {
        eprintln!("note: no baseline at {path}; speedups will read 1.00x");
        return Baseline {
            events_per_sec: None,
            sweep_wall_seconds: None,
        };
    };
    let serial = ratchet::json_number(&doc, "serial_wall_seconds");
    let parallel = ratchet::json_number(&doc, "parallel_wall_seconds");
    let sweep = match (serial, parallel) {
        (Some(s), Some(p)) => Some(s.min(p)),
        (s, p) => s.or(p),
    };
    Baseline {
        events_per_sec: ratchet::json_number(&doc, "events_per_sec"),
        sweep_wall_seconds: sweep,
    }
}

fn cmd_bench(out_dir: &str, baseline_path: &str) {
    let base = load_baseline(baseline_path);
    // Engine throughput, profiler off (the production configuration) and
    // on (measures overhead, produces the per-phase attribution +
    // perf-profile artifact), reps interleaved.
    let (off, on, overhead_pct) = bench_engine();
    let scheduler = off.kernel.scheduler_backend().name();
    let p_off = off.profile();
    let eps = p_off.events_per_sec();
    let p_on = on.profile();
    let eps_on = p_on.events_per_sec();

    let cells = sweep_cells().len();
    let (sweep_serial, ev_serial) = run_sweep(ExecMode::Serial);
    let (sweep_parallel, ev_parallel) = run_sweep(ExecMode::Parallel);
    assert_eq!(
        ev_serial, ev_parallel,
        "parallel sweep processed a different event count — determinism broken"
    );
    let threads = worker_threads(ExecMode::Parallel, cells);
    let sweep_best = sweep_serial.min(sweep_parallel);
    // Speedups are relative to the previous ratchet entry, so they track
    // the most recent accepted baseline rather than a frozen constant.
    let engine_speedup = ratchet::speedup(Some(eps), base.events_per_sec);
    let sweep_speedup = ratchet::speedup(base.sweep_wall_seconds, Some(sweep_best));
    let base_eps = base.events_per_sec.unwrap_or(eps);
    let base_sweep = base.sweep_wall_seconds.unwrap_or(sweep_best);
    println!(
        "engine [{scheduler}]: {} events in {:.3}s = {eps:.0} events/sec ({engine_speedup:.2}x vs baseline)",
        p_off.events_processed, p_off.wall_seconds
    );
    println!("engine (profiled): {eps_on:.0} events/sec — profiler overhead {overhead_pct:.2}%");
    println!("sweep (serial):   {sweep_serial:.3}s over {ev_serial} events");
    println!("sweep (parallel): {sweep_parallel:.3}s on {threads} thread(s)");
    println!("sweep speedup vs baseline: {sweep_speedup:.2}x");
    let json = format!(
        "{{\"schema\":\"rocc-bench/v2\",\
         \"engine\":{{\"scheduler\":\"{scheduler}\",\"engine_events\":{},\"engine_wall_seconds\":{},\
         \"events_per_sec\":{eps},\
         \"baseline_events_per_sec\":{base_eps},\"engine_speedup\":{engine_speedup}}},\
         \"profiler\":{{\"profiled_events_per_sec\":{eps_on},\"profiler_overhead_pct\":{overhead_pct},\
         \"phases\":{}}},\
         \"sweep\":{{\"serial_wall_seconds\":{sweep_serial},\"parallel_wall_seconds\":{sweep_parallel},\
         \"threads\":{threads},\"events_total\":{ev_serial},\
         \"baseline_sweep_wall_seconds\":{base_sweep},\"sweep_speedup\":{sweep_speedup}}}}}",
        p_off.events_processed,
        p_off.wall_seconds,
        phases_json(&on)
    );
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let path = format!("{out_dir}/BENCH_sim.json");
    std::fs::write(&path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");
    let profile_path = format!("{out_dir}/perf_profile.json");
    std::fs::write(&profile_path, on.perf_profile_json()).expect("write perf_profile.json");
    println!("wrote {profile_path}");
}

fn cmd_check(fresh_path: &str, base_path: &str) {
    let fresh = std::fs::read_to_string(fresh_path).expect("read fresh BENCH_sim.json");
    let base = std::fs::read_to_string(base_path).expect("read base BENCH_sim.json");
    let verdicts = ratchet::check(&fresh, &base);
    let mut failed = false;
    for v in &verdicts {
        if v.failed() {
            failed = true;
            eprintln!("FAIL {}", v.line());
        } else {
            println!("  ok {}", v.line());
        }
    }
    if failed {
        eprintln!("perf check FAILED against the ratchet");
        std::process::exit(1);
    }
    println!("perf check passed ({} metrics)", verdicts.len());
}

fn cmd_ratchet(fresh_path: &str, base_path: &str, out_path: &str) {
    let fresh = std::fs::read_to_string(fresh_path).expect("read fresh BENCH_sim.json");
    let base = std::fs::read_to_string(base_path).expect("read base BENCH_sim.json");
    let (next, log) = ratchet::advance(&fresh, &base);
    for line in &log {
        println!("  {line}");
    }
    std::fs::write(out_path, next).expect("write advanced ratchet");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(|s| s.as_str()) {
        Some("bench") => {
            let out_dir = args.get(2).map(|s| s.as_str()).unwrap_or("bench_out");
            let baseline = args.get(3).map(|s| s.as_str()).unwrap_or("BENCH_sim.json");
            cmd_bench(out_dir, baseline);
        }
        Some("check") => {
            let (Some(fresh), Some(base)) = (args.get(2), args.get(3)) else {
                eprintln!("usage: perf check <fresh> <base>");
                std::process::exit(2);
            };
            cmd_check(fresh, base);
        }
        Some("ratchet") => {
            let (Some(fresh), Some(base)) = (args.get(2), args.get(3)) else {
                eprintln!("usage: perf ratchet <fresh> <base> [<out>]");
                std::process::exit(2);
            };
            let out = args.get(4).unwrap_or(base).clone();
            cmd_ratchet(fresh, base, &out);
        }
        _ => {
            eprintln!(
                "usage: perf bench <out_dir> [<baseline>] | perf check <fresh> <base> | perf ratchet <fresh> <base> [<out>]"
            );
            std::process::exit(2);
        }
    }
}
