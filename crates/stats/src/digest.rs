//! The workspace's one FNV-1a-64 implementation.
//!
//! Every digest in the reproduction — the `rocc-snapshot/v1` trailer,
//! the observatory's manifest/golden digests, ECMP flow hashing, and the
//! per-component state digests of the divergence observatory — speaks
//! the same 64-bit FNV-1a so artifacts stay comparable across tools and
//! the constant folding lives in exactly one place. The helper sits in
//! `rocc-stats` because that crate is the dependency root every other
//! crate can reach (`rocc-core` depends on `rocc-sim`, so the helper
//! cannot live in `rocc-core` itself; `rocc-core` re-exports this module
//! as its public home).
//!
//! Reference: FNV-1a with the standard 64-bit offset basis and prime.
//! The digest of the empty input is the offset basis itself — pinned by
//! a unit test because three previously hand-rolled loops (snapshot
//! trailer, observatory digest, golden fingerprints) were deduplicated
//! into this helper and must keep byte-identical output.

/// FNV-1a 64-bit offset basis (digest of the empty input).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a-64: feed byte slices incrementally, read the digest
/// at any point. `Fnv64::default()` starts at the offset basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Absorb `bytes`.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb one `u64` in little-endian byte order (the word codecs'
    /// native encoding).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a-64 over `bytes`.
#[inline]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// FNV-1a-64 digest rendered as 16 lowercase hex digits — the exchange
/// format used by run manifests, golden documents, and digest ledgers.
pub fn hex_digest(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv1a_64(b""), FNV_OFFSET);
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"rocc-digest-ledger/v1";
        let mut h = Fnv64::new();
        h.write(&data[..7]);
        h.write(&data[7..]);
        assert_eq!(h.finish(), fnv1a_64(data));
    }

    #[test]
    fn known_vectors() {
        // Classic FNV-1a-64 test vectors.
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn write_u64_is_le_bytes() {
        let mut a = Fnv64::new();
        a.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), fnv1a_64(&0x0123_4567_89ab_cdefu64.to_le_bytes()));
    }

    #[test]
    fn hex_digest_is_16_lowercase_digits() {
        let d = hex_digest(b"hello");
        assert_eq!(d.len(), 16);
        assert_eq!(d, format!("{:016x}", fnv1a_64(b"hello")));
    }
}
