//! Deterministic mid-run snapshot/restore: the `rocc-snapshot/v1` format.
//!
//! A snapshot captures the complete *dynamic* state of a [`crate::engine::Sim`]
//! — scheduler heap, packet slab, switch queues and PFC state, host
//! send/recv and RP state, CP fair-rate calculators, fault cursors, budget
//! counters, and telemetry/observatory/sanitizer accumulators — such that
//! restoring it into a freshly built, identically configured `Sim` resumes
//! the run with **byte-identical** verdicts, metrics JSONL, and aggregates
//! versus an uninterrupted run (see DESIGN.md §3i).
//!
//! The caller-rebuild protocol: construction-time state (topology, config,
//! CC factories, registered flows, trace watch lists, enabled
//! telemetry/observatory/sanitizer features) is **not** serialized. The
//! restoring process rebuilds the `Sim` exactly as the original run did —
//! same constructor arguments, same `add_flow` calls, same watch/enable
//! calls — and then [`crate::engine::Sim::restore`] overwrites every
//! dynamic field. Mismatched construction is detected via the seed and a
//! seed-zeroed FNV-1a config digest in the header, plus structural checks
//! (node counts, watch-list lengths) during decode.
//!
//! Wire format: a 16-byte magic (`rocc-snapshot/v1`), a fixed header
//! (seed, config digest, sim time, event count), a length-prefixed body of
//! little-endian primitives, and a trailing FNV-1a-64 digest over
//! everything before it. Corruption of any byte is caught by the trailer
//! before any state is applied.

use crate::cc::FeedbackEvent;
use crate::config::SimConfig;
use crate::engine::Event;
use crate::fault::FaultEvent;
use crate::packet::{CpId, FlowId, IntHop, IntStack, Packet, PacketKind};
use crate::slab::PacketRef;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, PortId};
use crate::trace::{FctRecord, PfcEvent, Sample};
use crate::units::BitRate;
use std::fmt;

/// Leading magic of every snapshot: format name + version in one token.
pub const SNAPSHOT_MAGIC: &[u8; 16] = b"rocc-snapshot/v1";

/// Byte length of the fixed header (magic + seed + config digest + now +
/// events + body length).
pub const HEADER_LEN: usize = 16 + 8 * 5;

/// Why a snapshot failed to load. Every variant is recoverable by falling
/// back to a fresh cell run — corrupt or stale snapshots must never poison
/// a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The leading magic is not `rocc-snapshot/v1` (wrong file, wrong
    /// version, or garbage).
    BadMagic,
    /// The byte stream ended before the declared structure did.
    Truncated,
    /// The trailing FNV-1a digest does not match the content (bit rot,
    /// torn write).
    DigestMismatch {
        /// Digest recomputed over the content.
        computed: u64,
        /// Digest stored in the trailer.
        stored: u64,
    },
    /// The snapshot was taken under a different seed or configuration than
    /// the `Sim` it is being restored into.
    ConfigMismatch {
        /// What the restoring `Sim` expects (seed, config digest).
        expected: (u64, u64),
        /// What the snapshot header carries.
        found: (u64, u64),
    },
    /// Structurally invalid content (bad enum tag, count mismatch against
    /// the rebuilt `Sim`). The static string names the decode site.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a rocc-snapshot/v1 file"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::DigestMismatch { computed, stored } => write!(
                f,
                "snapshot digest mismatch: computed {computed:016x}, stored {stored:016x}"
            ),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot config mismatch: expected seed {} / config {:016x}, found seed {} / config {:016x}",
                expected.0, expected.1, found.0, found.1
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit digest (the workspace's artifact-digest convention,
/// shared via `rocc_stats::digest` — see `rocc_core::digest`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    rocc_stats::digest::fnv1a_64(bytes)
}

/// Seed-independent configuration digest: FNV-1a over the `Debug` render
/// of the config with its seed zeroed, so one digest covers a whole seed
/// sweep of the same cell configuration.
pub fn config_digest(config: &SimConfig) -> u64 {
    let mut c = config.clone();
    c.seed = 0;
    fnv1a(format!("{c:?}").as_bytes())
}

/// Parsed snapshot header, returned by [`inspect`] without touching the
/// body (used by `repro snapshot inspect` and the supervisor's staleness
/// checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// RNG seed of the captured run.
    pub seed: u64,
    /// Seed-zeroed FNV-1a digest of the captured run's `SimConfig`.
    pub config_digest: u64,
    /// Simulated time at the capture instant, nanoseconds.
    pub now_ns: u64,
    /// Events processed at the capture instant.
    pub events_processed: u64,
    /// Body length in bytes (checkpoint size accounting).
    pub body_len: u64,
    /// Total file length in bytes.
    pub total_len: u64,
}

/// Validate magic, structure, and trailing digest, and return the header.
/// Reads the whole buffer (for the digest) but decodes none of the body.
pub fn inspect(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(if bytes.len() >= 16 && &bytes[..16] != SNAPSHOT_MAGIC {
            SnapshotError::BadMagic
        } else {
            SnapshotError::Truncated
        });
    }
    if &bytes[..16] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let word = |i: usize| {
        let o = 16 + i * 8;
        u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap())
    };
    let (seed, config, now_ns, events, body_len) =
        (word(0), word(1), word(2), word(3), word(4));
    let expect_total = HEADER_LEN as u64 + body_len + 8;
    if bytes.len() as u64 != expect_total {
        return Err(SnapshotError::Truncated);
    }
    let content = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let computed = fnv1a(content);
    if computed != stored {
        return Err(SnapshotError::DigestMismatch { computed, stored });
    }
    Ok(SnapshotInfo {
        seed,
        config_digest: config,
        now_ns,
        events_processed: events,
        body_len,
        total_len: bytes.len() as u64,
    })
}

// ---------------------------------------------------------------------------
// Primitive writer/reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink for snapshot bodies.
pub(crate) struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub(crate) fn new() -> Self {
        SnapWriter { buf: Vec::with_capacity(4096) }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn words(&mut self, w: &[u64]) {
        self.u64(w.len() as u64);
        for &x in w {
            self.u64(x);
        }
    }

    pub(crate) fn time(&mut self, t: SimTime) {
        self.u64(t.as_nanos());
    }

    pub(crate) fn dur(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }

    pub(crate) fn rate(&mut self, r: BitRate) {
        self.u64(r.as_bps());
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a snapshot body.
pub(crate) struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed("usize"))
    }

    /// Length prefix with a sanity ceiling: a corrupt length must fail
    /// fast, not attempt a multi-terabyte allocation.
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos).max(1 << 20) {
            return Err(SnapshotError::Malformed("length prefix"));
        }
        Ok(n)
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Malformed("option tag")),
        }
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed("utf8 string"))
    }

    pub(crate) fn words(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    pub(crate) fn time(&mut self) -> Result<SimTime, SnapshotError> {
        Ok(SimTime::from_nanos(self.u64()?))
    }

    pub(crate) fn dur(&mut self) -> Result<SimDuration, SnapshotError> {
        Ok(SimDuration::from_nanos(self.u64()?))
    }

    pub(crate) fn rate(&mut self) -> Result<BitRate, SnapshotError> {
        Ok(BitRate::from_bps(self.u64()?))
    }

    /// True once every body byte has been consumed (restore asserts this:
    /// trailing garbage means the decode drifted from the encode).
    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Shared codecs for crate types
// ---------------------------------------------------------------------------

pub(crate) fn write_cp(w: &mut SnapWriter, cp: CpId) {
    w.usize(cp.node.0);
    w.usize(cp.port.0);
}

pub(crate) fn read_cp(r: &mut SnapReader<'_>) -> Result<CpId, SnapshotError> {
    Ok(CpId {
        node: NodeId(r.usize()?),
        port: PortId(r.usize()?),
    })
}

pub(crate) fn write_opt_cp(w: &mut SnapWriter, cp: Option<CpId>) {
    match cp {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            write_cp(w, c);
        }
    }
}

pub(crate) fn read_opt_cp(r: &mut SnapReader<'_>) -> Result<Option<CpId>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_cp(r)?)),
        _ => Err(SnapshotError::Malformed("option<cp> tag")),
    }
}

fn write_int_stack(w: &mut SnapWriter, s: &IntStack) {
    let hops = s.hops();
    w.u8(hops.len() as u8);
    for h in hops {
        w.u64(h.qlen_bytes);
        w.u64(h.tx_bytes);
        w.u64(h.ts_ns);
        w.rate(h.rate);
    }
}

fn read_int_stack(r: &mut SnapReader<'_>) -> Result<IntStack, SnapshotError> {
    let n = r.u8()? as usize;
    if n > crate::packet::MAX_INT_HOPS {
        return Err(SnapshotError::Malformed("int stack length"));
    }
    let mut s = IntStack::new();
    for _ in 0..n {
        s.push(IntHop {
            qlen_bytes: r.u64()?,
            tx_bytes: r.u64()?,
            ts_ns: r.u64()?,
            rate: r.rate()?,
        });
    }
    Ok(s)
}

pub(crate) fn write_packet(w: &mut SnapWriter, p: &Packet) {
    w.u64(p.flow.0);
    w.usize(p.src.0);
    w.usize(p.dst.0);
    match p.kind {
        PacketKind::Data { seq, payload, last } => {
            w.u8(0);
            w.u64(seq);
            w.u64(payload);
            w.bool(last);
        }
        PacketKind::Ack {
            cum_seq,
            ecn_echo,
            data_tx_time,
            ref int,
        } => {
            w.u8(1);
            w.u64(cum_seq);
            w.bool(ecn_echo);
            w.time(data_tx_time);
            write_int_stack(w, int);
        }
        PacketKind::Nack { expected_seq } => {
            w.u8(2);
            w.u64(expected_seq);
        }
        PacketKind::RoccCnp {
            fair_rate_units,
            cp,
        } => {
            w.u8(3);
            w.u32(fair_rate_units);
            write_cp(w, cp);
        }
        PacketKind::RoccQueueReport {
            q_cur_units,
            f_max_units,
            cp,
        } => {
            w.u8(4);
            w.u32(q_cur_units);
            w.u32(f_max_units);
            write_cp(w, cp);
        }
        PacketKind::DcqcnCnp => w.u8(5),
        PacketKind::QcnFb { fb, cp } => {
            w.u8(6);
            w.u8(fb);
            write_cp(w, cp);
        }
        PacketKind::PfcPause => w.u8(7),
        PacketKind::PfcResume => w.u8(8),
    }
    w.bool(p.ecn);
    write_int_stack(w, &p.int);
    w.time(p.sent_at);
}

pub(crate) fn read_packet(r: &mut SnapReader<'_>) -> Result<Packet, SnapshotError> {
    let flow = FlowId(r.u64()?);
    let src = NodeId(r.usize()?);
    let dst = NodeId(r.usize()?);
    let kind = match r.u8()? {
        0 => PacketKind::Data {
            seq: r.u64()?,
            payload: r.u64()?,
            last: r.bool()?,
        },
        1 => PacketKind::Ack {
            cum_seq: r.u64()?,
            ecn_echo: r.bool()?,
            data_tx_time: r.time()?,
            int: read_int_stack(r)?,
        },
        2 => PacketKind::Nack {
            expected_seq: r.u64()?,
        },
        3 => PacketKind::RoccCnp {
            fair_rate_units: r.u32()?,
            cp: read_cp(r)?,
        },
        4 => PacketKind::RoccQueueReport {
            q_cur_units: r.u32()?,
            f_max_units: r.u32()?,
            cp: read_cp(r)?,
        },
        5 => PacketKind::DcqcnCnp,
        6 => PacketKind::QcnFb {
            fb: r.u8()?,
            cp: read_cp(r)?,
        },
        7 => PacketKind::PfcPause,
        8 => PacketKind::PfcResume,
        _ => return Err(SnapshotError::Malformed("packet kind tag")),
    };
    Ok(Packet {
        flow,
        src,
        dst,
        kind,
        ecn: r.bool()?,
        int: read_int_stack(r)?,
        sent_at: r.time()?,
    })
}

fn write_feedback(w: &mut SnapWriter, fb: &FeedbackEvent) {
    match *fb {
        FeedbackEvent::RoccCnp {
            fair_rate_units,
            cp,
        } => {
            w.u8(0);
            w.u32(fair_rate_units);
            write_cp(w, cp);
        }
        FeedbackEvent::RoccQueueReport {
            q_cur_units,
            f_max_units,
            cp,
        } => {
            w.u8(1);
            w.u32(q_cur_units);
            w.u32(f_max_units);
            write_cp(w, cp);
        }
        FeedbackEvent::DcqcnCnp => w.u8(2),
        FeedbackEvent::QcnFb { fb, cp } => {
            w.u8(3);
            w.u8(fb);
            write_cp(w, cp);
        }
    }
}

fn read_feedback(r: &mut SnapReader<'_>) -> Result<FeedbackEvent, SnapshotError> {
    Ok(match r.u8()? {
        0 => FeedbackEvent::RoccCnp {
            fair_rate_units: r.u32()?,
            cp: read_cp(r)?,
        },
        1 => FeedbackEvent::RoccQueueReport {
            q_cur_units: r.u32()?,
            f_max_units: r.u32()?,
            cp: read_cp(r)?,
        },
        2 => FeedbackEvent::DcqcnCnp,
        3 => FeedbackEvent::QcnFb {
            fb: r.u8()?,
            cp: read_cp(r)?,
        },
        _ => return Err(SnapshotError::Malformed("feedback tag")),
    })
}

pub(crate) fn write_fault_event(w: &mut SnapWriter, fe: &FaultEvent) {
    match *fe {
        FaultEvent::LinkDown(l) => {
            w.u8(0);
            w.usize(l.0);
        }
        FaultEvent::LinkUp(l) => {
            w.u8(1);
            w.usize(l.0);
        }
        FaultEvent::HostPause(n) => {
            w.u8(2);
            w.usize(n.0);
        }
        FaultEvent::HostCrash(n) => {
            w.u8(3);
            w.usize(n.0);
        }
        FaultEvent::HostRestore(n) => {
            w.u8(4);
            w.usize(n.0);
        }
    }
}

pub(crate) fn read_fault_event(r: &mut SnapReader<'_>) -> Result<FaultEvent, SnapshotError> {
    Ok(match r.u8()? {
        0 => FaultEvent::LinkDown(LinkId(r.usize()?)),
        1 => FaultEvent::LinkUp(LinkId(r.usize()?)),
        2 => FaultEvent::HostPause(NodeId(r.usize()?)),
        3 => FaultEvent::HostCrash(NodeId(r.usize()?)),
        4 => FaultEvent::HostRestore(NodeId(r.usize()?)),
        _ => return Err(SnapshotError::Malformed("fault event tag")),
    })
}

pub(crate) fn write_event(w: &mut SnapWriter, ev: &Event) {
    match ev {
        Event::Arrive { link, pr } => {
            w.u8(0);
            w.usize(link.0);
            w.u32(pr.index());
        }
        Event::SwitchTxDone { node, port } => {
            w.u8(1);
            w.usize(node.0);
            w.usize(port.0);
        }
        Event::HostTxDone { node } => {
            w.u8(2);
            w.usize(node.0);
        }
        Event::HostWake { node } => {
            w.u8(3);
            w.usize(node.0);
        }
        Event::CpTimer { node, port } => {
            w.u8(4);
            w.usize(node.0);
            w.usize(port.0);
        }
        Event::HostCcTimer {
            node,
            flow,
            token,
            gen,
        } => {
            w.u8(5);
            w.usize(node.0);
            w.u64(flow.0);
            w.u8(*token);
            w.u64(*gen);
        }
        Event::Feedback { node, flow, fb } => {
            w.u8(6);
            w.usize(node.0);
            w.u64(flow.0);
            write_feedback(w, fb);
        }
        Event::FlowStart { idx } => {
            w.u8(7);
            w.usize(*idx);
        }
        Event::FlowStop { flow } => {
            w.u8(8);
            w.u64(flow.0);
        }
        Event::Sample => w.u8(9),
        Event::Fault(fe) => {
            w.u8(10);
            write_fault_event(w, fe);
        }
    }
}

pub(crate) fn read_event(r: &mut SnapReader<'_>) -> Result<Event, SnapshotError> {
    Ok(match r.u8()? {
        0 => Event::Arrive {
            link: LinkId(r.usize()?),
            pr: PacketRef::from_index(r.u32()?),
        },
        1 => Event::SwitchTxDone {
            node: NodeId(r.usize()?),
            port: PortId(r.usize()?),
        },
        2 => Event::HostTxDone {
            node: NodeId(r.usize()?),
        },
        3 => Event::HostWake {
            node: NodeId(r.usize()?),
        },
        4 => Event::CpTimer {
            node: NodeId(r.usize()?),
            port: PortId(r.usize()?),
        },
        5 => Event::HostCcTimer {
            node: NodeId(r.usize()?),
            flow: FlowId(r.u64()?),
            token: r.u8()?,
            gen: r.u64()?,
        },
        6 => Event::Feedback {
            node: NodeId(r.usize()?),
            flow: FlowId(r.u64()?),
            fb: read_feedback(r)?,
        },
        7 => Event::FlowStart { idx: r.usize()? },
        8 => Event::FlowStop { flow: FlowId(r.u64()?) },
        9 => Event::Sample,
        10 => Event::Fault(read_fault_event(r)?),
        _ => return Err(SnapshotError::Malformed("event tag")),
    })
}

pub(crate) fn write_sample(w: &mut SnapWriter, s: &Sample) {
    w.time(s.t);
    w.f64(s.v);
}

pub(crate) fn read_sample(r: &mut SnapReader<'_>) -> Result<Sample, SnapshotError> {
    Ok(Sample {
        t: r.time()?,
        v: r.f64()?,
    })
}

pub(crate) fn write_sample_series(w: &mut SnapWriter, series: &[Vec<Sample>]) {
    w.usize(series.len());
    for s in series {
        w.usize(s.len());
        for x in s {
            write_sample(w, x);
        }
    }
}

pub(crate) fn read_sample_series(
    r: &mut SnapReader<'_>,
    expect_outer: usize,
) -> Result<Vec<Vec<Sample>>, SnapshotError> {
    let n = r.len()?;
    if n != expect_outer {
        return Err(SnapshotError::Malformed("sample series count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.len()?;
        let mut s = Vec::with_capacity(m);
        for _ in 0..m {
            s.push(read_sample(r)?);
        }
        out.push(s);
    }
    Ok(out)
}

pub(crate) fn write_fct(w: &mut SnapWriter, f: &FctRecord) {
    w.u64(f.flow.0);
    w.u64(f.size);
    w.time(f.start);
    w.time(f.end);
}

pub(crate) fn read_fct(r: &mut SnapReader<'_>) -> Result<FctRecord, SnapshotError> {
    Ok(FctRecord {
        flow: FlowId(r.u64()?),
        size: r.u64()?,
        start: r.time()?,
        end: r.time()?,
    })
}

pub(crate) fn write_pfc_event(w: &mut SnapWriter, e: &PfcEvent) {
    w.time(e.t);
    w.usize(e.node.0);
    w.usize(e.port.0);
}

pub(crate) fn read_pfc_event(r: &mut SnapReader<'_>) -> Result<PfcEvent, SnapshotError> {
    Ok(PfcEvent {
        t: r.time()?,
        node: NodeId(r.usize()?),
        port: PortId(r.usize()?),
    })
}

/// Frame a finished body into the final snapshot byte stream: magic,
/// header words, body, FNV trailer.
pub(crate) fn frame(
    seed: u64,
    config_digest: u64,
    now_ns: u64,
    events_processed: u64,
    body: Vec<u8>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 8);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&config_digest.to_le_bytes());
    out.extend_from_slice(&now_ns.to_le_bytes());
    out.extend_from_slice(&events_processed.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    let digest = fnv1a(&out);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Split a framed snapshot into `(info, body)` after full validation.
pub(crate) fn unframe(bytes: &[u8]) -> Result<(SnapshotInfo, &[u8]), SnapshotError> {
    let info = inspect(bytes)?;
    let body = &bytes[HEADER_LEN..bytes.len() - 8];
    Ok((info, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_inspect() {
        let body = vec![1u8, 2, 3, 4, 5];
        let bytes = frame(42, 0xabcd, 1000, 77, body.clone());
        let info = inspect(&bytes).unwrap();
        assert_eq!(info.seed, 42);
        assert_eq!(info.config_digest, 0xabcd);
        assert_eq!(info.now_ns, 1000);
        assert_eq!(info.events_processed, 77);
        assert_eq!(info.body_len, 5);
        let (_, b) = unframe(&bytes).unwrap();
        assert_eq!(b, &body[..]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = frame(1, 2, 3, 4, vec![9u8; 64]);
        assert!(inspect(&bytes).is_ok());
        bytes[HEADER_LEN + 10] ^= 0x40;
        assert!(matches!(
            inspect(&bytes),
            Err(SnapshotError::DigestMismatch { .. })
        ));
        // Truncation.
        let short = &bytes[..bytes.len() - 3];
        assert!(matches!(inspect(short), Err(SnapshotError::Truncated)));
        // Wrong magic.
        let mut wrong = frame(1, 2, 3, 4, vec![]);
        wrong[0] = b'x';
        assert!(matches!(inspect(&wrong), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn writer_reader_primitives_roundtrip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(123456);
        w.u64(u64::MAX - 1);
        w.u128(1 << 100);
        w.f64(-1.5);
        w.opt_u64(None);
        w.opt_u64(Some(9));
        w.str("hello");
        w.words(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 123456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.words().unwrap(), vec![1, 2, 3]);
        assert!(r.exhausted());
        assert!(matches!(r.u8(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn packet_and_event_codecs_roundtrip() {
        let mut int = IntStack::new();
        int.push(IntHop {
            qlen_bytes: 11,
            tx_bytes: 22,
            ts_ns: 33,
            rate: BitRate::from_bps(44),
        });
        let p = Packet {
            flow: FlowId(5),
            src: NodeId(1),
            dst: NodeId(2),
            kind: PacketKind::Ack {
                cum_seq: 4096,
                ecn_echo: true,
                data_tx_time: SimTime::from_nanos(777),
                int,
            },
            ecn: false,
            int: IntStack::new(),
            sent_at: SimTime::from_nanos(999),
        };
        let mut w = SnapWriter::new();
        write_packet(&mut w, &p);
        write_event(
            &mut w,
            &Event::Feedback {
                node: NodeId(3),
                flow: FlowId(8),
                fb: FeedbackEvent::RoccCnp {
                    fair_rate_units: 200,
                    cp: CpId {
                        node: NodeId(4),
                        port: PortId(1),
                    },
                },
            },
        );
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(read_packet(&mut r).unwrap(), p);
        match read_event(&mut r).unwrap() {
            Event::Feedback { node, flow, fb } => {
                assert_eq!(node, NodeId(3));
                assert_eq!(flow, FlowId(8));
                assert_eq!(
                    fb,
                    FeedbackEvent::RoccCnp {
                        fair_rate_units: 200,
                        cp: CpId {
                            node: NodeId(4),
                            port: PortId(1)
                        }
                    }
                );
            }
            other => panic!("wrong event: {other:?}"),
        }
        assert!(r.exhausted());
    }
}
