//! DCQCN+PI (Zhu et al., "ECN or Delay", CoNEXT '16): DCQCN with the
//! switch's RED curve replaced by a PI-controlled marking probability, the
//! enhancement whose improved stability the RoCC paper cites as evidence
//! for PI control at the switch (§6.1).
//!
//! The marking probability follows the PIE-style update
//! `p ← p + a·(q − q_ref) + b·(q − q_old)` every update interval; data
//! packets are then marked with probability `p` at enqueue. The RP is the
//! unmodified DCQCN reaction point.

use rand::Rng;
use rocc_sim::cc::{PacketMeta, SwitchCc, SwitchCcCtx, SwitchCcFactory};
use rocc_sim::prelude::{BitRate, CpId, SimDuration};

/// PI marking parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiMarkingParams {
    /// Reference queue depth (bytes).
    pub q_ref: u64,
    /// Proportional gain per byte of queue error.
    pub a: f64,
    /// Derivative-ish gain per byte of queue change.
    pub b: f64,
    /// Probability update interval.
    pub update_interval: SimDuration,
}

impl PiMarkingParams {
    /// Gains scaled to the egress line rate: queue error in
    /// bandwidth-delay-product units keeps loop gain comparable across
    /// speeds.
    pub fn for_link_rate(rate: BitRate) -> Self {
        let gbps = rate.as_bps() as f64 / 1e9;
        let scale = 40.0 / gbps; // higher rate → larger queues → smaller gain
        PiMarkingParams {
            q_ref: (50_000.0 * gbps / 40.0) as u64,
            a: 1.0e-7 * scale,
            b: 5.0e-7 * scale,
            update_interval: SimDuration::from_micros(40),
        }
    }
}

/// PI-driven ECN marking for one egress port.
pub struct PiMarkingSwitchCc {
    p: PiMarkingParams,
    prob: f64,
    q_old: u64,
}

impl PiMarkingSwitchCc {
    /// Start unmarked.
    pub fn new(p: PiMarkingParams) -> Self {
        PiMarkingSwitchCc {
            p,
            prob: 0.0,
            q_old: 0,
        }
    }

    /// Current marking probability (tests/diagnostics).
    pub fn probability(&self) -> f64 {
        self.prob
    }
}

impl SwitchCc for PiMarkingSwitchCc {
    fn timer_period(&self) -> Option<SimDuration> {
        Some(self.p.update_interval)
    }

    fn on_timer(&mut self, ctx: &mut SwitchCcCtx<'_>) {
        let q = ctx.qlen_bytes;
        let err = q as f64 - self.p.q_ref as f64;
        let delta = q as f64 - self.q_old as f64;
        self.prob = (self.prob + self.p.a * err + self.p.b * delta).clamp(0.0, 1.0);
        self.q_old = q;
    }

    fn on_enqueue(&mut self, ctx: &mut SwitchCcCtx<'_>, _pkt: PacketMeta) -> bool {
        self.prob > 0.0 && ctx.rng.gen::<f64>() < self.prob
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.prob.to_bits());
        out.push(self.q_old);
    }

    fn restore_state(&mut self, state: &[u64]) {
        let [prob, q_old] = state else {
            return; // digest-verified upstream; short input is a no-op
        };
        self.prob = f64::from_bits(*prob);
        self.q_old = *q_old;
    }
}

/// Factory for [`PiMarkingSwitchCc`].
#[derive(Debug, Default, Clone, Copy)]
pub struct PiMarkingSwitchCcFactory {
    /// Parameter override applied to every port.
    pub params_override: Option<PiMarkingParams>,
}

impl SwitchCcFactory for PiMarkingSwitchCcFactory {
    fn make(&self, _cp: CpId, link_rate: BitRate) -> Box<dyn SwitchCc> {
        let p = self
            .params_override
            .unwrap_or_else(|| PiMarkingParams::for_link_rate(link_rate));
        Box::new(PiMarkingSwitchCc::new(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rocc_sim::prelude::{FlowId, NodeId, PortId, SimTime};

    fn ctx<'a>(rng: &'a mut rand::rngs::StdRng, qlen: u64) -> SwitchCcCtx<'a> {
        SwitchCcCtx {
            now: SimTime::ZERO,
            cp: CpId {
                node: NodeId(0),
                port: PortId(0),
            },
            qlen_bytes: qlen,
            link_rate: BitRate::from_gbps(40),
            tx_bytes: 0,
            rng,
            emits: Vec::new(),
            events: Vec::new(),
            event_mask: rocc_sim::telemetry::EventMask::NONE,
        }
    }

    #[test]
    fn probability_rises_with_standing_queue() {
        let mut cc = PiMarkingSwitchCc::new(PiMarkingParams::for_link_rate(
            BitRate::from_gbps(40),
        ));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut c = ctx(&mut rng, 200_000); // well above q_ref
            cc.on_timer(&mut c);
        }
        assert!(cc.probability() > 0.0);
    }

    #[test]
    fn probability_falls_when_queue_empties() {
        let mut cc = PiMarkingSwitchCc::new(PiMarkingParams::for_link_rate(
            BitRate::from_gbps(40),
        ));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut c = ctx(&mut rng, 300_000);
            cc.on_timer(&mut c);
        }
        let high = cc.probability();
        for _ in 0..50 {
            let mut c = ctx(&mut rng, 0);
            cc.on_timer(&mut c);
        }
        assert!(cc.probability() < high);
    }

    #[test]
    fn probability_stays_in_unit_interval() {
        let mut cc = PiMarkingSwitchCc::new(PiMarkingParams::for_link_rate(
            BitRate::from_gbps(40),
        ));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for q in [0u64, 10_000_000, 0, 10_000_000, 0] {
            for _ in 0..100 {
                let mut c = ctx(&mut rng, q);
                cc.on_timer(&mut c);
                assert!((0.0..=1.0).contains(&cc.probability()));
            }
        }
    }

    #[test]
    fn zero_probability_never_marks() {
        let mut cc = PiMarkingSwitchCc::new(PiMarkingParams::for_link_rate(
            BitRate::from_gbps(40),
        ));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let meta = PacketMeta {
            flow: FlowId(0),
            src: NodeId(0),
            wire_bytes: 1048,
        };
        for _ in 0..100 {
            let mut c = ctx(&mut rng, 0);
            assert!(!cc.on_enqueue(&mut c, meta));
        }
    }
}
