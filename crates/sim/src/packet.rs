//! Packet descriptors.
//!
//! The simulator forwards typed packet descriptors rather than byte buffers:
//! headers are plain struct fields, while wire sizes are accounted explicitly
//! so serialization times and queue occupancy stay faithful. The CNP *wire
//! format* (ICMP type 253) lives in `rocc-core`, which encodes/decodes real
//! bytes; the simulator carries the decoded form.

use crate::time::SimTime;
use crate::topology::{NodeId, PortId};
use crate::units::BitRate;

/// Identifies one flow (a source→destination byte stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifies a congestion point: an egress port of a switch.
/// RoCC's RP compares CP identities when arbitrating between CNPs from
/// multiple bottlenecks (Alg. 2 line 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpId {
    /// The switch that generated the feedback.
    pub node: NodeId,
    /// The congested egress port on that switch.
    pub port: PortId,
}

/// Per-hop in-band network telemetry record (HPCC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntHop {
    /// Egress queue length at dequeue time, in bytes.
    pub qlen_bytes: u64,
    /// Cumulative bytes transmitted by the egress port (wraps naturally).
    pub tx_bytes: u64,
    /// Timestamp when the packet left the port.
    pub ts_ns: u64,
    /// Port line rate.
    pub rate: BitRate,
}

/// Maximum network diameter in hops for INT stamping; the paper's fat-tree
/// has 4 switch hops end to end.
pub const MAX_INT_HOPS: usize = 8;

/// A fixed-capacity INT stack: heap-free so packets stay cheap to clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntStack {
    hops: [IntHop; MAX_INT_HOPS],
    len: u8,
}

impl IntStack {
    /// Empty stack.
    pub const fn new() -> Self {
        IntStack {
            hops: [IntHop {
                qlen_bytes: 0,
                tx_bytes: 0,
                ts_ns: 0,
                rate: BitRate::ZERO,
            }; MAX_INT_HOPS],
            len: 0,
        }
    }

    /// Append one hop record; silently drops beyond capacity (as real INT
    /// does when the stack budget in the header is exhausted).
    pub fn push(&mut self, hop: IntHop) {
        if (self.len as usize) < MAX_INT_HOPS {
            self.hops[self.len as usize] = hop;
            self.len += 1;
        }
    }

    /// Recorded hops, in path order.
    pub fn hops(&self) -> &[IntHop] {
        &self.hops[..self.len as usize]
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no hops were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-packet INT overhead on the wire, in bytes (HPCC reports 42 B for
    /// 5 hops; we charge 8 B per stamped hop plus a 2 B shim).
    pub fn wire_overhead_bytes(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            2 + 8 * self.len as u64
        }
    }
}

/// What a packet is.
///
/// The `Ack` variant carries the INT stack and dominates the size; the
/// enum stays `Copy` on purpose (packets are moved through queues by
/// value), so boxing the large variant is not an option.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Application payload carried by the reliable transport.
    Data {
        /// Sequence number of the first payload byte in the flow.
        seq: u64,
        /// Payload length in bytes (wire size adds headers).
        payload: u64,
        /// True on the final packet of the flow (drives FCT recording).
        last: bool,
    },
    /// Cumulative acknowledgment from receiver to sender.
    Ack {
        /// All bytes strictly below this sequence number were received.
        cum_seq: u64,
        /// Echo of the data packet's ECN mark (DCQCN's notification input
        /// travels via receiver-generated CNP; TIMELY/HPCC use ACK echoes).
        ecn_echo: bool,
        /// Send timestamp of the acked data packet (TIMELY RTT measurement).
        data_tx_time: SimTime,
        /// Echoed INT telemetry (HPCC).
        int: IntStack,
    },
    /// Go-back-N negative acknowledgment: receiver saw a gap.
    Nack {
        /// Next in-order sequence number expected by the receiver.
        expected_seq: u64,
    },
    /// RoCC congestion notification packet (switch→source, ICMP type 253).
    RoccCnp {
        /// Fair rate in multiples of ΔF, exactly as carried on the wire.
        fair_rate_units: u32,
        /// Originating congestion point.
        cp: CpId,
    },
    /// RoCC queue report for host-side rate computation (paper §3.6): the
    /// CP ships its raw queue depth and Fmax; the source replicates the
    /// fair-rate calculation locally.
    RoccQueueReport {
        /// Current queue depth in multiples of ΔQ.
        q_cur_units: u32,
        /// The CP's Fmax in multiples of ΔF (lets the host select the
        /// parameter profile from its registry).
        f_max_units: u32,
        /// Originating congestion point.
        cp: CpId,
    },
    /// DCQCN congestion notification packet (receiver→source).
    DcqcnCnp,
    /// QCN feedback message (switch→source).
    QcnFb {
        /// Quantized congestion feedback value Fb (6 bits in QCN).
        fb: u8,
        /// Originating congestion point.
        cp: CpId,
    },
    /// PFC PAUSE frame (link-local, per traffic class; we model one class).
    PfcPause,
    /// PFC RESUME (XON) frame.
    PfcResume,
}

impl PacketKind {
    /// True for link-local PFC frames, which are consumed by the adjacent
    /// port and never forwarded or queued.
    pub fn is_pfc(&self) -> bool {
        matches!(self, PacketKind::PfcPause | PacketKind::PfcResume)
    }

    /// True for control traffic that rides the high-priority queue
    /// (feedback messages; the paper prioritizes CNPs, §3.3).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            PacketKind::Ack { .. }
                | PacketKind::Nack { .. }
                | PacketKind::RoccCnp { .. }
                | PacketKind::RoccQueueReport { .. }
                | PacketKind::DcqcnCnp
                | PacketKind::QcnFb { .. }
        )
    }
}

/// Fixed per-packet header overhead on the wire for data packets:
/// Ethernet (18) + IPv4 (20) + UDP/IB BTH-equivalent (10) = 48 bytes.
pub const DATA_HEADER_BYTES: u64 = 48;
/// Wire size of control packets (ACK/NACK/CNP/Fb): minimum Ethernet frame.
pub const CONTROL_PACKET_BYTES: u64 = 64;
/// Wire size of a PFC pause/resume frame.
pub const PFC_FRAME_BYTES: u64 = 64;

/// A packet in flight or queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow this packet belongs to (control packets reference the flow
    /// they steer; PFC frames use `FlowId(u64::MAX)`).
    pub flow: FlowId,
    /// Source host (for data) or the feedback origin's notion of the flow
    /// source (for control packets routed back).
    pub src: NodeId,
    /// Destination node this packet is routed toward.
    pub dst: NodeId,
    /// Packet kind and kind-specific headers.
    pub kind: PacketKind,
    /// ECN congestion-experienced mark (set by switches, DCQCN/DCQCN+PI).
    pub ecn: bool,
    /// In-band telemetry stack (stamped by switches when HPCC is active).
    pub int: IntStack,
    /// Time the packet was first transmitted by its origin.
    pub sent_at: SimTime,
}

impl Packet {
    /// Total bytes this packet occupies on the wire and in buffers.
    pub fn wire_bytes(&self) -> u64 {
        match self.kind {
            PacketKind::Data { payload, .. } => {
                DATA_HEADER_BYTES + payload + self.int.wire_overhead_bytes()
            }
            PacketKind::PfcPause | PacketKind::PfcResume => PFC_FRAME_BYTES,
            PacketKind::Ack { ref int, .. } => {
                CONTROL_PACKET_BYTES + int.wire_overhead_bytes()
            }
            _ => CONTROL_PACKET_BYTES,
        }
    }

    /// True if this packet carries flow payload.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(payload: u64) -> Packet {
        Packet {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Data {
                seq: 0,
                payload,
                last: false,
            },
            ecn: false,
            int: IntStack::new(),
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(data_packet(1000).wire_bytes(), 1048);
        let mut p = data_packet(1000);
        p.int.push(IntHop::default());
        p.int.push(IntHop::default());
        assert_eq!(p.wire_bytes(), 1048 + 2 + 16);
    }

    #[test]
    fn int_stack_capacity_is_bounded() {
        let mut s = IntStack::new();
        for i in 0..20 {
            s.push(IntHop {
                qlen_bytes: i,
                ..Default::default()
            });
        }
        assert_eq!(s.len(), MAX_INT_HOPS);
        assert_eq!(s.hops()[0].qlen_bytes, 0);
        assert_eq!(s.hops()[MAX_INT_HOPS - 1].qlen_bytes, MAX_INT_HOPS as u64 - 1);
    }

    #[test]
    fn control_classification() {
        assert!(PacketKind::DcqcnCnp.is_control());
        assert!(PacketKind::RoccCnp {
            fair_rate_units: 1,
            cp: CpId {
                node: NodeId(0),
                port: PortId(0)
            }
        }
        .is_control());
        assert!(!PacketKind::PfcPause.is_control());
        assert!(PacketKind::PfcPause.is_pfc());
        assert!(!data_packet(1).kind.is_control());
    }
}
