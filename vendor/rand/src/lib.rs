//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the API surface the workspace uses:
//!
//! - [`Rng::gen`] (for `f64`, `u64`, and `bool`)
//! - [`Rng::gen_range`] over half-open and inclusive integer/float ranges
//! - [`SeedableRng::seed_from_u64`]
//! - [`rngs::StdRng`]
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a deterministic,
//! statistically solid generator. It is NOT the upstream `StdRng` (ChaCha12),
//! so absolute stream values differ from real `rand`, but every consumer in
//! this workspace only relies on determinism for a fixed seed, which holds.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core plus the convenience API.
pub trait Rng {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniformly distributed value of type `T`.
    ///
    /// `f64` samples are uniform in `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw generator output ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be sampled from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from this range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` for `span >= 1`, via 128-bit widening multiply
/// with a rejection pass to remove modulo bias (Lemire's method).
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut x = rng.next_u64();
    let mut m = x as u128 * span as u128;
    let mut lo = m as u64;
    if lo < span {
        let thresh = span.wrapping_neg() % span;
        while lo < thresh {
            x = rng.next_u64();
            m = x as u128 * span as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        // May round to `end` for extreme spans; clamp to stay half-open.
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Drop-in for upstream `StdRng` in this workspace: same trait surface,
    /// deterministic per seed. (Not the upstream ChaCha12 stream.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for exact checkpoint/restore of a
        /// generator mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state previously captured with
        /// [`StdRng::state`]; it continues the stream exactly where the
        /// captured generator left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = r.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(0u64..=5);
            assert!(b <= 5);
            let c = r.gen_range(-4i64..4);
            assert!((-4..4).contains(&c));
            let d = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn range_covers_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.next_u64();
            f64::from_bits(0x3fe0_0000_0000_0000)
        }
        let mut r = StdRng::seed_from_u64(1);
        assert_eq!(draw(&mut r), 0.5);
    }
}
