//! Simulation-wide configuration.

use crate::fault::FaultPlan;
use crate::time::SimDuration;
use crate::topology::Topology;
use crate::units::{kb, BitRate};
use std::fmt;

/// Buffering/loss regime of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// PFC keeps the fabric lossless: ingress occupancy above the pause
    /// threshold sends PAUSE upstream (the paper's default).
    LosslessPfc,
    /// No PFC and no drops: switches buffer without bound (the paper's
    /// "unlimited buffer" study, Fig. 18).
    Unlimited,
    /// No PFC; each egress queue drops arriving packets beyond `limit_bytes`
    /// (the paper's lossy go-back-N study, Fig. 20 / App. A.2).
    LossyTailDrop {
        /// Per-egress-queue capacity.
        limit_bytes: u64,
    },
}

/// PFC pause/resume thresholds, per the paper: "PFC threshold values 500 KB
/// and 800 KB for 40 Gb/s and 100 Gb/s links" (after the DeTail paper).
#[derive(Debug, Clone, Copy)]
pub struct PfcConfig {
    /// Ingress occupancy at which PAUSE is sent upstream, as a function of
    /// the *ingress* link speed: (threshold for <100G links, for ≥100G).
    pub xoff_40g: u64,
    /// Pause threshold for 100 Gb/s-class ingress links.
    pub xoff_100g: u64,
    /// RESUME is sent when occupancy falls back below `xoff * resume_frac`.
    pub resume_frac: f64,
}

impl Default for PfcConfig {
    fn default() -> Self {
        PfcConfig {
            xoff_40g: kb(500),
            xoff_100g: kb(800),
            resume_frac: 0.5,
        }
    }
}

impl PfcConfig {
    /// Pause threshold for an ingress link of the given rate.
    pub fn xoff_for(&self, ingress_rate: BitRate) -> u64 {
        if ingress_rate.as_bps() >= BitRate::from_gbps(100).as_bps() {
            self.xoff_100g
        } else {
            self.xoff_40g
        }
    }

    /// Resume (XON) threshold corresponding to [`PfcConfig::xoff_for`].
    ///
    /// Robust to degenerate `resume_frac`: non-finite values collapse to 0,
    /// the fraction is clamped to `[0, 1]`, and the result never exceeds the
    /// pause threshold — so a misconfigured fraction can never produce
    /// `xon > xoff` (which would resume upstream traffic while still above
    /// the pause point and oscillate) or a nonsense cast from a negative or
    /// NaN product.
    pub fn xon_for(&self, ingress_rate: BitRate) -> u64 {
        let xoff = self.xoff_for(ingress_rate);
        let frac = if self.resume_frac.is_finite() {
            self.resume_frac.clamp(0.0, 1.0)
        } else {
            0.0
        };
        ((xoff as f64 * frac) as u64).min(xoff)
    }
}

/// Default livelock threshold: consecutive events at one instant before the
/// run is declared [`crate::sanitizer::SimError::Stalled`]. Healthy runs
/// dispatch at most a few thousand events per instant (bounded by topology
/// fan-in), so this is orders of magnitude above any legitimate burst while
/// still catching a same-instant event loop in well under a second of wall
/// time.
pub const DEFAULT_STALL_EVENTS: u64 = 5_000_000;

/// Runtime budgets guarding one run against unbounded work. The existing
/// deadline in [`crate::engine::Sim::run_until_flows_done`] is *sim-time*
/// based, so it never fires for a run whose clock stops advancing; these
/// guards are event-count based and close that gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Hard ceiling on total events processed across the run; exceeding it
    /// yields [`crate::sanitizer::SimError::BudgetExhausted`]. `None` means
    /// unlimited (the default — campaigns opt in per cell).
    pub max_events: Option<u64>,
    /// Livelock detector: abort with
    /// [`crate::sanitizer::SimError::Stalled`] once this many consecutive
    /// events are dispatched without simulated time advancing. `None`
    /// disables the guard.
    pub stall_events: Option<u64>,
    /// Hard wall-clock ceiling in milliseconds; exceeding it yields
    /// [`crate::sanitizer::SimError::WallClockExceeded`]. The check is
    /// strided (every few thousand events) so the enabled cost is one
    /// branch plus a rare clock read, and the disabled cost is one branch.
    /// `None` means unlimited (the default).
    pub wall_clock_ms: Option<u64>,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_events: None,
            stall_events: Some(DEFAULT_STALL_EVENTS),
            wall_clock_ms: None,
        }
    }
}

impl RunBudget {
    /// A budget with every guard disabled (bit-identical to the engine
    /// before budgets existed; useful for open-ended soak runs).
    pub fn unlimited() -> Self {
        RunBudget {
            max_events: None,
            stall_events: None,
            wall_clock_ms: None,
        }
    }

    /// Cap total events at `n`, keeping the default livelock guard.
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Set the livelock threshold to `n` consecutive same-instant events.
    pub fn with_stall_events(mut self, n: u64) -> Self {
        self.stall_events = Some(n);
        self
    }

    /// Cap the run's wall-clock time at `ms` milliseconds.
    pub fn with_wall_clock_ms(mut self, ms: u64) -> Self {
        self.wall_clock_ms = Some(ms);
        self
    }
}

/// Global simulation parameters (paper §6 "System parameters").
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Data packet payload size (bytes); headers are added on the wire.
    pub mtu_payload: u64,
    /// Buffering/loss regime.
    pub buffer_mode: BufferMode,
    /// PFC thresholds (used when `buffer_mode` is `LosslessPfc`).
    pub pfc: PfcConfig,
    /// RP reaction delay for feedback messages (paper: 15 µs): the lag
    /// between a CNP reaching the NIC and the rate limiter applying it.
    pub rp_feedback_delay: SimDuration,
    /// Go-back-N retransmission timeout (idle sender with unacked data).
    pub rto: SimDuration,
    /// Extra fixed latency added at hosts to model a software protocol
    /// stack + NIC batching (the DPDK "testbed" profile, Fig. 13); zero in
    /// the clean simulation profile.
    pub host_stack_latency: SimDuration,
    /// Random jitter bound added on top of `host_stack_latency` (testbed
    /// profile only; uniformly sampled in `[0, bound]`).
    pub host_stack_jitter: SimDuration,
    /// RNG seed for everything stochastic in the run.
    pub seed: u64,
    /// Feedback/control packets ride a strict-priority queue at switch
    /// egress (the paper prioritizes CNPs, §3.3). Disable to ablate.
    pub prioritize_control: bool,
    /// Declarative fault schedule for the run (loss, corruption, link flaps,
    /// host pauses/crashes). The default plan is empty and leaves every
    /// result bit-identical to a fault-free simulator.
    pub fault_plan: FaultPlan,
    /// Runtime budgets (event ceiling, livelock detector). Budgets never
    /// perturb scheduling — a run within budget is bit-identical with any
    /// budget setting; a run over budget aborts with a typed verdict.
    pub budget: RunBudget,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mtu_payload: 1000,
            buffer_mode: BufferMode::LosslessPfc,
            pfc: PfcConfig::default(),
            rp_feedback_delay: SimDuration::from_micros(15),
            rto: SimDuration::from_millis(4),
            host_stack_latency: SimDuration::ZERO,
            host_stack_jitter: SimDuration::ZERO,
            seed: 1,
            prioritize_control: true,
            fault_plan: FaultPlan::default(),
            budget: RunBudget::default(),
        }
    }
}

/// A typed rejection from [`SimConfig::validate`]: the configuration (or
/// its combination with the topology) is inconsistent and would silently
/// misbehave rather than fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The topology has no hosts or no links: nothing can ever run.
    EmptyTopology,
    /// A link has a zero line rate (serialization time would be undefined).
    ZeroLineRate {
        /// Index of the offending link.
        link: usize,
    },
    /// A zero MTU payload: no data packet can ever carry bytes.
    ZeroMtu,
    /// A zero PFC pause threshold in lossless mode: the very first packet
    /// would pause the fabric forever.
    ZeroXoff,
    /// `resume_frac` is non-finite or outside `[0, 1)`: the XON threshold
    /// would meet or exceed XOFF, so PAUSE/RESUME would oscillate or jam.
    PfcResumeFracInvalid {
        /// The offending fraction.
        frac: f64,
    },
    /// The retransmission timeout is shorter than one base round trip, so
    /// every in-flight packet would spuriously retransmit.
    RtoTooShort {
        /// The configured RTO.
        rto: SimDuration,
        /// The minimum admissible RTO (2 × the largest propagation delay).
        floor: SimDuration,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyTopology => {
                write!(f, "topology has no hosts or no links; nothing to simulate")
            }
            ConfigError::ZeroLineRate { link } => {
                write!(f, "link {link} has a zero line rate")
            }
            ConfigError::ZeroMtu => write!(f, "mtu_payload is zero"),
            ConfigError::ZeroXoff => {
                write!(f, "PFC pause threshold is zero in lossless mode")
            }
            ConfigError::PfcResumeFracInvalid { frac } => write!(
                f,
                "pfc.resume_frac {frac} is not in [0, 1): XON would meet or exceed XOFF"
            ),
            ConfigError::RtoTooShort { rto, floor } => write!(
                f,
                "rto {rto} is below one base round trip ({floor}): every in-flight packet would spuriously retransmit"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// The paper's "testbed" profile: protocol-stack latency and NIC
    /// batching jitter like the DPDK deployment in §6.2.
    pub fn testbed_profile(mut self) -> Self {
        self.host_stack_latency = SimDuration::from_micros(8);
        self.host_stack_jitter = SimDuration::from_micros(6);
        self
    }

    /// Check this configuration against `topo` and reject inconsistent
    /// combinations with a typed error instead of silent misbehavior.
    /// [`crate::engine::Sim::new`] calls this and panics on `Err`.
    pub fn validate(&self, topo: &Topology) -> Result<(), ConfigError> {
        if topo.hosts().is_empty() || topo.links().is_empty() {
            return Err(ConfigError::EmptyTopology);
        }
        for (i, link) in topo.links().iter().enumerate() {
            if link.rate.as_bps() == 0 {
                return Err(ConfigError::ZeroLineRate { link: i });
            }
        }
        if self.mtu_payload == 0 {
            return Err(ConfigError::ZeroMtu);
        }
        if self.buffer_mode == BufferMode::LosslessPfc {
            if self.pfc.xoff_40g == 0 || self.pfc.xoff_100g == 0 {
                return Err(ConfigError::ZeroXoff);
            }
            let frac = self.pfc.resume_frac;
            if !frac.is_finite() || !(0.0..1.0).contains(&frac) {
                return Err(ConfigError::PfcResumeFracInvalid { frac });
            }
        }
        // An RTO below one base round trip (out and back over the slowest
        // link) guarantees spurious retransmission of healthy traffic.
        let max_delay = topo
            .links()
            .iter()
            .map(|l| l.delay)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let floor = max_delay + max_delay;
        if self.rto < floor {
            return Err(ConfigError::RtoTooShort {
                rto: self.rto,
                floor,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfc_thresholds_by_link_speed() {
        let p = PfcConfig::default();
        assert_eq!(p.xoff_for(BitRate::from_gbps(40)), 500_000);
        assert_eq!(p.xoff_for(BitRate::from_gbps(10)), 500_000);
        assert_eq!(p.xoff_for(BitRate::from_gbps(100)), 800_000);
        assert_eq!(p.xon_for(BitRate::from_gbps(40)), 250_000);
    }

    #[test]
    fn xon_robust_to_degenerate_resume_frac() {
        let rate = BitRate::from_gbps(40);
        let mk = |frac| PfcConfig {
            resume_frac: frac,
            ..PfcConfig::default()
        };
        // Out-of-range fractions clamp instead of producing xon > xoff or a
        // bogus negative-to-u64 cast.
        assert_eq!(mk(1.5).xon_for(rate), mk(1.0).xon_for(rate));
        assert_eq!(mk(1.0).xon_for(rate), mk(1.0).xoff_for(rate));
        assert_eq!(mk(-0.3).xon_for(rate), 0);
        // Non-finite fractions are meaningless; fail safe to "resume only
        // when fully drained" rather than guessing.
        assert_eq!(mk(f64::NAN).xon_for(rate), 0);
        assert_eq!(mk(f64::INFINITY).xon_for(rate), 0);
        assert_eq!(mk(f64::NEG_INFINITY).xon_for(rate), 0);
        // And the sane default is untouched.
        assert_eq!(mk(0.5).xon_for(rate), 250_000);
        for frac in [-1.0, 0.0, 0.25, 0.5, 0.9999, 1.0, 7.0, f64::NAN] {
            let p = mk(frac);
            assert!(p.xon_for(rate) <= p.xoff_for(rate));
        }
    }

    #[test]
    fn default_fault_plan_is_empty() {
        assert!(SimConfig::default().fault_plan.is_empty());
    }

    #[test]
    fn default_budget_keeps_livelock_guard_only() {
        let b = SimConfig::default().budget;
        assert_eq!(b.max_events, None);
        assert_eq!(b.stall_events, Some(DEFAULT_STALL_EVENTS));
        assert_eq!(b.wall_clock_ms, None);
        let u = RunBudget::unlimited();
        assert_eq!(u.max_events, None);
        assert_eq!(u.stall_events, None);
        assert_eq!(u.wall_clock_ms, None);
        let c = RunBudget::default()
            .with_max_events(5)
            .with_stall_events(9)
            .with_wall_clock_ms(30_000);
        assert_eq!(c.max_events, Some(5));
        assert_eq!(c.stall_events, Some(9));
        assert_eq!(c.wall_clock_ms, Some(30_000));
    }

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.rp_feedback_delay, SimDuration::from_micros(15));
        assert_eq!(c.mtu_payload, 1000);
        assert!(matches!(c.buffer_mode, BufferMode::LosslessPfc));
    }

    #[test]
    fn testbed_profile_adds_stack_latency() {
        let c = SimConfig::default().testbed_profile();
        assert!(c.host_stack_latency > SimDuration::ZERO);
        assert!(c.host_stack_jitter > SimDuration::ZERO);
    }

    fn tiny_topo() -> Topology {
        use crate::topology::{NodeRole, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host("h0");
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw", NodeRole::Switch);
        b.connect(h0, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        b.connect(h1, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        b.build()
    }

    #[test]
    fn validate_accepts_defaults() {
        assert_eq!(SimConfig::default().validate(&tiny_topo()), Ok(()));
    }

    #[test]
    fn validate_rejects_empty_topology() {
        let empty = crate::topology::TopologyBuilder::new().build();
        assert_eq!(
            SimConfig::default().validate(&empty),
            Err(ConfigError::EmptyTopology)
        );
        // Hosts but no links is equally unusable.
        let mut b = crate::topology::TopologyBuilder::new();
        b.add_host("h0");
        assert_eq!(
            SimConfig::default().validate(&b.build()),
            Err(ConfigError::EmptyTopology)
        );
    }

    #[test]
    fn validate_rejects_zero_line_rate() {
        use crate::topology::{NodeRole, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host("h0");
        let sw = b.add_switch("sw", NodeRole::Switch);
        b.connect(h0, sw, BitRate::from_gbps(0), SimDuration::from_micros(1));
        assert!(matches!(
            SimConfig::default().validate(&b.build()),
            Err(ConfigError::ZeroLineRate { .. })
        ));
    }

    #[test]
    fn validate_rejects_zero_mtu() {
        let cfg = SimConfig {
            mtu_payload: 0,
            ..SimConfig::default()
        };
        assert_eq!(cfg.validate(&tiny_topo()), Err(ConfigError::ZeroMtu));
    }

    #[test]
    fn validate_rejects_zero_xoff() {
        let mut cfg = SimConfig::default();
        cfg.pfc.xoff_40g = 0;
        assert_eq!(cfg.validate(&tiny_topo()), Err(ConfigError::ZeroXoff));
        // Irrelevant outside lossless mode.
        cfg.buffer_mode = BufferMode::Unlimited;
        assert_eq!(cfg.validate(&tiny_topo()), Ok(()));
    }

    #[test]
    fn validate_rejects_xon_at_or_above_xoff() {
        for frac in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let mut cfg = SimConfig::default();
            cfg.pfc.resume_frac = frac;
            assert!(
                matches!(
                    cfg.validate(&tiny_topo()),
                    Err(ConfigError::PfcResumeFracInvalid { .. })
                ),
                "frac {frac} must be rejected"
            );
        }
    }

    #[test]
    fn validate_rejects_rto_below_one_rtt() {
        let cfg = SimConfig {
            rto: SimDuration::from_nanos(1_500),
            ..SimConfig::default()
        };
        let err = cfg.validate(&tiny_topo()).unwrap_err();
        assert!(matches!(err, ConfigError::RtoTooShort { .. }));
        assert!(err.to_string().contains("round trip"));
    }
}
