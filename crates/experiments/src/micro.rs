//! Simulation micro-benchmarks (§6.1, §6.2, App. A.1):
//! Fig. 8 (fairness/stability), Fig. 9 (convergence under load swings),
//! Fig. 11 (scheme comparison), Fig. 12 (multi-bottleneck & asymmetric
//! fairness), Fig. 13 (testbed-vs-sim validation), Fig. 19 (baseline
//! verification).

use crate::scenarios;
use crate::schemes::Scheme;
use crate::Scale;
use rocc_sim::prelude::*;

/// Build a simulation for `topo` under `scheme`.
pub fn sim_with(topo: Topology, scheme: Scheme, base_rtt_us: u64, cfg: SimConfig) -> Sim {
    let (h, s) = scheme.factories(SimDuration::from_micros(base_rtt_us));
    Sim::new(topo, cfg, h, s)
}

/// Mean and population SD of the samples at or after `from`.
pub fn tail_stats(series: &[Sample], from: SimTime) -> (f64, f64) {
    let vals: Vec<f64> = series.iter().filter(|s| s.t >= from).map(|s| s.v).collect();
    if vals.is_empty() {
        return (0.0, 0.0);
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
    (mean, var.sqrt())
}

/// First sample time after which the series stays within ±`tol` of
/// `target` (convergence detection). `None` if it never settles.
pub fn settle_time(series: &[Sample], target: f64, tol: f64) -> Option<SimTime> {
    let ok = |v: f64| (v - target).abs() <= tol * target;
    let mut candidate: Option<SimTime> = None;
    for s in series {
        if ok(s.v) {
            candidate.get_or_insert(s.t);
        } else {
            candidate = None;
        }
    }
    candidate
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 case: N flows on a B Gb/s bottleneck at 90% offered load.
#[derive(Debug)]
pub struct Fig8Case {
    /// Flow count.
    pub n: usize,
    /// Link speed (Gb/s).
    pub gbps: u64,
    /// Bottleneck queue-depth series (bytes).
    pub queue: Vec<Sample>,
    /// Reaction-point rate of flow 0 (bits/s) — the published fair rate.
    pub rate: Vec<Sample>,
    /// Queue mean over the converged tail (bytes).
    pub queue_mean: f64,
    /// Queue SD over the converged tail (bytes).
    pub queue_sd: f64,
    /// Per-flow goodput over the converged tail (bits/s).
    pub per_flow_goodput: Vec<f64>,
    /// Queue settle time, if the queue converged to Qref ± 50%.
    pub settle: Option<SimTime>,
}

/// Fig. 8: fairness (fair) and stability (stbl) for N ∈ {2, 10, 100} at
/// B ∈ {40, 100} Gb/s, offered load 90% per source.
pub fn fig8(scale: Scale) -> Vec<Fig8Case> {
    let horizon = match scale {
        Scale::Quick => SimTime::from_millis(14),
        Scale::Paper => SimTime::from_millis(20),
    };
    let measure_from = SimTime::from_nanos(horizon.as_nanos() * 6 / 10);
    let mut out = Vec::new();
    for &gbps in &[40u64, 100] {
        for &n in &[2usize, 10, 100] {
            let d = scenarios::dumbbell(n, BitRate::from_gbps(gbps));
            let mut sim = sim_with(d.topo, Scheme::Rocc, 7, SimConfig::default());
            sim.trace.sample_period = Some(SimDuration::from_micros(100));
            sim.trace.watch_queue(d.switch, d.bottleneck_port);
            sim.trace.watch_cc_rate(FlowId(0));
            let offered = BitRate::from_gbps(gbps).scale(0.9);
            for (i, &s) in d.senders.iter().enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(i as u64),
                    src: s,
                    dst: d.receiver,
                    size: u64::MAX,
                    start: SimTime::ZERO,
                    offered: Some(offered),
                });
            }
            sim.run_until(measure_from);
            let base: Vec<u64> = (0..n)
                .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
                .collect();
            sim.run_until(horizon);
            let w = horizon.saturating_since(measure_from).as_secs_f64();
            let per_flow_goodput: Vec<f64> = (0..n)
                .map(|i| {
                    (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / w
                })
                .collect();
            let (queue_mean, queue_sd) = tail_stats(&sim.trace.queue_series[0], measure_from);
            let qref = if gbps >= 100 { 300_000.0 } else { 150_000.0 };
            let settle = settle_time(&sim.trace.queue_series[0], qref, 0.5);
            out.push(Fig8Case {
                n,
                gbps,
                queue: std::mem::take(&mut sim.trace.queue_series[0]),
                rate: std::mem::take(&mut sim.trace.cc_rate_series[0]),
                queue_mean,
                queue_sd,
                per_flow_goodput,
                settle,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- Fig. 9

/// Fig. 9 output: dynamics under an exponential load swing.
#[derive(Debug)]
pub struct Fig9Result {
    /// Bottleneck queue series (bytes).
    pub queue: Vec<Sample>,
    /// RP rate of flow 0 (bits/s).
    pub rate: Vec<Sample>,
    /// (time, active flow count) step profile.
    pub steps: Vec<(SimTime, usize)>,
}

/// Fig. 9: start with 3 flows, double the count every step until 96, then
/// halve back down — queue and fair rate must re-stabilize at every step.
pub fn fig9(scale: Scale) -> Fig9Result {
    let step = match scale {
        Scale::Quick => SimDuration::from_millis(6),
        Scale::Paper => SimDuration::from_millis(10),
    };
    let counts = [3usize, 6, 12, 24, 48, 96, 48, 24, 12, 6, 3];
    let d = scenarios::dumbbell(96, BitRate::from_gbps(40));
    let mut sim = sim_with(d.topo, Scheme::Rocc, 7, SimConfig::default());
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    sim.trace.watch_cc_rate(FlowId(0));
    // Flow i exists while the active count exceeds i: start it at the
    // first step needing it, stop it at the first later step not needing it.
    let mut steps = Vec::new();
    for (k, &c) in counts.iter().enumerate() {
        let t = SimTime::ZERO + step.saturating_mul(k as u64);
        steps.push((t, c));
    }
    let max_seen = |upto: usize| -> usize { counts[..=upto].iter().copied().max().unwrap() };
    for i in 0..96 {
        // Start when first required.
        let start_k = counts.iter().position(|&c| c > i).unwrap();
        let start = SimTime::ZERO + step.saturating_mul(start_k as u64);
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: d.senders[i],
            dst: d.receiver,
            size: u64::MAX,
            start,
            offered: None,
        });
        // Stop at the first step after the peak where the count drops to i
        // or below.
        for (k, &c) in counts.iter().enumerate() {
            if k > start_k && max_seen(k - 1) > i && c <= i {
                let t = SimTime::ZERO + step.saturating_mul(k as u64);
                sim.stop_flow_at(FlowId(i as u64), t);
                break;
            }
        }
    }
    let total = SimTime::ZERO + step.saturating_mul(counts.len() as u64);
    sim.run_until(total);
    Fig9Result {
        queue: std::mem::take(&mut sim.trace.queue_series[0]),
        rate: std::mem::take(&mut sim.trace.cc_rate_series[0]),
        steps,
    }
}

// ---------------------------------------------------------------- Fig. 11

/// One scheme's row in the Fig. 11 comparison.
#[derive(Debug)]
pub struct Fig11Row {
    /// The scheme.
    pub scheme: Scheme,
    /// Per-flow goodput over the measurement window (bits/s), N entries.
    pub per_flow_rate: Vec<f64>,
    /// Queue series at the bottleneck (bytes).
    pub queue: Vec<Sample>,
    /// Bottleneck throughput series (bits/s).
    pub util: Vec<Sample>,
    /// Queue mean over the tail (bytes).
    pub queue_mean: f64,
    /// Queue SD over the tail (bytes).
    pub queue_sd: f64,
    /// Mean utilization over the tail (fraction of line rate).
    pub util_mean: f64,
}

/// Fig. 11: RoCC vs TIMELY, QCN, DCQCN, DCQCN+PI, HPCC on the N = 10,
/// B = 40 Gb/s single-bottleneck scenario.
pub fn fig11(scale: Scale) -> Vec<Fig11Row> {
    let horizon = match scale {
        Scale::Quick => SimTime::from_millis(24),
        Scale::Paper => SimTime::from_millis(40),
    };
    let measure_from = SimTime::from_nanos(horizon.as_nanos() / 2);
    let n = 10;
    Scheme::comparison_set()
        .into_iter()
        .map(|scheme| {
            let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
            let mut sim = sim_with(d.topo, scheme, 7, SimConfig::default());
            sim.trace.sample_period = Some(SimDuration::from_micros(100));
            sim.trace.watch_queue(d.switch, d.bottleneck_port);
            sim.trace.watch_port_tput(d.switch, d.bottleneck_port);
            let offered = BitRate::from_gbps(40).scale(0.9);
            for (i, &s) in d.senders.iter().enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(i as u64),
                    src: s,
                    dst: d.receiver,
                    size: u64::MAX,
                    start: SimTime::ZERO,
                    offered: Some(offered),
                });
            }
            sim.run_until(measure_from);
            let base: Vec<u64> = (0..n)
                .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
                .collect();
            sim.run_until(horizon);
            let w = horizon.saturating_since(measure_from).as_secs_f64();
            let per_flow_rate: Vec<f64> = (0..n)
                .map(|i| {
                    (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / w
                })
                .collect();
            let (queue_mean, queue_sd) = tail_stats(&sim.trace.queue_series[0], measure_from);
            let (util_raw, _) = tail_stats(&sim.trace.port_tput_series[0], measure_from);
            Fig11Row {
                scheme,
                per_flow_rate,
                queue: std::mem::take(&mut sim.trace.queue_series[0]),
                util: std::mem::take(&mut sim.trace.port_tput_series[0]),
                queue_mean,
                queue_sd,
                util_mean: util_raw / 40e9,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 12

/// Fig. 12 fairness rows: per-flow average throughput per scheme.
#[derive(Debug)]
pub struct Fig12Row {
    /// The scheme.
    pub scheme: Scheme,
    /// Average throughput per flow (bits/s), in flow-id order.
    pub throughput: Vec<f64>,
}

fn measure_goodputs(
    sim: &mut Sim,
    flows: usize,
    from: SimTime,
    to: SimTime,
) -> Vec<f64> {
    sim.run_until(from);
    let base: Vec<u64> = (0..flows)
        .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
        .collect();
    sim.run_until(to);
    let w = to.saturating_since(from).as_secs_f64();
    (0..flows)
        .map(|i| (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / w)
        .collect()
}

/// Fig. 12a: multi-bottleneck fairness for DCQCN, HPCC, RoCC. Flows are
/// D0..D5 (D0 crosses two CPs; expected 5 Gb/s for D0/D5, 8.75 for D1–D4).
pub fn fig12a(scale: Scale) -> Vec<Fig12Row> {
    let (from, to) = match scale {
        Scale::Quick => (SimTime::from_millis(20), SimTime::from_millis(32)),
        Scale::Paper => (SimTime::from_millis(30), SimTime::from_millis(60)),
    };
    Scheme::large_scale_set()
        .into_iter()
        .map(|scheme| {
            let m = scenarios::multi_bottleneck();
            let mut sim = sim_with(m.topo, scheme, 9, SimConfig::default());
            let offered = Some(BitRate::from_gbps(10).scale(0.9));
            sim.add_flow(FlowSpec {
                id: FlowId(0),
                src: m.a0,
                dst: m.b0,
                size: u64::MAX,
                start: SimTime::ZERO,
                offered,
            });
            for (i, (&s, &dst)) in m.a.iter().zip(&m.b).enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(1 + i as u64),
                    src: s,
                    dst,
                    size: u64::MAX,
                    start: SimTime::ZERO,
                    offered,
                });
            }
            sim.add_flow(FlowSpec {
                id: FlowId(5),
                src: m.b5,
                dst: m.b0,
                size: u64::MAX,
                start: SimTime::ZERO,
                offered,
            });
            let throughput = measure_goodputs(&mut sim, 6, from, to);
            Fig12Row { scheme, throughput }
        })
        .collect()
}

/// Fig. 12b: asymmetric-topology fairness. Flows D0..D4 from 40G hosts,
/// D5..D6 from 100G hosts, all into one 100G sink (fair share 14.29 Gb/s).
pub fn fig12b(scale: Scale) -> Vec<Fig12Row> {
    let (from, to) = match scale {
        Scale::Quick => (SimTime::from_millis(12), SimTime::from_millis(24)),
        Scale::Paper => (SimTime::from_millis(20), SimTime::from_millis(50)),
    };
    Scheme::large_scale_set()
        .into_iter()
        .map(|scheme| {
            let a = scenarios::asymmetric();
            let mut sim = sim_with(a.topo, scheme, 9, SimConfig::default());
            for (i, &s) in a.slow_sources.iter().enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(i as u64),
                    src: s,
                    dst: a.dst,
                    size: u64::MAX,
                    start: SimTime::ZERO,
                    offered: Some(BitRate::from_gbps(40).scale(0.9)),
                });
            }
            for (i, &s) in a.fast_sources.iter().enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(5 + i as u64),
                    src: s,
                    dst: a.dst,
                    size: u64::MAX,
                    start: SimTime::ZERO,
                    offered: Some(BitRate::from_gbps(100).scale(0.9)),
                });
            }
            let throughput = measure_goodputs(&mut sim, 7, from, to);
            Fig12Row { scheme, throughput }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 13

/// One Fig. 13 run: a profile × scenario cell.
#[derive(Debug)]
pub struct Fig13Run {
    /// "sim" or "testbed" (the DPDK-substitute profile).
    pub profile: &'static str,
    /// "uni" (all 10 Gb/s offered) or "mix" (10/3/1 Gb/s offered).
    pub scenario: &'static str,
    /// Egress queue series at the switch (bytes).
    pub queue: Vec<Sample>,
    /// Queue mean over the tail (bytes) — expected ≈ 75 KB.
    pub queue_mean: f64,
    /// Per-flow goodput over the tail (bits/s).
    pub goodput: Vec<f64>,
}

/// Fig. 13: validate the clean simulation against the "testbed" profile
/// (protocol-stack latency + NIC jitter + T = 100 µs on 10 GbE), in the
/// uniform and mixed offered-load scenarios of §6.2.
pub fn fig13(scale: Scale) -> Vec<Fig13Run> {
    let horizon = match scale {
        Scale::Quick => SimTime::from_millis(60),
        Scale::Paper => SimTime::from_millis(100),
    };
    let measure_from = SimTime::from_nanos(horizon.as_nanos() / 2);
    let mut out = Vec::new();
    for &(profile, testbed) in &[("sim", false), ("testbed", true)] {
        for &(scenario, rates) in &[
            ("uni", [10u64, 10, 10]),
            ("mix", [10, 3, 1]),
        ] {
            let d = scenarios::testbed();
            let cfg = if testbed {
                SimConfig::default().testbed_profile()
            } else {
                SimConfig::default()
            };
            let mut sim = sim_with(d.topo, Scheme::Rocc, 10, cfg);
            sim.trace.sample_period = Some(SimDuration::from_micros(200));
            sim.trace.watch_queue(d.switch, d.bottleneck_port);
            for (i, &s) in d.senders.iter().enumerate() {
                sim.add_flow(FlowSpec {
                    id: FlowId(i as u64),
                    src: s,
                    dst: d.receiver,
                    size: u64::MAX,
                    start: SimTime::ZERO,
                    offered: Some(BitRate::from_gbps(rates[i])),
                });
            }
            sim.run_until(measure_from);
            let base: Vec<u64> = (0..3)
                .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
                .collect();
            sim.run_until(horizon);
            let w = horizon.saturating_since(measure_from).as_secs_f64();
            let goodput: Vec<f64> = (0..3)
                .map(|i| {
                    (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / w
                })
                .collect();
            let (queue_mean, _) = tail_stats(&sim.trace.queue_series[0], measure_from);
            out.push(Fig13Run {
                profile,
                scenario,
                queue: std::mem::take(&mut sim.trace.queue_series[0]),
                queue_mean,
                goodput,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- Fig. 19

/// One Fig. 19 verification run.
#[derive(Debug)]
pub struct Fig19Run {
    /// DCQCN or HPCC.
    pub scheme: Scheme,
    /// Per-flow goodput series (bits/s), 4 flows.
    pub flow_series: Vec<Vec<Sample>>,
}

/// Fig. 19 (App. A.1): verify the DCQCN and HPCC implementations by the
/// staggered 4-flow convergence experiment — per-flow throughput steps
/// 40 → 20 → 13.3 → 10 Gb/s and back as flows join and leave.
pub fn fig19(scale: Scale) -> Vec<Fig19Run> {
    let step = match scale {
        Scale::Quick => SimDuration::from_millis(15),
        Scale::Paper => SimDuration::from_millis(50),
    };
    [Scheme::Dcqcn, Scheme::Hpcc]
        .into_iter()
        .map(|scheme| {
            let d = scenarios::dumbbell(4, BitRate::from_gbps(40));
            let mut sim = sim_with(d.topo, scheme, 7, SimConfig::default());
            sim.trace.sample_period = Some(SimDuration::from_micros(500));
            for i in 0..4u64 {
                sim.trace.watch_flow_rate(FlowId(i));
                sim.add_flow(FlowSpec {
                    id: FlowId(i),
                    src: d.senders[i as usize],
                    dst: d.receiver,
                    size: u64::MAX,
                    start: SimTime::ZERO + step.saturating_mul(i),
                    offered: None,
                });
                // Stop in LIFO order: flow 3 first.
                let stop_k = 4 + (3 - i);
                sim.stop_flow_at(FlowId(i), SimTime::ZERO + step.saturating_mul(stop_k));
            }
            sim.run_until(SimTime::ZERO + step.saturating_mul(8));
            Fig19Run {
                scheme,
                flow_series: std::mem::take(&mut sim.trace.flow_rate_series),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_time_detection() {
        let mk = |vals: &[f64]| -> Vec<Sample> {
            vals.iter()
                .enumerate()
                .map(|(i, &v)| Sample {
                    t: SimTime::from_micros(i as u64),
                    v,
                })
                .collect()
        };
        let s = mk(&[0.0, 50.0, 100.0, 100.0, 100.0]);
        assert_eq!(
            settle_time(&s, 100.0, 0.2),
            Some(SimTime::from_micros(2))
        );
        let s = mk(&[100.0, 0.0, 100.0]);
        assert_eq!(settle_time(&s, 100.0, 0.2), Some(SimTime::from_micros(2)));
        let s = mk(&[0.0, 0.0]);
        assert_eq!(settle_time(&s, 100.0, 0.2), None);
    }

    #[test]
    fn fig13_uni_scenario_converges_like_the_paper() {
        // The headline §6.2 result: queue stabilizes at Qref = 75 KB and
        // the uniform scenario's fair rate is ~3.33 Gb/s per flow (the
        // paper reports "3 Gb/s" on 10 GbE with three saturating clients).
        let runs = fig13(Scale::Quick);
        let uni_sim = runs
            .iter()
            .find(|r| r.profile == "sim" && r.scenario == "uni")
            .unwrap();
        assert!(
            (uni_sim.queue_mean - 75_000.0).abs() < 30_000.0,
            "queue mean {:.0} not near 75 KB",
            uni_sim.queue_mean
        );
        for (i, g) in uni_sim.goodput.iter().enumerate() {
            let ideal = 10e9 / 3.0 * (1000.0 / 1048.0);
            assert!(
                (g - ideal).abs() / ideal < 0.25,
                "flow {i}: {:.2} Gb/s vs ideal {:.2}",
                g / 1e9,
                ideal / 1e9
            );
        }
    }
}
