//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use rocc_sim::prelude::*;

proptest! {
    /// Serialization time is consistent with byte counts: doubling the
    /// bytes at least doubles (ceil-rounded) the time, and higher rates
    /// never serialize slower.
    #[test]
    fn serialization_time_monotone(
        bytes in 1u64..10_000_000,
        gbps in 1u64..400,
    ) {
        let r = BitRate::from_gbps(gbps);
        let t1 = r.serialization_time(bytes).as_nanos();
        let t2 = r.serialization_time(bytes * 2).as_nanos();
        prop_assert!(t2 >= 2 * t1 - 1, "t({bytes})={t1}, t({})={t2}", bytes * 2);
        let faster = BitRate::from_gbps(gbps * 2);
        prop_assert!(faster.serialization_time(bytes) <= r.serialization_time(bytes));
    }

    /// bytes_over is the (floor) inverse of serialization_time.
    #[test]
    fn bytes_over_inverts_serialization(
        bytes in 1u64..1_000_000,
        gbps in 1u64..200,
    ) {
        let r = BitRate::from_gbps(gbps);
        let t = r.serialization_time(bytes);
        let back = r.bytes_over(t);
        // Serialization time is ceil-rounded to whole nanoseconds, so the
        // inverse can overshoot by up to one nanosecond's worth of bytes.
        let ns_bytes = r.as_bps() / 8_000_000_000 + 1;
        prop_assert!(back >= bytes.saturating_sub(1) && back <= bytes + ns_bytes,
            "bytes {bytes} -> {t} -> {back}");
    }

    /// SimTime arithmetic: (a + d) - a == d for all representable values.
    #[test]
    fn time_add_sub_roundtrip(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a) + SimDuration::from_nanos(d);
        prop_assert_eq!((t - SimTime::from_nanos(a)).as_nanos(), d);
    }

    /// Rate scaling by a factor in [0, 1] never increases the rate.
    #[test]
    fn rate_scale_contracts(bps in 0u64..u64::MAX / 2, f in 0.0f64..1.0) {
        let r = BitRate::from_bps(bps);
        prop_assert!(r.scale(f) <= r);
    }
}

/// Random fan-in topologies: every host can route to every other host, and
/// the route's first hop is always a real neighbor one step closer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn routing_is_complete_and_consistent(
        hosts_per_switch in 1usize..4,
        switches in 2usize..5,
        extra_links in 0usize..4,
        flow in 0u64..1000,
    ) {
        let mut b = TopologyBuilder::new();
        let sws: Vec<NodeId> = (0..switches)
            .map(|i| b.add_switch(format!("s{i}"), NodeRole::Switch))
            .collect();
        // Chain the switches, then add extra parallel links for ECMP.
        for w in sws.windows(2) {
            b.connect(w[0], w[1], BitRate::from_gbps(40), SimDuration::from_micros(1));
        }
        for i in 0..extra_links {
            let a = sws[i % switches];
            let c = sws[(i + 1) % switches];
            if a != c {
                b.connect(a, c, BitRate::from_gbps(40), SimDuration::from_micros(1));
            }
        }
        let mut hosts = Vec::new();
        for (si, &sw) in sws.iter().enumerate() {
            for h in 0..hosts_per_switch {
                let id = b.add_host(format!("h{si}_{h}"));
                b.connect(id, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
                hosts.push(id);
            }
        }
        let t = b.build();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                let mut node = src;
                let mut hops = 0;
                // Walk the route; must reach dst within the diameter bound.
                while node != dst {
                    let port = t.route(node, dst, FlowId(flow));
                    prop_assert!(port.is_some(), "{node:?} cannot reach {dst:?}");
                    node = t.neighbor(node, port.unwrap());
                    hops += 1;
                    prop_assert!(hops <= switches + 2, "routing loop from {src:?} to {dst:?}");
                }
            }
        }
    }
}

/// Arbitrary flow mixes on a dumbbell complete losslessly, conserve bytes,
/// and never drop packets under PFC.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn lossless_delivery_conserves_bytes(
        sizes in proptest::collection::vec(1u64..400_000, 1..8),
        stagger_us in 0u64..100,
    ) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let dst = b.add_host("dst");
        b.connect(sw, dst, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..sizes.len() {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let mut sim = Sim::new(
            b.build(),
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        for (i, (&s, &size)) in srcs.iter().zip(&sizes).enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size,
                start: SimTime::from_micros(i as u64 * stagger_us),
                offered: None,
            });
        }
        prop_assert!(sim.run_until_flows_done(SimTime::from_millis(500)).is_complete());
        prop_assert_eq!(sim.trace.drops, 0);
        prop_assert_eq!(sim.trace.retx_bytes, 0);
        prop_assert_eq!(sim.trace.fcts.len(), sizes.len());
        for (i, &size) in sizes.iter().enumerate() {
            prop_assert_eq!(sim.trace.delivered_bytes(FlowId(i as u64)), size);
        }
        // FCT ordering sanity: every FCT at least the line-rate floor.
        for rec in &sim.trace.fcts {
            let floor = BitRate::from_gbps(10)
                .serialization_time(rec.size)
                .as_nanos();
            prop_assert!(rec.fct().as_nanos() >= floor / 2);
        }
    }

    /// Lossy mode with arbitrary tiny buffers: go-back-N still delivers
    /// every byte exactly once to the application (no gaps, no dupes in
    /// the in-order stream).
    #[test]
    fn lossy_go_back_n_delivers_everything(
        n_flows in 2usize..6,
        limit_kb in 5u64..40,
    ) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let dst = b.add_host("dst");
        b.connect(sw, dst, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..n_flows {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let mut cfg = SimConfig::default();
        cfg.buffer_mode = BufferMode::LossyTailDrop {
            limit_bytes: limit_kb * 1000,
        };
        let mut sim = Sim::new(
            b.build(),
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        let size = 200_000u64;
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        prop_assert!(
            sim.run_until_flows_done(SimTime::from_millis(2000)).is_complete(),
            "flows stuck with limit {limit_kb} KB (drops {})",
            sim.trace.drops
        );
        for i in 0..n_flows {
            prop_assert_eq!(sim.trace.delivered_bytes(FlowId(i as u64)), size);
        }
    }
}
