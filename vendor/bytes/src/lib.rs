//! Offline stand-in for the `bytes` crate.
//!
//! Implements the `Buf`/`BufMut` trait surface the workspace uses
//! (big-endian integer accessors plus slice copies), for `&[u8]` readers and
//! `Vec<u8>` writers. Semantics match upstream: accessors advance the cursor
//! and panic on underflow.

/// Read access to a contiguous, cursor-advancing byte buffer.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes into `dst`, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte, advancing.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`, advancing.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`, advancing.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`, advancing.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_big_endian() {
        let mut w: Vec<u8> = Vec::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(b"xyz");
        let mut r: &[u8] = &w;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u16();
    }
}
