//! Campaign supervisor: panic isolation, typed per-cell outcomes,
//! deterministic bounded retry, quarantine, and a crash-safe checkpoint
//! journal that makes sweeps resumable.
//!
//! A *campaign* is a grid of independent simulation cells (the
//! `scheme × seed` grids of [`crate::fct`], the fault grids of
//! [`crate::chaos`], the multi-seed sweeps of [`crate::observatory`]).
//! Before this module, one panicking or runaway cell aborted the whole
//! sweep and threw away every finished result. The [`Supervisor`] turns
//! that into graceful degradation:
//!
//! * every cell runs under [`crate::parallel::run_isolated`] — a panic
//!   becomes a typed [`CellOutcome::Panicked`] in that cell's slot;
//! * a cell returning a failed [`SimError`] verdict is classified as
//!   [`CellOutcome::BudgetExhausted`] (runtime budget guards: event
//!   ceiling, livelock detector) or [`CellOutcome::FailedVerdict`]
//!   (protocol-level failure, e.g. a PFC deadlock);
//! * panics are treated as *transient* (the sim itself is deterministic,
//!   but the environment is not: OOM-killed thread, fs hiccup during
//!   artifact IO) and retried under a deterministic bounded backoff;
//!   verdict failures are *persistent* — the simulation is deterministic,
//!   so rerunning them would reproduce the failure bit-for-bit and they
//!   are never retried;
//! * cells that still fail after retry land on the quarantine list of the
//!   [`CampaignReport`], which also renders the structured failure-report
//!   artifact;
//! * with a journal attached, every finished cell appends one flushed
//!   JSONL line keyed by its config hash; re-running the same campaign
//!   after a crash (or `SIGINT`/`SIGKILL`) reloads the journal and reuses
//!   completed cells, so the resumed campaign produces aggregates
//!   byte-identical to an uninterrupted run (`tests/supervisor.rs` proves
//!   this property under proptest, including across faulted seeds).
//!
//! Determinism: the supervisor never reorders results (they are collected
//! by input index, like [`crate::parallel::map_cells`]), never feeds
//! retry or cache state into a cell's inputs, and journal reuse replays
//! the exact encoded bytes of the first successful run — so caching,
//! retries and parallelism are all invisible in the output bytes.

use crate::parallel::{map_cells, run_isolated, ExecMode};
use rocc_sim::prelude::SimError;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How a supervised cell ended.
#[derive(Debug)]
pub enum CellOutcome<R> {
    /// The cell ran to completion (or was replayed from the journal) and
    /// produced a result.
    Ok(R),
    /// Every attempt panicked; the message is from the last attempt.
    Panicked {
        /// Panic message captured by the isolation layer.
        message: String,
    },
    /// The simulation returned a failed verdict for a protocol-level
    /// reason (deadlock, deadline, drained heap, invariant violation).
    /// Deterministic — never retried.
    FailedVerdict {
        /// The typed failure.
        error: SimError,
    },
    /// A runtime budget guard cut the cell off (event-count ceiling or
    /// livelock detector). Deterministic — never retried.
    BudgetExhausted {
        /// The typed failure ([`SimError::BudgetExhausted`] or
        /// [`SimError::Stalled`]).
        error: SimError,
    },
    /// The cell never ran: an earlier failure aborted a fail-fast
    /// campaign first.
    Skipped,
}

impl<R> CellOutcome<R> {
    /// True for [`CellOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }

    /// The outcome class as a stable lowercase tag (journal / report
    /// vocabulary).
    pub fn class(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Panicked { .. } => "panicked",
            CellOutcome::FailedVerdict { .. } => "failed_verdict",
            CellOutcome::BudgetExhausted { .. } => "budget_exhausted",
            CellOutcome::Skipped => "skipped",
        }
    }

    /// The failure detail as a JSON *value* (string for panics, the
    /// verdict object for sim failures); `None` for ok/skipped.
    pub fn detail_json(&self) -> Option<String> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { message } => {
                Some(format!("\"{}\"", json_escape(message)))
            }
            CellOutcome::FailedVerdict { error } | CellOutcome::BudgetExhausted { error } => {
                Some(error.to_json())
            }
            CellOutcome::Skipped => Some("\"skipped by fail-fast\"".to_string()),
        }
    }
}

/// Deterministic bounded-retry policy for transient (panic) failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per cell, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff in milliseconds; the wait before attempt `k + 1`
    /// doubles each time: `base << (k - 1)`, capped at
    /// [`RetryPolicy::MAX_BACKOFF_MS`].
    pub backoff_base_ms: u64,
}

impl RetryPolicy {
    /// Upper bound on any single backoff wait.
    pub const MAX_BACKOFF_MS: u64 = 2_000;

    /// One attempt, no retries.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
        }
    }

    /// Milliseconds to wait after failed attempt number `attempt`
    /// (1-based) before the next one.
    pub fn backoff_after_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(Self::MAX_BACKOFF_MS)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 25,
        }
    }
}

/// Encode/decode a cell result for the checkpoint journal. `encode` must
/// produce a single-line JSON value; `decode` must be strict — on any
/// anomaly (torn write, schema drift) it returns `None` and the cell is
/// simply re-run.
pub trait CellCodec<R> {
    /// Render the result as one JSON value without newlines.
    fn encode(&self, r: &R) -> String;
    /// Parse a previously encoded value; `None` rejects the cache entry.
    fn decode(&self, s: &str) -> Option<R>;
}

/// Codec for campaigns that never cache results (journal-less, or
/// failure bookkeeping only).
pub struct NoCache;

impl<R> CellCodec<R> for NoCache {
    fn encode(&self, _r: &R) -> String {
        "null".to_string()
    }
    fn decode(&self, _s: &str) -> Option<R> {
        None
    }
}

/// Codec built from an encode and a decode closure.
pub struct FnCodec<E, D>(pub E, pub D);

impl<R, E, D> CellCodec<R> for FnCodec<E, D>
where
    E: Fn(&R) -> String,
    D: Fn(&str) -> Option<R>,
{
    fn encode(&self, r: &R) -> String {
        (self.0)(r)
    }
    fn decode(&self, s: &str) -> Option<R> {
        (self.1)(s)
    }
}

/// One parsed line of a checkpoint journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Cell key (config hash plus human-readable suffix).
    pub key: String,
    /// Outcome class tag (`"ok"`, `"panicked"`, …).
    pub outcome: String,
    /// Attempts the recorded run took.
    pub attempts: u32,
    /// Raw encoded result value (ok lines only).
    pub result_raw: Option<String>,
}

impl JournalEntry {
    fn parse(line: &str) -> Option<JournalEntry> {
        // Envelope written by `journal_line`: key first, result (if any)
        // last. A line torn by a crash mid-write fails one of these
        // anchors (or decodes to garbage later) and is skipped — the cell
        // re-runs, which is always safe.
        if !line.starts_with("{\"key\":\"") || !line.ends_with('}') {
            return None;
        }
        let key = take_between(line, "{\"key\":\"", "\"")?.to_string();
        let outcome = take_between(line, "\"outcome\":\"", "\"")?.to_string();
        let attempts_str = take_between(line, "\"attempts\":", ",")
            .or_else(|| take_between(line, "\"attempts\":", "}"))?;
        let attempts: u32 = attempts_str.trim().parse().ok()?;
        let result_raw = if outcome == "ok" {
            let i = line.find("\"result\":")? + "\"result\":".len();
            Some(line[i..line.len() - 1].to_string())
        } else {
            None
        };
        Some(JournalEntry {
            key,
            outcome,
            attempts,
            result_raw,
        })
    }
}

/// Substring of `s` strictly between the first `start` marker and the
/// next `end` marker after it.
fn take_between<'a>(s: &'a str, start: &str, end: &str) -> Option<&'a str> {
    let i = s.find(start)? + start.len();
    let j = s[i..].find(end)? + i;
    Some(&s[i..j])
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Load a checkpoint journal, tolerating a missing file and a partial
/// trailing line (the crash case the journal exists for). Later entries
/// win on duplicate keys.
pub fn load_journal(path: &Path) -> Vec<JournalEntry> {
    let Ok(doc) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    doc.lines().filter_map(JournalEntry::parse).collect()
}

/// One supervised cell's record, in campaign input order.
#[derive(Debug)]
pub struct CellRecord<R> {
    /// The cell key (journal identity).
    pub key: String,
    /// How the cell ended.
    pub outcome: CellOutcome<R>,
    /// True if the result was replayed from the checkpoint journal
    /// instead of running.
    pub cached: bool,
    /// Attempts actually executed this campaign (0 for cached cells).
    pub attempts: u32,
}

/// The result of one supervised campaign.
#[derive(Debug)]
pub struct Campaign<R> {
    /// Per-cell records, in input order.
    pub records: Vec<CellRecord<R>>,
}

impl<R> Campaign<R> {
    /// True when every cell produced a result.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.outcome.is_ok())
    }

    /// Per-cell results in input order; failed cells are `None`.
    pub fn into_results(self) -> Vec<Option<R>> {
        self.records
            .into_iter()
            .map(|r| match r.outcome {
                CellOutcome::Ok(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    /// The result-type-erased campaign summary (counts, failures,
    /// quarantine) for reporting and exit-code decisions.
    pub fn report(&self) -> CampaignReport {
        let mut rep = CampaignReport {
            total: self.records.len(),
            ..CampaignReport::default()
        };
        for r in &self.records {
            match &r.outcome {
                CellOutcome::Ok(_) => {
                    rep.ok += 1;
                    if r.cached {
                        rep.cached += 1;
                    }
                }
                CellOutcome::Panicked { .. } => rep.panicked += 1,
                CellOutcome::FailedVerdict { .. } => rep.failed_verdict += 1,
                CellOutcome::BudgetExhausted { .. } => rep.budget_exhausted += 1,
                CellOutcome::Skipped => rep.skipped += 1,
            }
            if let Some(detail) = r.outcome.detail_json() {
                rep.failures.push(FailureEntry {
                    key: r.key.clone(),
                    class: r.outcome.class(),
                    attempts: r.attempts,
                    detail_json: detail,
                });
            }
        }
        rep
    }
}

/// One failed (or skipped) cell in the failure report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEntry {
    /// The cell key.
    pub key: String,
    /// Outcome class tag.
    pub class: &'static str,
    /// Attempts executed.
    pub attempts: u32,
    /// Failure detail as a raw JSON value.
    pub detail_json: String,
}

impl FailureEntry {
    fn to_json(&self) -> String {
        format!(
            "{{\"key\":\"{}\",\"class\":\"{}\",\"attempts\":{},\"detail\":{}}}",
            json_escape(&self.key),
            self.class,
            self.attempts,
            self.detail_json
        )
    }
}

/// Result-type-erased campaign summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Cells in the campaign.
    pub total: usize,
    /// Cells that produced a result (fresh or cached).
    pub ok: usize,
    /// Ok cells replayed from the journal.
    pub cached: usize,
    /// Cells whose every attempt panicked.
    pub panicked: usize,
    /// Cells with a protocol-level failed verdict.
    pub failed_verdict: usize,
    /// Cells cut off by a runtime budget guard.
    pub budget_exhausted: usize,
    /// Cells skipped by fail-fast.
    pub skipped: usize,
    /// Every non-ok cell, in input order.
    pub failures: Vec<FailureEntry>,
}

impl CampaignReport {
    /// True when every cell produced a result.
    pub fn all_ok(&self) -> bool {
        self.ok == self.total
    }

    /// The structured failure-report artifact (one JSON object).
    pub fn to_json(&self) -> String {
        let failures: Vec<String> = self.failures.iter().map(|f| f.to_json()).collect();
        format!(
            "{{\"schema\":\"rocc-campaign-report/v1\",\"total\":{},\"ok\":{},\
             \"cached\":{},\"panicked\":{},\"failed_verdict\":{},\
             \"budget_exhausted\":{},\"skipped\":{},\"failures\":[{}]}}",
            self.total,
            self.ok,
            self.cached,
            self.panicked,
            self.failed_verdict,
            self.budget_exhausted,
            self.skipped,
            failures.join(",")
        )
    }

    /// The quarantine artifact: cells that genuinely failed (skipped
    /// cells never ran, so they are not quarantined), as a JSON array.
    pub fn quarantine_json(&self) -> String {
        let q: Vec<String> = self
            .failures
            .iter()
            .filter(|f| f.class != "skipped")
            .map(|f| f.to_json())
            .collect();
        format!("[{}]", q.join(","))
    }
}

/// The campaign supervisor. Construct with [`Supervisor::new`], then
/// chain the builder methods, then [`Supervisor::run`].
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Execution mode for the cell grid.
    pub mode: ExecMode,
    /// Retry policy for transient (panic) failures.
    pub retry: RetryPolicy,
    /// Abort the campaign on the first failure: cells that have not
    /// started yet resolve to [`CellOutcome::Skipped`]. Strict in serial
    /// mode; best-effort under parallel execution (in-flight cells
    /// finish).
    pub fail_fast: bool,
    /// Checkpoint journal path. `None` disables caching and resume.
    pub journal: Option<PathBuf>,
}

impl Supervisor {
    /// A keep-going supervisor with the default retry policy and no
    /// journal.
    pub fn new(mode: ExecMode) -> Self {
        Supervisor {
            mode,
            retry: RetryPolicy::default(),
            fail_fast: false,
            journal: None,
        }
    }

    /// Attach a checkpoint journal (created on first use, appended on
    /// every completed cell, reloaded on the next run for resume).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Set fail-fast (default: keep going).
    pub fn with_fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = fail_fast;
        self
    }

    /// Set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Run a campaign. `cells` pairs each cell's journal key with its
    /// payload; `run_fn` executes one cell (`Err` carries the failed sim
    /// verdict); `codec` encodes/decodes results for the journal.
    ///
    /// Results come back in input order. With a journal attached, cells
    /// whose key already has a decodable `ok` line are replayed from the
    /// journal without running.
    pub fn run<T, R, F, C>(&self, cells: Vec<(String, T)>, codec: &C, run_fn: F) -> Campaign<R>
    where
        T: Send,
        R: Send,
        F: Fn(&T) -> Result<R, SimError> + Sync + Send,
        C: CellCodec<R> + Sync,
    {
        let mut cache: HashMap<String, String> = HashMap::new();
        if let Some(path) = &self.journal {
            for e in load_journal(path) {
                if e.outcome == "ok" {
                    if let Some(raw) = e.result_raw {
                        cache.insert(e.key, raw);
                    }
                } else {
                    // A newer failure line supersedes any earlier ok line
                    // for the same key (should not happen in practice —
                    // keys are deterministic — but last-wins is the rule).
                    cache.remove(&e.key);
                }
            }
        }
        let sink = self.journal.as_ref().and_then(|path| {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
                .map(Mutex::new)
        });
        let abort = AtomicBool::new(false);
        let tagged: Vec<(String, T, Option<String>)> = cells
            .into_iter()
            .map(|(key, payload)| {
                let hit = cache.get(&key).cloned();
                (key, payload, hit)
            })
            .collect();
        let records = map_cells(self.mode, tagged, |(key, payload, hit)| {
            if let Some(raw) = hit {
                if let Some(r) = codec.decode(&raw) {
                    return CellRecord {
                        key,
                        outcome: CellOutcome::Ok(r),
                        cached: true,
                        attempts: 0,
                    };
                }
            }
            if self.fail_fast && abort.load(Ordering::SeqCst) {
                return CellRecord {
                    key,
                    outcome: CellOutcome::Skipped,
                    cached: false,
                    attempts: 0,
                };
            }
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                match run_isolated(|| run_fn(&payload)) {
                    Ok(Ok(r)) => break CellOutcome::Ok(r),
                    Ok(Err(e)) if e.is_budget() => break CellOutcome::BudgetExhausted { error: e },
                    Ok(Err(e)) => break CellOutcome::FailedVerdict { error: e },
                    Err(p) => {
                        if attempts >= self.retry.max_attempts.max(1) {
                            break CellOutcome::Panicked { message: p.message };
                        }
                        let wait = self.retry.backoff_after_ms(attempts);
                        if wait > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(wait));
                        }
                    }
                }
            };
            if self.fail_fast && !outcome.is_ok() {
                abort.store(true, Ordering::SeqCst);
            }
            if let Some(sink) = &sink {
                let line = journal_line(&key, &outcome, attempts, codec);
                if let Ok(mut file) = sink.lock() {
                    let _ = file.write_all(line.as_bytes());
                    let _ = file.flush();
                }
            }
            CellRecord {
                key,
                outcome,
                cached: false,
                attempts,
            }
        });
        Campaign { records }
    }
}

/// Per-cell snapshot persistence for sub-cell crash recovery. One
/// `rocc-snapshot/v1` file per cell key, always holding the *latest*
/// checkpoint (each save atomically replaces the previous one via a
/// tmp-file + rename). Loads are digest-verified by
/// [`rocc_sim::snapshot::inspect`]; any anomaly — torn write, bit rot,
/// wrong version — yields `None` and the cell simply restarts from
/// scratch. Snapshots are deleted when their cell completes, so the
/// store only ever holds in-flight cells.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SnapshotStore { dir: dir.into() }
    }

    /// The snapshot file for a cell key. Keys are FNV-hashed so arbitrary
    /// key strings (slashes, spaces) map to safe fixed-width file names.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.snap", rocc_sim::snapshot::fnv1a(key.as_bytes())))
    }

    /// Persist `bytes` as the cell's latest checkpoint. Atomic: the bytes
    /// land in a tmp file first and replace the old snapshot via rename,
    /// so a crash mid-save leaves the previous checkpoint intact.
    /// Best-effort — a full disk degrades to coarser recovery, never to a
    /// failed cell.
    pub fn save(&self, key: &str, bytes: &[u8]) {
        let path = self.path_for(key);
        let _ = std::fs::create_dir_all(&self.dir);
        let tmp = path.with_extension("snap.tmp");
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Load the cell's journaled checkpoint, digest-verified. `None` on
    /// any anomaly (missing, truncated, corrupt) — the caller falls back
    /// to a fresh cell run. Note this validates the *container*; a stale
    /// snapshot from a different config is caught by `Sim::restore`'s
    /// seed/config-digest check at restore time.
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path_for(key)).ok()?;
        rocc_sim::snapshot::inspect(&bytes).ok()?;
        Some(bytes)
    }

    /// Drop the cell's checkpoint (called when the cell completes).
    pub fn remove(&self, key: &str) {
        let _ = std::fs::remove_file(self.path_for(key));
    }
}

/// Snapshot plumbing handed to each cell by [`Supervisor::run_resumable`]:
/// the previous crash's checkpoint (if one was journaled and survives
/// digest verification) and an owned sink for
/// `Sim::enable_auto_checkpoint`.
pub struct CellSnapshot {
    /// Digest-verified snapshot bytes journaled by a previous run of this
    /// cell, or `None` to start fresh. Feed to `Sim::restore` on an
    /// identically rebuilt `Sim`; if restore errors (stale config, deeper
    /// corruption), discard that `Sim`, rebuild, and run from the start —
    /// a failed restore leaves the target partially overwritten.
    pub resume: Option<Vec<u8>>,
    store: SnapshotStore,
    key: String,
}

impl CellSnapshot {
    /// An owned checkpoint sink suitable for `Sim::enable_auto_checkpoint`:
    /// every fired checkpoint atomically replaces this cell's journaled
    /// snapshot.
    pub fn sink(&self) -> rocc_sim::prelude::CheckpointSink {
        let store = self.store.clone();
        let key = self.key.clone();
        Box::new(move |_events, bytes| store.save(&key, bytes))
    }
}

impl Supervisor {
    /// Like [`Supervisor::run`], with sub-cell crash recovery: each cell
    /// receives a [`CellSnapshot`] carrying the latest journaled
    /// checkpoint from a previous (crashed or killed) campaign plus a
    /// sink for new checkpoints. Completed cells have their snapshot
    /// deleted; corrupt or stale snapshots fall back to a fresh cell run
    /// (never quarantine). Panic retries reload the latest checkpoint, so
    /// even an attempt that dies mid-cell resumes from where it got to.
    pub fn run_resumable<T, R, F, C>(
        &self,
        store: &SnapshotStore,
        cells: Vec<(String, T)>,
        codec: &C,
        run_fn: F,
    ) -> Campaign<R>
    where
        T: Send,
        R: Send,
        F: Fn(&T, CellSnapshot) -> Result<R, SimError> + Sync + Send,
        C: CellCodec<R> + Sync,
    {
        let keyed: Vec<(String, (String, T))> = cells
            .into_iter()
            .map(|(k, t)| (k.clone(), (k, t)))
            .collect();
        self.run(keyed, codec, |(key, payload)| {
            let snap = CellSnapshot {
                resume: store.load(key),
                store: store.clone(),
                key: key.clone(),
            };
            let out = run_fn(payload, snap);
            if out.is_ok() {
                store.remove(key); // cell finished; its checkpoint is spent
            }
            out
        })
    }
}

/// Render one journal line (newline-terminated) for a finished cell.
fn journal_line<R, C: CellCodec<R>>(
    key: &str,
    outcome: &CellOutcome<R>,
    attempts: u32,
    codec: &C,
) -> String {
    match outcome {
        CellOutcome::Ok(r) => format!(
            "{{\"key\":\"{}\",\"outcome\":\"ok\",\"attempts\":{},\"result\":{}}}\n",
            json_escape(key),
            attempts,
            codec.encode(r)
        ),
        other => format!(
            "{{\"key\":\"{}\",\"outcome\":\"{}\",\"attempts\":{},\"detail\":{}}}\n",
            json_escape(key),
            other.class(),
            attempts,
            other.detail_json().unwrap_or_else(|| "null".to_string())
        ),
    }
}

/// A fresh per-process temp path for journals and sweep artifacts in
/// tests and CI helpers (no tempdir dependency; the caller removes it).
pub fn scratch_path(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rocc-{}-{}-{}",
        tag,
        std::process::id(),
        n
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::SimTime;
    use std::sync::atomic::AtomicUsize;

    fn ok_codec() -> FnCodec<impl Fn(&u64) -> String, impl Fn(&str) -> Option<u64>> {
        FnCodec(|r: &u64| format!("{r}"), |s: &str| s.trim().parse().ok())
    }

    #[test]
    fn journal_entry_roundtrip_and_torn_line_tolerance() {
        let ok = "{\"key\":\"abc/rep0\",\"outcome\":\"ok\",\"attempts\":1,\"result\":{\"x\":[1,2]}}";
        let e = JournalEntry::parse(ok).unwrap();
        assert_eq!(e.key, "abc/rep0");
        assert_eq!(e.outcome, "ok");
        assert_eq!(e.attempts, 1);
        assert_eq!(e.result_raw.as_deref(), Some("{\"x\":[1,2]}"));

        let failed =
            "{\"key\":\"abc/rep1\",\"outcome\":\"panicked\",\"attempts\":3,\"detail\":\"boom\"}";
        let e = JournalEntry::parse(failed).unwrap();
        assert_eq!(e.outcome, "panicked");
        assert_eq!(e.result_raw, None);

        // Torn writes: wherever the line is cut, it must never replay as
        // the original cell. Most cuts fail a parse anchor outright; a
        // cut can land just after a *nested* `}` and still parse, but
        // then carries a torn `result_raw` that a strict codec rejects —
        // the cache-load path drops it and the cell re-runs.
        for cut in 1..ok.len() {
            let torn = &ok[..cut];
            match JournalEntry::parse(torn) {
                None => {}
                Some(e) => assert_ne!(
                    e.result_raw.as_deref(),
                    Some("{\"x\":[1,2]}"),
                    "cut at {cut} replayed the full payload: {torn}"
                ),
            }
        }
        assert_eq!(JournalEntry::parse(""), None);
        assert_eq!(JournalEntry::parse("garbage"), None);
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 10,
        };
        assert_eq!(p.backoff_after_ms(1), 10);
        assert_eq!(p.backoff_after_ms(2), 20);
        assert_eq!(p.backoff_after_ms(3), 40);
        assert_eq!(p.backoff_after_ms(30), RetryPolicy::MAX_BACKOFF_MS);
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
    }

    #[test]
    fn transient_panics_are_retried_persistent_verdicts_are_not() {
        let panic_calls = AtomicUsize::new(0);
        let verdict_calls = AtomicUsize::new(0);
        let sup = Supervisor::new(ExecMode::Serial).with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
        });
        let cells = vec![
            ("cell/panic".to_string(), 0u64),
            ("cell/verdict".to_string(), 1u64),
            ("cell/ok".to_string(), 2u64),
        ];
        let campaign = sup.run(cells, &NoCache, |&c| match c {
            0 => {
                panic_calls.fetch_add(1, Ordering::SeqCst);
                panic!("transient");
            }
            1 => {
                verdict_calls.fetch_add(1, Ordering::SeqCst);
                Err(SimError::Drained {
                    at: SimTime::from_millis(1),
                    incomplete_flows: 4,
                })
            }
            _ => Ok(c * 10),
        });
        assert_eq!(panic_calls.load(Ordering::SeqCst), 3, "3 attempts");
        assert_eq!(verdict_calls.load(Ordering::SeqCst), 1, "no retry");
        assert!(!campaign.all_ok());
        let rep = campaign.report();
        assert_eq!((rep.total, rep.ok, rep.panicked, rep.failed_verdict), (3, 1, 1, 1));
        assert_eq!(campaign.records[0].attempts, 3);
        assert_eq!(campaign.records[1].attempts, 1);
        assert!(campaign.records[2].outcome.is_ok());
        assert!(rep.to_json().contains("\"class\":\"panicked\""));
        assert!(rep.to_json().contains("\"verdict\":\"drained\""));
        assert!(rep.quarantine_json().contains("cell/verdict"));
    }

    #[test]
    fn fail_fast_skips_later_cells_in_serial_mode() {
        let sup = Supervisor::new(ExecMode::Serial)
            .with_retry(RetryPolicy::no_retry())
            .with_fail_fast(true);
        let cells: Vec<(String, u64)> =
            (0..4).map(|i| (format!("c{i}"), i)).collect();
        let campaign = sup.run(cells, &NoCache, |&c| {
            if c == 1 {
                panic!("die");
            }
            Ok(c)
        });
        assert!(campaign.records[0].outcome.is_ok());
        assert_eq!(campaign.records[1].outcome.class(), "panicked");
        assert_eq!(campaign.records[2].outcome.class(), "skipped");
        assert_eq!(campaign.records[3].outcome.class(), "skipped");
        let rep = campaign.report();
        assert_eq!(rep.skipped, 2);
        // Skipped cells never ran, so they are not quarantined.
        assert!(!rep.quarantine_json().contains("\"key\":\"c2\""));
    }

    #[test]
    fn journal_replays_completed_cells_byte_identically() {
        let journal = scratch_path("supervisor-journal");
        let runs = AtomicUsize::new(0);
        let run_fn = |&c: &u64| {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok(c * 3)
        };
        let cells = |n: u64| -> Vec<(String, u64)> {
            (0..n).map(|i| (format!("cell{i}"), i)).collect()
        };
        let sup = Supervisor::new(ExecMode::Serial).with_journal(&journal);

        let first = sup.run(cells(3), &ok_codec(), run_fn);
        assert!(first.all_ok());
        assert_eq!(runs.load(Ordering::SeqCst), 3);

        // Same campaign again: everything replays from the journal.
        let second = sup.run(cells(3), &ok_codec(), run_fn);
        assert_eq!(runs.load(Ordering::SeqCst), 3, "no cell re-ran");
        assert_eq!(second.report().cached, 3);
        assert_eq!(
            first.into_results(),
            second.into_results(),
            "cached results must be identical"
        );

        // A grown campaign runs only the new cells.
        let third = sup.run(cells(5), &ok_codec(), run_fn);
        assert_eq!(runs.load(Ordering::SeqCst), 5);
        assert_eq!(third.report().cached, 3);
        assert!(third.all_ok());

        // Torn trailing line (simulated crash mid-append): the damaged
        // cell re-runs, the rest stay cached.
        let doc = std::fs::read_to_string(&journal).unwrap();
        let cut = doc.len() - 7;
        std::fs::write(&journal, &doc[..cut]).unwrap();
        let fourth = sup.run(cells(5), &ok_codec(), run_fn);
        assert!(fourth.all_ok());
        assert_eq!(fourth.report().cached, 4);
        assert_eq!(runs.load(Ordering::SeqCst), 6);

        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn failed_cells_are_journaled_but_not_cached() {
        let journal = scratch_path("supervisor-failjournal");
        let sup = Supervisor::new(ExecMode::Serial)
            .with_retry(RetryPolicy::no_retry())
            .with_journal(&journal);
        let attempt = AtomicUsize::new(0);
        let run_fn = |&c: &u64| {
            if c == 0 && attempt.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first time only");
            }
            Ok(c + 100)
        };
        let cells = vec![("flaky".to_string(), 0u64), ("solid".to_string(), 1u64)];
        let first = sup.run(cells.clone(), &ok_codec(), run_fn);
        assert!(!first.all_ok());
        let doc = std::fs::read_to_string(&journal).unwrap();
        assert!(doc.contains("\"outcome\":\"panicked\""));
        // Resume: the failed cell re-runs (and now succeeds); the ok cell
        // replays from the journal.
        let second = sup.run(cells, &ok_codec(), run_fn);
        assert!(second.all_ok());
        assert_eq!(second.report().cached, 1);
        let _ = std::fs::remove_file(&journal);
    }
}
