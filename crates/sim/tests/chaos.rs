//! Chaos suite: the fault-injection layer under the real RoCC stack.
//!
//! Three claims are pinned down here:
//!
//! 1. **Determinism** — a faulted run is a pure function of the seed: the
//!    same (seed, plan) replays bit-for-bit, and the fault layer draws
//!    from its own PRNG, so an *inert* plan never perturbs the simulation.
//! 2. **Liveness under data-plane damage** — every flow completes despite
//!    random packet loss, corruption, and a mid-run link flap, courtesy of
//!    go-back-N.
//! 3. **Control-plane robustness** — with every CNP destroyed from some
//!    instant on, the RP's fast recovery alone returns a throttled flow
//!    to line rate (the paper's §3.5 robustness claim).

use proptest::prelude::*;
use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

fn rocc_sim_with(topo: Topology, cfg: SimConfig) -> Sim {
    Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    )
}

/// Everything observable a run produces, for bit-for-bit comparison.
#[derive(Debug, PartialEq)]
struct RunSummary {
    events: u64,
    fcts: Vec<(FlowId, u64)>,
    drops: u64,
    unroutable: u64,
    retx: u64,
    faults: FaultCounters,
}

fn summarize(sim: &Sim) -> RunSummary {
    RunSummary {
        events: sim.events_processed(),
        fcts: sim
            .trace
            .fcts
            .iter()
            .map(|r| (r.flow, r.end.as_nanos()))
            .collect(),
        drops: sim.trace.drops,
        unroutable: sim.trace.unroutable_drops,
        retx: sim.trace.retx_bytes,
        faults: sim.trace.faults,
    }
}

fn faulted_run(seed: u64, loss: f64, corrupt: f64, flap_at_us: u64) -> RunSummary {
    let (topo, srcs, dst) = dumbbell(4, 10);
    let flap_link = topo.out_link(srcs[0], PortId(0));
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.fault_plan = FaultPlan::default()
        .with_loss(FaultTarget::Data, loss)
        .with_corruption(FaultTarget::All, corrupt)
        .with_flap(
            flap_link,
            SimTime::from_micros(flap_at_us),
            SimTime::from_micros(flap_at_us + 300),
        );
    let mut sim = rocc_sim_with(topo, cfg);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 200_000,
            start: SimTime::from_micros(i as u64 * 5),
            offered: None,
        });
    }
    let _ = sim.run_until_flows_done(SimTime::from_millis(200));
    summarize(&sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same fault plan ⇒ identical run, down to every fault
    /// counter and FCT nanosecond, across arbitrary seeds and fault
    /// intensities (including the flap edge racing live traffic).
    #[test]
    fn chaos_runs_are_deterministic(
        seed in 0u64..u64::MAX,
        loss in 0.0f64..0.05,
        corrupt in 0.0f64..0.02,
        flap_at_us in 100u64..2_000,
    ) {
        let a = faulted_run(seed, loss, corrupt, flap_at_us);
        let b = faulted_run(seed, loss, corrupt, flap_at_us);
        prop_assert_eq!(a, b);
    }

    /// Changing only the seed changes fault outcomes (the plan is
    /// probabilistic, not a fixed schedule): at 2% loss over hundreds of
    /// packets, two seeds virtually never lose identical packet sets.
    #[test]
    fn seeds_decorrelate_fault_outcomes(seed in 0u64..u64::MAX / 2) {
        let a = faulted_run(seed, 0.02, 0.0, 1_000);
        let b = faulted_run(seed + 1, 0.02, 0.0, 1_000);
        // Both complete regardless; the realized fault pattern differs.
        prop_assert_eq!(a.fcts.len(), 4);
        prop_assert_eq!(b.fcts.len(), 4);
        prop_assert!(a.faults.data_lost > 0 && b.faults.data_lost > 0);
    }
}

fn dup_reorder_run(seed: u64, dup: f64, reorder: f64) -> RunSummary {
    let (topo, srcs, dst) = dumbbell(4, 10);
    let mut cfg = SimConfig::default();
    cfg.seed = seed;
    cfg.fault_plan = FaultPlan::default()
        .with_duplication(FaultTarget::Data, dup)
        .with_reorder(FaultTarget::All, reorder, SimDuration::from_micros(5));
    let mut sim = rocc_sim_with(topo, cfg);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 200_000,
            start: SimTime::from_micros(i as u64 * 5),
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(200))
        .assert_complete();
    summarize(&sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Duplication and reordering (of data *and* control, so ACKs and NACKs
    /// arrive late and out of order) never stall go-back-N: duplicates are
    /// ignored by the cumulative receiver, stale NACKs cannot roll the
    /// sender window backwards, and the whole thing replays bit-for-bit.
    #[test]
    fn duplication_and_reordering_never_stall_go_back_n(
        seed in 0u64..u64::MAX,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.2,
    ) {
        let a = dup_reorder_run(seed, dup, reorder);
        prop_assert_eq!(a.fcts.len(), 4, "flows incomplete: {:?}", a);
        let b = dup_reorder_run(seed, dup, reorder);
        prop_assert_eq!(a, b);
    }
}

/// High-rate duplication + reordering with a fixed seed: both fault classes
/// demonstrably fire, delivery stays exact, and nothing is double-counted
/// as delivered payload.
#[test]
fn duplicates_and_reordered_packets_are_counted_and_harmless() {
    let s = dup_reorder_run(11, 0.25, 0.15);
    assert_eq!(s.fcts.len(), 4);
    assert!(s.faults.duplicated > 0, "duplication plan never fired: {s:?}");
    assert!(s.faults.reordered > 0, "reorder plan never fired: {s:?}");
    assert_eq!(s.unroutable, 0);
}

/// 1% uniform data loss + corruption + a link flap mid-transfer: go-back-N
/// still delivers every byte of every flow.
#[test]
fn all_flows_complete_despite_loss_and_flap() {
    let s = faulted_run(7, 0.01, 0.005, 800);
    assert_eq!(s.fcts.len(), 4, "flows did not all complete: {s:?}");
    assert!(s.faults.data_lost > 0, "loss plan never fired");
    assert!(
        s.faults.link_down_drops > 0,
        "flap never killed an in-flight packet"
    );
    assert!(s.retx > 0, "loss recovery must retransmit");
    assert_eq!(s.unroutable, 0);
}

/// An inert fault plan is exactly free: a config whose plan contains a
/// zero-probability spec (active layer, RNG consulted) produces the very
/// same run as the default empty plan — the fault PRNG is independent of
/// the kernel PRNG, so merely enabling the layer perturbs nothing.
#[test]
fn inert_fault_plans_leave_runs_bit_identical() {
    let run = |plan: FaultPlan| {
        let (topo, srcs, dst) = dumbbell(3, 10);
        let mut cfg = SimConfig::default();
        cfg.fault_plan = plan;
        let mut sim = rocc_sim_with(topo, cfg);
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 300_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        summarize(&sim)
    };
    let baseline = run(FaultPlan::default());
    let zero_prob = run(
        FaultPlan::default()
            .with_loss(FaultTarget::All, 0.0)
            .with_corruption(FaultTarget::Cnp, 0.0),
    );
    assert_eq!(baseline.faults.total(), 0);
    assert_eq!(baseline, zero_prob);
}

/// Total CNP blackout: two RoCC flows share a 40G bottleneck, so flow 0 is
/// throttled near the 20G fair share. At t₁ flow 1 stops and *every* CNP
/// is destroyed from then on — no feedback can ever raise flow 0's rate.
/// Fast recovery (Alg. 2) must uninstall the limiter on its own and flow 0
/// must end up transmitting at line rate.
#[test]
fn rocc_recovers_line_rate_after_total_cnp_blackout() {
    let blackout = SimTime::from_millis(6);
    let horizon = SimTime::from_millis(14);
    let (topo, srcs, dst) = dumbbell(2, 40);
    let line = BitRate::from_gbps(40);
    let mut cfg = SimConfig::default();
    cfg.fault_plan =
        FaultPlan::default().with_loss_window(FaultTarget::Cnp, 1.0, blackout, SimTime::MAX);
    let mut sim = rocc_sim_with(topo, cfg);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.stop_flow_at(FlowId(1), blackout);
    // Throttled-phase goodput over the converged half of the shared phase
    // (the instantaneous RP rate oscillates with recovery doublings, so
    // goodput is the stable observable): must be near the 20G fair share.
    let shared_from = SimTime::from_millis(3);
    sim.run_until(shared_from);
    let shared_base = sim.trace.delivered_bytes(FlowId(0));
    sim.run_until(blackout);
    let shared_w = blackout.saturating_since(shared_from).as_secs_f64();
    let shared_goodput =
        (sim.trace.delivered_bytes(FlowId(0)) - shared_base) as f64 * 8.0 / shared_w;
    assert!(
        shared_goodput < 30e9,
        "flow 0 must be throttled while sharing: {:.2} Gb/s",
        shared_goodput / 1e9
    );
    // Give recovery a couple of milliseconds (~15 doublings at 100 µs),
    // then measure goodput over the tail.
    let measure_from = SimTime::from_millis(10);
    sim.run_until(measure_from);
    let base = sim.trace.delivered_bytes(FlowId(0));
    sim.run_until(horizon);
    assert!(
        sim.trace.faults.ctrl_lost > 0,
        "the blackout must actually destroy CNPs"
    );
    let final_rate = sim.host(srcs[0]).cc_rate(FlowId(0)).expect("flow 0 live");
    assert_eq!(
        final_rate.rate, line,
        "rate limiter still installed after blackout recovery"
    );
    let w = horizon.saturating_since(measure_from).as_secs_f64();
    let goodput = (sim.trace.delivered_bytes(FlowId(0)) - base) as f64 * 8.0 / w;
    // Payload share of the wire rate is 1000/1048.
    assert!(
        goodput > 0.9 * 40e9 * (1000.0 / 1048.0),
        "post-blackout goodput only {:.2} Gb/s",
        goodput / 1e9
    );
}

/// Host crash/restart under RoCC: the crashed sender loses all soft state,
/// go-back-N restarts from the last cumulative ACK, and both flows still
/// complete (the victim just finishes later).
#[test]
fn flows_survive_host_crash_and_restart() {
    let (topo, srcs, dst) = dumbbell(2, 10);
    let mut cfg = SimConfig::default();
    cfg.fault_plan = FaultPlan::default().with_host_crash(
        srcs[0],
        SimTime::from_micros(400),
        SimTime::from_micros(900),
    );
    let mut sim = rocc_sim_with(topo, cfg);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 400_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    assert!(
        sim.run_until_flows_done(SimTime::from_millis(200)).is_complete(),
        "flows stuck after crash: {:?}",
        sim.trace.faults
    );
    assert_eq!(sim.trace.fcts.len(), 2);
    assert!(
        sim.trace.faults.host_down_drops > 0 || sim.trace.retx_bytes > 0,
        "crash had no observable effect"
    );
}
