//! Property-based tests for the statistics utilities.

use proptest::prelude::*;
use rocc_stats::{
    bin_index, convergence_time, histogram_distance, jain_fairness, mean_ci95, percentile,
    summarize,
};

proptest! {
    /// Percentile is monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(
        xs in proptest::collection::vec(-1e9f64..1e9, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile(&xs, lo).unwrap();
        let p_hi = percentile(&xs, hi).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
        let s = summarize(&xs).unwrap();
        prop_assert!(p_lo >= s.min - 1e-9 && p_hi <= s.max + 1e-9);
    }

    /// Summary invariants: min ≤ mean ≤ max; SD is translation-invariant.
    #[test]
    fn summary_invariants(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        shift in -1e6f64..1e6,
    ) {
        let s = summarize(&xs).unwrap();
        prop_assert!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s2 = summarize(&shifted).unwrap();
        prop_assert!((s.std_dev - s2.std_dev).abs() < 1e-3_f64.max(s.std_dev * 1e-9));
        prop_assert!((s2.mean - (s.mean + shift)).abs() < 1e-3);
    }

    /// Confidence interval shrinks (weakly) as identical data is repeated,
    /// and always covers the mean of constant data exactly.
    #[test]
    fn ci_of_constant_data_is_zero(v in -1e6f64..1e6, n in 2usize..20) {
        let reps = vec![v; n];
        let ci = mean_ci95(&reps).unwrap();
        prop_assert!((ci.mean - v).abs() < 1e-9);
        prop_assert!(ci.ci95.abs() < 1e-9);
    }

    /// Binning: every size lands in exactly one bin, and bins partition
    /// the size axis in order.
    #[test]
    fn bins_partition(
        mut edges in proptest::collection::vec(1u64..1_000_000, 1..10),
        size in 0u64..2_000_000,
    ) {
        edges.sort_unstable();
        edges.dedup();
        let i = bin_index(&edges, size);
        prop_assert!(i < edges.len());
        if size <= edges[0] {
            prop_assert_eq!(i, 0);
        }
        if size > *edges.last().unwrap() {
            prop_assert_eq!(i, edges.len() - 1);
        }
        if i > 0 {
            prop_assert!(size > edges[i - 1]);
        }
    }

    /// Jain's index is scale-invariant and within [1/n, 1].
    #[test]
    fn jain_bounds_and_scale_invariance(
        xs in proptest::collection::vec(0.0f64..1e9, 1..50),
        k in 0.001f64..1000.0,
    ) {
        let j = jain_fairness(&xs).unwrap();
        let n = xs.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9 && j <= 1.0 + 1e-9, "j = {j}");
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let j2 = jain_fairness(&scaled).unwrap();
        prop_assert!((j - j2).abs() < 1e-6);
    }

    /// A step series that jumps to the target and stays there converges at
    /// exactly the step time, for any step position and target.
    #[test]
    fn convergence_detects_step(
        step_at in 1usize..50,
        tail in 1usize..50,
        target in 1.0f64..1e9,
    ) {
        let series: Vec<(f64, f64)> = (0..step_at + tail)
            .map(|i| (i as f64, if i < step_at { 0.0 } else { target }))
            .collect();
        let t = convergence_time(&series, target, 0.05).unwrap();
        prop_assert_eq!(t, Some(step_at as f64));
    }

    /// A series oscillating outside the tolerance band never converges;
    /// damping it to within the band converges at the first damped sample.
    #[test]
    fn convergence_rejects_oscillation(
        n in 4usize..60,
        target in 1.0f64..1e6,
    ) {
        let osc: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, if i % 2 == 0 { target * 1.5 } else { target * 0.5 }))
            .collect();
        prop_assert_eq!(convergence_time(&osc, target, 0.1).unwrap(), None);
        let damped: Vec<(f64, f64)> = osc
            .iter()
            .map(|&(t, v)| (t, target + (v - target) * 0.01))
            .collect();
        prop_assert_eq!(convergence_time(&damped, target, 0.1).unwrap(), Some(0.0));
    }

    /// Histogram distance is symmetric, bounded to [0, 1], zero on
    /// identical shapes, and invariant under count scaling.
    #[test]
    fn histogram_distance_symmetric_and_bounded(
        a in proptest::collection::vec((0u64..1000, 1u64..100), 1..20),
        b in proptest::collection::vec((0u64..1000, 1u64..100), 1..20),
        k in 2u64..10,
    ) {
        // Dedup lower bounds (the API expects one count per bucket bound).
        let dedup = |v: &[(u64, u64)]| {
            let mut m = std::collections::BTreeMap::new();
            for &(lo, c) in v {
                *m.entry(lo).or_insert(0u64) += c;
            }
            m.into_iter().collect::<Vec<_>>()
        };
        let (a, b) = (dedup(&a), dedup(&b));
        let d_ab = histogram_distance(&a, &b).unwrap();
        let d_ba = histogram_distance(&b, &a).unwrap();
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!(histogram_distance(&a, &a).unwrap() < 1e-12);
        let scaled: Vec<(u64, u64)> = a.iter().map(|&(lo, c)| (lo, c * k)).collect();
        prop_assert!(histogram_distance(&a, &scaled).unwrap() < 1e-9);
    }
}
