//! The discrete-event engine.
//!
//! A single event queue drives the whole network: a hierarchical timing
//! wheel by default, or the original binary heap as a differential oracle
//! (`ROCC_SCHEDULER=heap`; see [`crate::sched`] and DESIGN.md §3j). Events
//! at the same instant are ordered by insertion sequence number, making
//! every run bit-for-bit deterministic for a given seed — both backends
//! realize the identical `(at, seq)` total order.
//!
//! Packets in flight live in the kernel's [`PacketSlab`]; the dominant
//! `Arrive` event carries a 4-byte [`PacketRef`] instead of the ~560-byte
//! `Packet` itself, so every scheduler move shifts a small fixed-size key
//! (see DESIGN.md §3e).

use crate::cc::{FeedbackEvent, HostCcFactory, SwitchCcFactory};
use crate::config::SimConfig;
use crate::fastmap::FxHashMap;
use crate::fault::{FaultDecision, FaultEvent, FaultState, FaultTarget};
use crate::host::Host;
use crate::packet::{FlowId, PacketKind};
use crate::profiler::{Phase, PhaseProfiler, ProfileContext};
use crate::sanitizer::{
    scan_pause_graph, AuditView, PauseReport, RunVerdict, SanLedger, Sanitizer, SimError,
    DEFAULT_AUDIT_PERIOD,
};
use crate::sched::{Backend, Scheduled, Scheduler, SchedulerImpl};
use crate::slab::{PacketRef, PacketSlab};
use crate::snapshot::{self, SnapReader, SnapWriter, SnapshotError};
use crate::switch::Switch;
use crate::telemetry::{DropCause, EventMask, SimEvent, SimProfile};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, NodeRole, PortId, Topology};
use crate::trace::Trace;
use crate::units::BitRate;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything that can happen.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet reaches the receiving end of `link`. The packet lives in
    /// the kernel's slab; the event carries only its ref.
    Arrive {
        /// The traversed link.
        link: LinkId,
        /// Slab ref of the packet in flight.
        pr: PacketRef,
    },
    /// A switch egress port finished serializing a packet.
    SwitchTxDone {
        /// The switch.
        node: NodeId,
        /// The egress port.
        port: PortId,
    },
    /// A host NIC finished serializing a packet.
    HostTxDone {
        /// The host.
        node: NodeId,
    },
    /// A host pacing wake-up.
    HostWake {
        /// The host.
        node: NodeId,
    },
    /// Periodic switch-CC timer (RoCC fair-rate computation).
    CpTimer {
        /// The switch.
        node: NodeId,
        /// The port whose CC ticks.
        port: PortId,
    },
    /// A per-flow host timer (CC tokens 0..=2, transport RTO token 3).
    HostCcTimer {
        /// The host.
        node: NodeId,
        /// The flow.
        flow: FlowId,
        /// Timer slot.
        token: u8,
        /// Generation at arming time; stale generations are ignored.
        gen: u64,
    },
    /// RP-delayed congestion feedback delivery to a sender flow.
    Feedback {
        /// The host.
        node: NodeId,
        /// The flow.
        flow: FlowId,
        /// The feedback.
        fb: FeedbackEvent,
    },
    /// A workload flow becomes active.
    FlowStart {
        /// Index into the registered flow list.
        idx: usize,
    },
    /// A long-running flow is stopped.
    FlowStop {
        /// The flow.
        flow: FlowId,
    },
    /// Periodic trace sampling tick.
    Sample,
    /// A scheduled fault transition (link flap edge, host pause / crash /
    /// restore) from the run's [`crate::fault::FaultPlan`].
    Fault(FaultEvent),
}

impl Event {
    /// Index into [`crate::profiler::EVENT_KIND_NAMES`] for the
    /// profiler's dispatch mix.
    pub fn kind_idx(&self) -> usize {
        match self {
            Event::Arrive { .. } => 0,
            Event::SwitchTxDone { .. } => 1,
            Event::HostTxDone { .. } => 2,
            Event::HostWake { .. } => 3,
            Event::CpTimer { .. } => 4,
            Event::HostCcTimer { .. } => 5,
            Event::Feedback { .. } => 6,
            Event::FlowStart { .. } => 7,
            Event::FlowStop { .. } => 8,
            Event::Sample => 9,
            Event::Fault(_) => 10,
        }
    }
}

/// Shared mutable engine state handed to node handlers: the clock, the
/// event queue, the RNG, and the global configuration.
pub struct Kernel {
    /// Current simulation time.
    pub now: SimTime,
    /// Global configuration.
    pub config: SimConfig,
    /// Deterministic run RNG.
    pub rng: StdRng,
    /// Fault-injection runtime state: the plan, a dedicated PRNG independent
    /// of [`Kernel::rng`], and which links/hosts are currently down.
    pub faults: FaultState,
    /// Byte-conservation ledger for the invariant sanitizer. A single
    /// predictable branch per hook while disabled (the default).
    pub san: SanLedger,
    /// Arena of packets on the wire or parked in switch queues; `Arrive`
    /// events and switch queues hold [`PacketRef`]s into it.
    pub packets: PacketSlab,
    /// Phase profiler and scheduler introspection. A single predictable
    /// branch per hook while disabled (the default); node handlers mark
    /// their phases through the `&mut Kernel` they already receive.
    pub prof: PhaseProfiler,
    sched: SchedulerImpl,
    seq: u64,
    peak_heap: usize,
    /// How many [`Kernel::schedule`] calls requested a timestamp below
    /// `now` and were clamped forward. A scheme that schedules into the
    /// past is buggy; this makes it observable instead of silent (always
    /// counted — one cold branch — with the telemetry event publication
    /// gated on the sanitizer mask).
    past_due_clamps: u64,
    /// The requested (pre-clamp) timestamp of the most recent clamp.
    last_clamp_requested: SimTime,
}

impl Kernel {
    fn new(config: SimConfig, n_links: usize, n_nodes: usize) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let faults = FaultState::new(config.fault_plan.clone(), config.seed, n_links, n_nodes);
        Kernel {
            now: SimTime::ZERO,
            config,
            rng,
            faults,
            san: SanLedger::default(),
            packets: PacketSlab::new(),
            prof: PhaseProfiler::default(),
            sched: SchedulerImpl::new(Backend::from_env()),
            seq: 0,
            peak_heap: 0,
            past_due_clamps: 0,
            last_clamp_requested: SimTime::ZERO,
        }
    }

    /// Schedule `ev` at absolute time `at` (clamped to be ≥ now; the
    /// clamp is counted in [`Kernel::past_due_clamps`] — well-behaved
    /// schemes never trigger it, and the golden-seed tests assert zero).
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        let prof_prev = self.prof.push_begin();
        if at < self.now {
            self.past_due_clamps += 1;
            self.last_clamp_requested = at;
        }
        let at = at.max(self.now);
        if self.san.on() {
            if let Event::Arrive { pr, .. } = &ev {
                let wire = self.packets.get(*pr).wire_bytes();
                self.san.heap_add(wire);
            }
        }
        self.seq += 1;
        self.sched.push(Scheduled {
            at,
            seq: self.seq,
            ev,
        });
        if self.sched.len() > self.peak_heap {
            self.peak_heap = self.sched.len();
        }
        self.prof.push_end(prof_prev);
    }

    fn pop(&mut self) -> Option<Scheduled> {
        let s = self.sched.pop();
        if self.san.on() {
            if let Some(s) = &s {
                if let Event::Arrive { pr, .. } = &s.ev {
                    let wire = self.packets.get(*pr).wire_bytes();
                    self.san.heap_sub(wire);
                }
            }
        }
        s
    }

    /// Put a popped-but-undispatched event back without consuming a new
    /// sequence number (its original ordering is preserved: it was the
    /// queue minimum and becomes the head again).
    fn requeue(&mut self, s: Scheduled) {
        if self.san.on() {
            if let Event::Arrive { pr, .. } = &s.ev {
                let wire = self.packets.get(*pr).wire_bytes();
                self.san.heap_add(wire);
            }
        }
        self.sched.requeue(s);
        if self.sched.len() > self.peak_heap {
            self.peak_heap = self.sched.len();
        }
    }

    /// Number of pending events (diagnostics).
    pub fn pending(&self) -> usize {
        self.sched.len()
    }

    /// Largest event-queue length observed so far (self-profiling).
    pub fn peak_pending(&self) -> usize {
        self.peak_heap
    }

    /// How many [`Kernel::schedule`] calls were clamped forward from a
    /// past-due timestamp (see the field docs; zero on healthy runs).
    pub fn past_due_clamps(&self) -> u64 {
        self.past_due_clamps
    }

    /// The scheduler backend currently driving the run.
    pub fn scheduler_backend(&self) -> Backend {
        self.sched.backend()
    }

    /// Scheduler introspection counters (cascades/rebases; all zero for
    /// the heap backend).
    pub fn scheduler_stats(&self) -> crate::sched::SchedStats {
        self.sched.stats()
    }

    /// Swap the scheduler backend in place, migrating every pending
    /// event. Pops drain in `(at, seq)` order and pushes re-insert in
    /// that same order, so the schedule is preserved exactly — tests use
    /// this to pit the backends against each other without the
    /// env-variable race of `ROCC_SCHEDULER` under parallel test
    /// threads. The sanitizer ledger is untouched: events only move
    /// between queues.
    pub fn set_scheduler_backend(&mut self, backend: Backend) {
        if self.sched.backend() == backend {
            return;
        }
        let mut old = std::mem::replace(&mut self.sched, SchedulerImpl::new(backend));
        while let Some(s) = old.pop() {
            self.sched.push(s);
        }
    }
}

/// Description of one application flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Globally unique flow id.
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer; `u64::MAX` means "until stopped".
    pub size: u64,
    /// Activation time.
    pub start: SimTime,
    /// Optional application offered-rate cap (open-loop senders).
    pub offered: Option<BitRate>,
}

/// Flow metadata retained for the whole run (FCT bookkeeping, receiver
/// lookups).
#[derive(Debug, Clone, Copy)]
pub struct FlowMeta {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size: u64,
    /// Activation time.
    pub start: SimTime,
    /// Offered-rate cap.
    pub offered: Option<BitRate>,
}

// One slot per node for the whole run; the size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum NodeSlot {
    Host(Host),
    Switch(Switch),
}

/// Consumer of auto-checkpoints: called with `(events_processed, bytes)`
/// at every checkpoint stride.
pub type CheckpointSink = Box<dyn FnMut(u64, &[u8])>;

/// Auto-checkpoint policy: every `stride` dispatched events the engine
/// serializes itself ([`Sim::snapshot`]) and hands the bytes to `sink`.
/// Stored as an `Option` on [`Sim`] so the disabled cost is one branch per
/// event, matching the profiler/sanitizer gating pattern.
struct CheckpointPolicy {
    stride: u64,
    sink: CheckpointSink,
}

/// A fully wired simulation: topology + nodes + flows + instrumentation.
pub struct Sim {
    /// Engine state (clock, queue, RNG, config).
    pub kernel: Kernel,
    topo: Topology,
    nodes: Vec<NodeSlot>,
    /// Collected instrumentation.
    pub trace: Trace,
    flows: Vec<FlowSpec>,
    flow_dir: FxHashMap<FlowId, FlowMeta>,
    /// Registered finite flows (size < `u64::MAX`), maintained by
    /// `add_flow` so completion detection never rescans the flow list.
    finite_flows: u64,
    host_cc: Box<dyn HostCcFactory>,
    events_processed: u64,
    /// Consecutive events dispatched without simulated time advancing
    /// (the livelock detector's odometer; reset whenever the clock moves).
    stall_run: u64,
    /// Budget failure recorded by an open-ended [`Sim::run_until`] call
    /// (bounded runs return theirs through the [`RunVerdict`] instead).
    budget_failure: Option<SimError>,
    wall: std::time::Duration,
    /// Event count at the last [`Sim::reset_profile`] (0 initially):
    /// [`Sim::profile`] reports the window since the reset.
    profile_base_events: u64,
    /// Simulated nanoseconds at the last [`Sim::reset_profile`].
    profile_base_sim_ns: u64,
    /// Kernel push sequence number at the last [`Sim::reset_profile`]:
    /// [`Sim::profiled_pushes`] reports the window since the reset.
    profile_base_seq: u64,
    /// Whether the first-run sampling tick has been scheduled; guards
    /// against double-scheduling when stepping manually at t = 0.
    sampling_bootstrapped: bool,
    sanitizer: Sanitizer,
    checkpoint: Option<CheckpointPolicy>,
    /// Strided per-component digest recorder (the divergence
    /// observatory's `rocc-digest-ledger/v1`; see [`crate::digest`]).
    /// Same `Option` gating as checkpointing: disabled cost is one branch
    /// per dispatched event, enabled recording is pure observation.
    digest_ledger: Option<crate::digest::DigestLedger>,
    /// Kernel clamp count already surfaced to telemetry; the run loops
    /// compare it against [`Kernel::past_due_clamps`] after each dispatch
    /// (one predictable branch) and publish the delta.
    clamps_published: u64,
}

impl Sim {
    /// Build a simulation over `topo` with the given CC factories.
    ///
    /// Panics if `config` is inconsistent with the topology (see
    /// [`SimConfig::validate`]): a silently misbehaving run is worse than a
    /// loud constructor. The `ROCC_SANITIZE` environment variable (any value
    /// but `0`) enables the invariant sanitizer on every constructed `Sim` —
    /// this is how CI runs the whole suite audited.
    pub fn new(
        topo: Topology,
        config: SimConfig,
        host_cc: Box<dyn HostCcFactory>,
        switch_cc: Box<dyn SwitchCcFactory>,
    ) -> Self {
        if let Err(e) = config.validate(&topo) {
            panic!("invalid SimConfig: {e}");
        }
        let mut kernel = Kernel::new(config, topo.links().len(), topo.nodes().len());
        for (at, fe) in kernel.faults.scheduled_events() {
            kernel.schedule(at, Event::Fault(fe));
        }
        let mut nodes = Vec::with_capacity(topo.nodes().len());
        for (i, info) in topo.nodes().iter().enumerate() {
            let id = NodeId(i);
            match info.role {
                NodeRole::Host => nodes.push(NodeSlot::Host(Host::new(id, &topo))),
                _ => {
                    let sw = Switch::new(id, &topo, |cp, rate| switch_cc.make(cp, rate));
                    let now = kernel.now;
                    sw.schedule_cc_timers(&mut kernel, now);
                    nodes.push(NodeSlot::Switch(sw));
                }
            }
        }
        let mut sim = Sim {
            kernel,
            topo,
            nodes,
            trace: Trace::new(),
            flows: Vec::new(),
            flow_dir: FxHashMap::default(),
            finite_flows: 0,
            host_cc,
            events_processed: 0,
            stall_run: 0,
            budget_failure: None,
            wall: std::time::Duration::ZERO,
            profile_base_events: 0,
            profile_base_sim_ns: 0,
            profile_base_seq: 0,
            sampling_bootstrapped: false,
            sanitizer: Sanitizer::default(),
            checkpoint: None,
            digest_ledger: None,
            clamps_published: 0,
        };
        if std::env::var("ROCC_SANITIZE").map(|v| v != "0").unwrap_or(false) {
            sim.enable_sanitizer();
        }
        sim
    }

    /// Enable the invariant sanitizer and PFC watchdog at the default audit
    /// cadence ([`DEFAULT_AUDIT_PERIOD`]).
    pub fn enable_sanitizer(&mut self) {
        self.enable_sanitizer_with_period(DEFAULT_AUDIT_PERIOD);
    }

    /// Enable the sanitizer with a custom audit period. Shorter periods
    /// tighten deadlock-confirmation latency at more audit cost; results
    /// stay bit-identical either way.
    pub fn enable_sanitizer_with_period(&mut self, period: SimDuration) {
        self.kernel.san.enable();
        let now = self.kernel.now;
        self.sanitizer.enable(now, period);
    }

    /// The sanitizer/watchdog state (pause fractions, victims, report).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// The topology under simulation.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Total events processed so far (diagnostics / benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Every registered flow, in registration order (trace exporters,
    /// cross-run analysis).
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Self-profiling summary: events processed, events/sec, peak
    /// event-queue length, wall-clock per simulated second. Wall time is
    /// accumulated across all `run_until*` and [`Sim::step`] calls; it
    /// reads the host clock only at run-loop entry/exit, so it cannot
    /// perturb simulated state. The window starts at construction or at
    /// the last [`Sim::reset_profile`], whichever is later — resetting
    /// after a warm-up loop keeps warm-up out of every rate in the
    /// summary.
    pub fn profile(&self) -> SimProfile {
        SimProfile {
            events_processed: self.events_processed - self.profile_base_events,
            peak_event_queue: self.kernel.peak_pending(),
            wall_seconds: self.wall.as_secs_f64(),
            sim_seconds: (self.kernel.now.as_nanos() - self.profile_base_sim_ns) as f64 / 1e9,
        }
    }

    /// Re-anchor the self-profiling window at the current instant: zero
    /// the accumulated wall clock, re-base the event and sim-time
    /// counters, and clear the phase profiler's accumulators. Without
    /// this, a manual [`Sim::step`] warm-up loop followed by
    /// [`Sim::run_until_flows_done`] folds the warm-up into the same
    /// anchors and [`Sim::profile`] double-counts it against any
    /// external warm-up timing.
    pub fn reset_profile(&mut self) {
        self.wall = std::time::Duration::ZERO;
        self.profile_base_events = self.events_processed;
        self.profile_base_sim_ns = self.kernel.now.as_nanos();
        self.profile_base_seq = self.kernel.seq;
        self.kernel.prof.reset_accumulators();
    }

    /// Heap pushes in the profiling window. Derived from the kernel's
    /// monotonic push sequence number (maintained for event ordering
    /// regardless of the profiler), so counting pushes costs the hot
    /// path nothing.
    pub fn profiled_pushes(&self) -> u64 {
        self.kernel.seq - self.profile_base_seq
    }

    /// Enable the phase profiler at the default sampling stride
    /// ([`crate::profiler::DEFAULT_STRIDE`]). Pure observation: a
    /// profiled run is schedule-bit-identical to an unprofiled one.
    pub fn enable_profiler(&mut self) {
        self.kernel.prof.enable();
    }

    /// Enable the phase profiler with a custom sampling stride (1 =
    /// time every event).
    pub fn enable_profiler_with_stride(&mut self, stride: u32) {
        self.kernel.prof.enable_with_stride(stride);
    }

    /// Export the `rocc-perf-profile/v1` JSON artifact: per-phase wall
    /// shares, scheduler introspection (push/pop totals, heap-depth
    /// series, burst histogram, dispatch mix), and slab/fastmap load.
    /// Meaningful after a run with [`Sim::enable_profiler`] on; without
    /// it the phase and scheduler sections are empty but the document is
    /// still well-formed.
    pub fn perf_profile_json(&self) -> String {
        let p = self.profile();
        self.kernel.prof.report_json(&ProfileContext {
            events: p.events_processed,
            pushes: self.profiled_pushes(),
            wall_ns: (p.wall_seconds * 1e9) as u64,
            sim_ns: (p.sim_seconds * 1e9) as u64,
            peak_heap: self.kernel.peak_pending(),
            pending: self.kernel.pending(),
            slab_live: self.kernel.packets.live(),
            slab_peak: self.kernel.packets.peak_live(),
            flow_dir_entries: self.flow_dir.len(),
            sched_backend: self.kernel.sched.name(),
            sched: self.kernel.sched.stats(),
            level_depths: self.kernel.sched.level_depths(),
        })
    }

    /// Swap the kernel's scheduler backend in place (see
    /// [`Kernel::set_scheduler_backend`]); the pending schedule migrates
    /// exactly.
    pub fn set_scheduler_backend(&mut self, backend: Backend) {
        self.kernel.set_scheduler_backend(backend);
    }

    /// Register a flow; it will activate at `spec.start`.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(
            !self.flow_dir.contains_key(&spec.id),
            "duplicate flow id {:?}",
            spec.id
        );
        self.flow_dir.insert(
            spec.id,
            FlowMeta {
                src: spec.src,
                dst: spec.dst,
                size: spec.size,
                start: spec.start,
                offered: spec.offered,
            },
        );
        let idx = self.flows.len();
        self.flows.push(spec);
        if spec.size != u64::MAX {
            self.finite_flows += 1;
        }
        self.kernel.schedule(spec.start, Event::FlowStart { idx });
    }

    /// Stop a long-running flow at `t`.
    pub fn stop_flow_at(&mut self, flow: FlowId, t: SimTime) {
        self.kernel.schedule(t, Event::FlowStop { flow });
    }

    /// Host accessor (sampling, assertions in tests).
    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.0] {
            NodeSlot::Host(h) => h,
            NodeSlot::Switch(_) => panic!("{id:?} is a switch, not a host"),
        }
    }

    /// Switch accessor (sampling, assertions in tests).
    pub fn switch(&self, id: NodeId) -> &Switch {
        match &self.nodes[id.0] {
            NodeSlot::Switch(s) => s,
            NodeSlot::Host(_) => panic!("{id:?} is a host, not a switch"),
        }
    }

    /// Run until the virtual clock reaches `t_end` (events at exactly
    /// `t_end` are processed) or the event queue drains.
    pub fn run_until(&mut self, t_end: SimTime) {
        let started = std::time::Instant::now();
        self.run_until_inner(t_end, started);
        self.kernel.prof.run_break();
        self.wall += started.elapsed();
    }

    /// Schedule the first sampling tick exactly once (shared by the run
    /// loops and [`Sim::step`], so manual stepping at t = 0 cannot
    /// double-schedule it).
    fn bootstrap_sampling(&mut self) {
        if self.sampling_bootstrapped {
            return;
        }
        if let Some(p) = self.trace.sample_period {
            if self.kernel.now == SimTime::ZERO {
                self.sampling_bootstrapped = true;
                self.kernel.schedule(SimTime::ZERO + p, Event::Sample);
            }
        }
    }

    /// Pop the next scheduled event, routing scheduler accounting
    /// through the phase profiler (one branch each way when disabled).
    fn pop_next(&mut self) -> Option<Scheduled> {
        self.kernel.prof.pop_begin();
        let s = self.kernel.pop();
        if let Some(sch) = &s {
            if self.kernel.prof.note_pop(sch.at.as_nanos()) {
                let depth = self.kernel.pending();
                let live = self.kernel.packets.live();
                let levels = self.kernel.sched.level_depths();
                self.kernel
                    .prof
                    .note_heap_sample(sch.at.as_nanos(), depth, live, levels);
            }
        }
        s
    }

    /// Surface any past-due schedule clamps the last dispatch produced:
    /// bump the telemetry counter and (sanitizer mask willing) publish a
    /// [`SimEvent::SchedClamp`]. The happy path — no clamp ever — is the
    /// single comparison in the caller's `if`.
    #[cold]
    fn publish_clamps(&mut self) {
        let total = self.kernel.past_due_clamps;
        self.clamps_published = total;
        if self.trace.wants(EventMask::SANITIZER) {
            self.trace.publish_event(SimEvent::SchedClamp {
                t: self.kernel.now,
                requested: self.kernel.last_clamp_requested,
                total,
            });
        }
    }

    /// Process exactly one pending event (manual stepping for warm-up
    /// loops and fine-grained tests). Returns `false` when the queue is
    /// empty. Wall time accrues to the same profile anchors as
    /// `run_until*` — entry/exit reads of a fresh `Instant` — so
    /// interleaving `step` loops with [`Sim::run_until_flows_done`]
    /// never double-counts (see [`Sim::reset_profile`] to exclude the
    /// warm-up entirely). Budget guards are not consulted here: a single
    /// step cannot livelock.
    pub fn step(&mut self) -> bool {
        let started = std::time::Instant::now();
        self.bootstrap_sampling();
        let stepped = if let Some(s) = self.pop_next() {
            self.kernel.now = s.at;
            self.events_processed += 1;
            self.dispatch(s.ev);
            if self.kernel.past_due_clamps != self.clamps_published {
                self.publish_clamps();
            }
            let _ = self.audit_if_due();
            true
        } else {
            false
        };
        self.kernel.prof.run_break();
        self.wall += started.elapsed();
        stepped
    }

    fn run_until_inner(&mut self, t_end: SimTime, started: std::time::Instant) {
        self.bootstrap_sampling();
        while let Some(s) = self.pop_next() {
            if s.at > t_end {
                // Not yet due: put it back and stop.
                self.kernel.requeue(s);
                self.kernel.now = t_end;
                break;
            }
            if let Some(e) = self.budget_breach(s.at, started) {
                // Open-ended runs have no verdict to return; record the
                // failure (retrievable via [`Sim::budget_failure`]), publish
                // it, and stop instead of spinning forever.
                self.kernel.requeue(s);
                let v = RunVerdict::Failed(e);
                self.publish_verdict(&v);
                self.budget_failure = v.err().cloned();
                break;
            }
            self.kernel.now = s.at;
            self.events_processed += 1;
            self.dispatch(s.ev);
            if self.kernel.past_due_clamps != self.clamps_published {
                self.publish_clamps();
            }
            // Open-ended runs have no completion criterion to abort toward;
            // audits still record violations and pause metrics.
            let _ = self.audit_if_due();
            if self.checkpoint.is_some() {
                self.auto_checkpoint();
            }
            if self.digest_ledger.is_some() {
                self.record_state_digest();
            }
        }
    }

    /// The budget failure recorded by an open-ended [`Sim::run_until`] call,
    /// if a guard tripped (bounded runs return theirs through the
    /// [`RunVerdict`] of [`Sim::run_until_flows_done`]).
    pub fn budget_failure(&self) -> Option<&SimError> {
        self.budget_failure.as_ref()
    }

    /// Check the runtime budgets for the event about to be dispatched at
    /// `at`. Pure bookkeeping: never schedules or reorders anything, so a
    /// run within budget is bit-identical under any budget setting.
    fn budget_breach(&mut self, at: SimTime, started: std::time::Instant) -> Option<SimError> {
        let b = self.kernel.config.budget;
        if let Some(limit) = b.max_events {
            if self.events_processed >= limit {
                return Some(SimError::BudgetExhausted {
                    at: self.kernel.now,
                    events: self.events_processed,
                    limit,
                    incomplete_flows: self.incomplete_finite(),
                });
            }
        }
        if let Some(limit_ms) = b.wall_clock_ms {
            // Strided: a clock read every 4096 events keeps the enabled
            // cost negligible while still bounding a hung cell tightly.
            if self.events_processed & 0xFFF == 0 {
                let wall_ms = (self.wall + started.elapsed()).as_millis() as u64;
                if wall_ms >= limit_ms {
                    return Some(SimError::WallClockExceeded {
                        at: self.kernel.now,
                        wall_ms,
                        limit_ms,
                        incomplete_flows: self.incomplete_finite(),
                    });
                }
            }
        }
        if at > self.kernel.now {
            self.stall_run = 0;
        } else {
            self.stall_run += 1;
            if let Some(limit) = b.stall_events {
                if self.stall_run >= limit {
                    return Some(SimError::Stalled {
                        at: self.kernel.now,
                        events_at_instant: self.stall_run,
                        incomplete_flows: self.incomplete_finite(),
                    });
                }
            }
        }
        None
    }

    /// Finite flows still outstanding (budget-verdict bookkeeping).
    fn incomplete_finite(&self) -> u64 {
        self.finite_flows.saturating_sub(self.trace.fcts.len() as u64)
    }

    /// Run until all registered finite flows have completed, but no longer
    /// than `max_t`. Returns a typed [`RunVerdict`]: a run that stalls gets
    /// a structured diagnosis (confirmed PFC deadlock with the pause cycle
    /// named, invariant violations, a drained event heap, or a plain
    /// deadline miss) instead of a bare `false`.
    pub fn run_until_flows_done(&mut self, max_t: SimTime) -> RunVerdict {
        let started = std::time::Instant::now();
        let verdict = self.run_until_flows_done_inner(max_t, started);
        self.kernel.prof.run_break();
        self.wall += started.elapsed();
        self.publish_verdict(&verdict);
        verdict
    }

    fn run_until_flows_done_inner(
        &mut self,
        max_t: SimTime,
        started: std::time::Instant,
    ) -> RunVerdict {
        let finite = self.finite_flows;
        self.bootstrap_sampling();
        while (self.trace.fcts.len() as u64) < finite {
            let Some(s) = self.pop_next() else {
                return RunVerdict::Failed(self.stall_error(finite, true));
            };
            if s.at > max_t {
                self.kernel.requeue(s);
                self.kernel.now = max_t;
                return RunVerdict::Failed(self.stall_error(finite, false));
            }
            if let Some(e) = self.budget_breach(s.at, started) {
                self.kernel.requeue(s);
                return RunVerdict::Failed(e);
            }
            self.kernel.now = s.at;
            self.events_processed += 1;
            self.dispatch(s.ev);
            if self.kernel.past_due_clamps != self.clamps_published {
                self.publish_clamps();
            }
            if let Some(e) = self.audit_if_due() {
                return RunVerdict::Failed(e);
            }
            if self.checkpoint.is_some() {
                self.auto_checkpoint();
            }
            if self.digest_ledger.is_some() {
                self.record_state_digest();
            }
        }
        // One final audit at end-of-run so a violation in the closing
        // events cannot slip out unchecked.
        if self.sanitizer.is_enabled() {
            if let Some(e) = self.run_audit() {
                return RunVerdict::Failed(e);
            }
        }
        RunVerdict::Completed { flows: finite }
    }

    /// Diagnose a stalled run (`drained` = the event heap emptied; otherwise
    /// the deadline passed). Precedence: a forced audit's invariant
    /// violations explain the most; then a one-shot pause-graph scan (which
    /// needs no sanitizer) names a deadlock cycle; else the stall kind.
    fn stall_error(&mut self, finite: u64, drained: bool) -> SimError {
        let incomplete = finite.saturating_sub(self.trace.fcts.len() as u64);
        if self.sanitizer.is_enabled() {
            if let Some(e @ SimError::InvariantViolation { .. }) = self.run_audit() {
                return e;
            }
        }
        let report = self.scan_now();
        if !report.cycle.is_empty() {
            return SimError::PfcDeadlock {
                detected_at: self.kernel.now,
                cycle: report.cycle,
                victims: report.victims,
            };
        }
        if drained {
            SimError::Drained {
                at: self.kernel.now,
                incomplete_flows: incomplete,
            }
        } else {
            SimError::DeadlineExceeded {
                at: self.kernel.now,
                incomplete_flows: incomplete,
                paused_ports: report.paused_ports.len() as u64,
            }
        }
    }

    /// Run a sanitizer audit if one is due (single branch when disabled).
    fn audit_if_due(&mut self) -> Option<SimError> {
        if !self.sanitizer.due(self.kernel.now) {
            return None;
        }
        self.run_audit()
    }

    /// Run one audit now (unconditionally; callers gate on enablement).
    fn run_audit(&mut self) -> Option<SimError> {
        self.kernel.prof.enter(Phase::Sanitizer);
        let Sim {
            kernel,
            topo,
            nodes,
            trace,
            sanitizer,
            ..
        } = self;
        let mut hosts = Vec::new();
        let mut switches = Vec::new();
        for n in nodes.iter() {
            match n {
                NodeSlot::Host(h) => hosts.push(h),
                NodeSlot::Switch(s) => switches.push(s),
            }
        }
        let view = AuditView {
            now: kernel.now,
            config: &kernel.config,
            topo,
            faults: &kernel.faults,
            hosts,
            switches,
            ledger: &kernel.san,
            packets: &kernel.packets,
        };
        sanitizer.audit(&view, trace)
    }

    /// One-shot pause wait-for graph scan of the current state; pure read,
    /// works with the sanitizer disabled.
    fn scan_now(&self) -> PauseReport {
        let mut hosts = Vec::new();
        let mut switches = Vec::new();
        for n in &self.nodes {
            match n {
                NodeSlot::Host(h) => hosts.push(h),
                NodeSlot::Switch(s) => switches.push(s),
            }
        }
        let view = AuditView {
            now: self.kernel.now,
            config: &self.kernel.config,
            topo: &self.topo,
            faults: &self.kernel.faults,
            hosts,
            switches,
            ledger: &self.kernel.san,
            packets: &self.kernel.packets,
        };
        scan_pause_graph(&view)
    }

    /// Publish the run verdict to telemetry and, on failure, dump its JSON
    /// into `$ROCC_VERDICT_DIR` (CI artifact collection).
    fn publish_verdict(&mut self, verdict: &RunVerdict) {
        if let RunVerdict::Failed(e) = verdict {
            if self.trace.wants(EventMask::SANITIZER) {
                let cycle_len = match e {
                    SimError::PfcDeadlock { cycle, .. } => cycle.len() as u32,
                    _ => 0,
                };
                self.trace.publish_event(SimEvent::Verdict {
                    t: self.kernel.now,
                    kind: e.kind(),
                    cycle_len,
                });
            }
            if let Ok(dir) = std::env::var("ROCC_VERDICT_DIR") {
                dump_verdict(&dir, verdict);
            }
        }
    }

    // ------------------------------------------------------ snapshotting

    /// Serialize the complete dynamic state of the run as a
    /// `rocc-snapshot/v1` document: scheduler heap contents, packet slab,
    /// RNG streams, switch and host state, fault cursors, budget odometers,
    /// and all collected instrumentation. Restoring the bytes into a
    /// freshly rebuilt, identically configured `Sim` (see [`Sim::restore`])
    /// resumes the run with a byte-identical schedule: verdicts, metrics
    /// JSONL, and aggregates match an uninterrupted run exactly.
    ///
    /// Not captured (by design): telemetry subscribers (trait objects —
    /// the restoring run re-attaches its own), accumulated wall-clock time
    /// and phase-profiler wall shares (meaningless across processes), and
    /// everything the caller rebuilds — topology, configuration, CC
    /// factories, flow registrations, watch lists. The header binds the
    /// snapshot to its seed and a configuration digest so a restore into
    /// the wrong setup fails loudly instead of diverging silently.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        // Kernel dynamics. The event queue serializes as a (at, seq)-sorted
        // vec regardless of backend — (at, seq) is a total order, so pushing
        // the sorted entries back into ANY backend yields an identical pop
        // order, and a snapshot taken under the wheel restores under the
        // heap (and vice versa) bit-identically.
        w.u64(self.kernel.seq);
        w.usize(self.kernel.peak_heap);
        w.u64(self.kernel.past_due_clamps);
        w.time(self.kernel.last_clamp_requested);
        w.words(&self.kernel.rng.state());
        let mut queued = self.kernel.sched.entries();
        queued.sort_by_key(|&(at, seq, _)| (at, seq));
        w.usize(queued.len());
        for (at, seq, ev) in queued {
            w.time(at);
            w.u64(seq);
            snapshot::write_event(&mut w, ev);
        }
        self.kernel.faults.save_state(&mut w);
        self.kernel.san.save_state(&mut w);
        self.kernel.packets.save_state(&mut w);
        // Node states, in topology order.
        w.usize(self.nodes.len());
        for n in &self.nodes {
            match n {
                NodeSlot::Host(h) => {
                    w.u8(0);
                    h.save_state(&mut w);
                }
                NodeSlot::Switch(s) => {
                    w.u8(1);
                    s.save_state(&mut w);
                }
            }
        }
        // Run bookkeeping and profiling anchors.
        w.usize(self.flows.len());
        w.u64(self.finite_flows);
        w.u64(self.stall_run);
        w.bool(self.sampling_bootstrapped);
        w.u64(self.profile_base_events);
        w.u64(self.profile_base_sim_ns);
        w.u64(self.profile_base_seq);
        // Instrumentation.
        self.trace.save_state(&mut w);
        self.sanitizer.save_state(&mut w);
        snapshot::frame(
            self.kernel.config.seed,
            snapshot::config_digest(&self.kernel.config),
            self.kernel.now.as_nanos(),
            self.events_processed,
            w.into_bytes(),
        )
    }

    /// Overwrite this sim's dynamic state from a [`Sim::snapshot`]
    /// document and resume exactly where the captured run stood.
    ///
    /// The caller must have rebuilt this `Sim` identically to the captured
    /// one: same topology, same configuration (verified via the embedded
    /// seed + configuration digest), same CC factories, same `add_flow`
    /// calls, and the same trace watch registrations and sanitizer /
    /// telemetry / observatory enablement (verified structurally during
    /// decode). Restore discards the fresh bootstrap heap and replaces
    /// every piece of dynamic state; accumulated wall-clock time resets to
    /// zero and any recorded budget failure is cleared.
    ///
    /// On error the sim may be left partially overwritten — discard it and
    /// rebuild (the supervisor falls back to a fresh cell run).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let (info, body) = snapshot::unframe(bytes)?;
        let expected = (
            self.kernel.config.seed,
            snapshot::config_digest(&self.kernel.config),
        );
        if (info.seed, info.config_digest) != expected {
            return Err(SnapshotError::ConfigMismatch {
                expected,
                found: (info.seed, info.config_digest),
            });
        }
        let mut r = SnapReader::new(body);
        let seq = r.u64()?;
        let peak_heap = r.usize()?;
        let past_due_clamps = r.u64()?;
        let last_clamp_requested = r.time()?;
        let words = r.words()?;
        if words.len() != 4 {
            return Err(SnapshotError::Malformed("rng state"));
        }
        let rng = StdRng::from_state([words[0], words[1], words[2], words[3]]);
        let nh = r.len()?;
        // Rebuild whichever backend this sim runs: the entries were
        // written (at, seq)-sorted, so in-order pushes reconstruct the
        // schedule exactly in either backend.
        let mut sched = SchedulerImpl::new(self.kernel.sched.backend());
        for _ in 0..nh {
            let at = r.time()?;
            let eseq = r.u64()?;
            let ev = snapshot::read_event(&mut r)?;
            sched.push(Scheduled { at, seq: eseq, ev });
        }
        self.kernel.faults.load_state(&mut r)?;
        self.kernel.san.load_state(&mut r)?;
        self.kernel.packets.load_state(&mut r)?;
        let nn = r.len()?;
        if nn != self.nodes.len() {
            return Err(SnapshotError::Malformed("node count differs"));
        }
        {
            let Sim { nodes, host_cc, .. } = self;
            for n in nodes.iter_mut() {
                match (r.u8()?, n) {
                    (0, NodeSlot::Host(h)) => h.load_state(&mut r, &**host_cc)?,
                    (1, NodeSlot::Switch(s)) => s.load_state(&mut r)?,
                    _ => return Err(SnapshotError::Malformed("node role differs")),
                }
            }
        }
        let nf = r.usize()?;
        let finite = r.u64()?;
        if nf != self.flows.len() || finite != self.finite_flows {
            return Err(SnapshotError::Malformed("flow registration differs"));
        }
        self.stall_run = r.u64()?;
        self.sampling_bootstrapped = r.bool()?;
        self.profile_base_events = r.u64()?;
        self.profile_base_sim_ns = r.u64()?;
        self.profile_base_seq = r.u64()?;
        self.trace.load_state(&mut r)?;
        self.sanitizer.load_state(&mut r)?;
        if !r.exhausted() {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        // All reads succeeded: commit the kernel dynamics.
        self.kernel.now = SimTime::from_nanos(info.now_ns);
        self.kernel.seq = seq;
        self.kernel.peak_heap = peak_heap;
        self.kernel.past_due_clamps = past_due_clamps;
        self.kernel.last_clamp_requested = last_clamp_requested;
        self.clamps_published = past_due_clamps;
        self.kernel.rng = rng;
        self.kernel.sched = sched;
        self.events_processed = info.events_processed;
        self.budget_failure = None;
        self.wall = std::time::Duration::ZERO;
        Ok(())
    }

    /// Enable auto-checkpointing: every `stride` dispatched events the
    /// engine calls [`Sim::snapshot`] and hands `(events_processed, bytes)`
    /// to `sink`. Checkpointing is pure observation — the serialized bytes
    /// are produced from reads only — so an auto-checkpointed run is
    /// schedule-bit-identical to an unchecked one (pinned by the
    /// `observer_effect` integration test). Disabled cost is one branch
    /// per dispatched event.
    pub fn enable_auto_checkpoint(&mut self, stride: u64, sink: CheckpointSink) {
        assert!(stride > 0, "checkpoint stride must be positive");
        self.checkpoint = Some(CheckpointPolicy { stride, sink });
    }

    /// Turn auto-checkpointing off (drops the sink).
    pub fn disable_auto_checkpoint(&mut self) {
        self.checkpoint = None;
    }

    /// Take a checkpoint if the policy's stride divides the event count.
    /// Callers gate on `self.checkpoint.is_some()` so the disabled path
    /// never reaches here.
    fn auto_checkpoint(&mut self) {
        let Some(mut pol) = self.checkpoint.take() else {
            return;
        };
        if self.events_processed.is_multiple_of(pol.stride) {
            let bytes = self.snapshot();
            (pol.sink)(self.events_processed, &bytes);
        }
        self.checkpoint = Some(pol);
    }

    // ------------------------------------------- divergence observatory

    /// Serialize every subsystem's dynamic state as a separate named byte
    /// stream, using the same `rocc-snapshot/v1` word codecs (and the
    /// same section boundaries) as [`Sim::snapshot`]. This is the raw
    /// material of the divergence observatory: hashing each component
    /// yields [`Sim::state_digest`], and diffing two sims' streams
    /// word-by-word localizes a divergence to the exact field group that
    /// first disagreed (see [`crate::digest`]).
    ///
    /// Component order is canonical and stable: `kernel`, `rng`, `sched`,
    /// `faults`, `san`, `slab`, one `host/N` / `switch/N` per node in
    /// topology order, `run`, `trace`, `sanitizer`.
    pub fn component_states(&self) -> Vec<crate::digest::ComponentState> {
        use crate::digest::ComponentState;
        let mut out = Vec::with_capacity(self.nodes.len() + 9);

        // Kernel odometers and the clock.
        let mut w = SnapWriter::new();
        w.u64(self.kernel.seq);
        w.usize(self.kernel.peak_heap);
        w.u64(self.kernel.past_due_clamps);
        w.time(self.kernel.last_clamp_requested);
        w.time(self.kernel.now);
        w.u64(self.events_processed);
        out.push(ComponentState::new("kernel", w.into_bytes()));

        // The run RNG stream.
        let mut w = SnapWriter::new();
        w.words(&self.kernel.rng.state());
        out.push(ComponentState::new("rng", w.into_bytes()));

        // The scheduler queue, (at, seq)-sorted exactly as the snapshot
        // serializes it, so heap and wheel digests agree whenever their
        // schedules do.
        let mut w = SnapWriter::new();
        let mut queued = self.kernel.sched.entries();
        queued.sort_by_key(|&(at, seq, _)| (at, seq));
        w.usize(queued.len());
        for (at, seq, ev) in queued {
            w.time(at);
            w.u64(seq);
            snapshot::write_event(&mut w, ev);
        }
        out.push(ComponentState::new("sched", w.into_bytes()));

        // Fault cursors + the fault RNG ("both RNGs" live in rng/faults).
        let mut w = SnapWriter::new();
        self.kernel.faults.save_state(&mut w);
        out.push(ComponentState::new("faults", w.into_bytes()));

        let mut w = SnapWriter::new();
        self.kernel.san.save_state(&mut w);
        out.push(ComponentState::new("san", w.into_bytes()));

        let mut w = SnapWriter::new();
        self.kernel.packets.save_state(&mut w);
        out.push(ComponentState::new("slab", w.into_bytes()));

        // Per-node: host CC/transport state, switch queues/CC state.
        for (i, n) in self.nodes.iter().enumerate() {
            let mut w = SnapWriter::new();
            let name = match n {
                NodeSlot::Host(h) => {
                    h.save_state(&mut w);
                    format!("host/{i}")
                }
                NodeSlot::Switch(s) => {
                    s.save_state(&mut w);
                    format!("switch/{i}")
                }
            };
            out.push(ComponentState::new(name, w.into_bytes()));
        }

        // Run bookkeeping (flow registrations are construction state, but
        // the odometers move with the schedule).
        let mut w = SnapWriter::new();
        w.usize(self.flows.len());
        w.u64(self.finite_flows);
        w.u64(self.stall_run);
        w.bool(self.sampling_bootstrapped);
        w.u64(self.profile_base_events);
        w.u64(self.profile_base_sim_ns);
        w.u64(self.profile_base_seq);
        out.push(ComponentState::new("run", w.into_bytes()));

        // Telemetry counters and collected series.
        let mut w = SnapWriter::new();
        self.trace.save_state(&mut w);
        out.push(ComponentState::new("trace", w.into_bytes()));

        let mut w = SnapWriter::new();
        self.sanitizer.save_state(&mut w);
        out.push(ComponentState::new("sanitizer", w.into_bytes()));

        out
    }

    /// The next event this sim would dispatch — `(at, seq)`-minimum of
    /// the queue — decoded for humans. `None` when the queue is empty.
    /// The divergence bisector quotes this as "the first diverging
    /// event" in its report.
    pub fn next_event_brief(&self) -> Option<String> {
        self.kernel
            .sched
            .entries()
            .into_iter()
            .min_by_key(|&(at, seq, _)| (at, seq))
            .map(|(at, seq, ev)| {
                format!("[at {} ns, seq {}] {:?}", at.as_nanos(), seq, ev)
            })
    }

    /// Deliberately flip one bit of one host's RP congestion-control
    /// state (bit 30 of the first `snapshot_state` word of the lowest-id
    /// flow on the first host that carries CC words — for RoCC, ~1 Gb/s
    /// off the current rate). This is the divergence observatory's fault
    /// injector: `repro diverge` and the acceptance tests use it to
    /// manufacture a run with a known first-bad event and prove the
    /// bisector finds exactly that event and names the component.
    /// Deterministic; returns `false` if no host has CC state yet (caller
    /// retries at a later event).
    pub fn inject_rp_perturbation(&mut self) -> bool {
        for n in self.nodes.iter_mut() {
            if let NodeSlot::Host(h) = n {
                if h.perturb_cc_state() {
                    return true;
                }
            }
        }
        false
    }

    /// Enable the strided digest ledger: every `stride` dispatched events
    /// the engine records [`Sim::state_digest`] (plus event count and sim
    /// time) into an in-memory `rocc-digest-ledger/v1` ledger, retrievable
    /// via [`Sim::digest_ledger`] / [`Sim::take_digest_ledger`]. Recording
    /// is pure observation — digests are computed from reads only — so a
    /// recorded run is schedule-bit-identical to an unrecorded one (pinned
    /// by the `observer_effect` suite). Disabled cost is one branch per
    /// dispatched event, exactly like auto-checkpointing.
    pub fn enable_digest_ledger(&mut self, stride: u64) {
        assert!(stride > 0, "digest ledger stride must be positive");
        self.digest_ledger = Some(crate::digest::DigestLedger::new(stride));
    }

    /// The digest ledger recorded so far, if enabled.
    pub fn digest_ledger(&self) -> Option<&crate::digest::DigestLedger> {
        self.digest_ledger.as_ref()
    }

    /// Detach and return the recorded digest ledger (disables recording).
    pub fn take_digest_ledger(&mut self) -> Option<crate::digest::DigestLedger> {
        self.digest_ledger.take()
    }

    /// Record a ledger entry if the stride divides the event count.
    /// Callers gate on `self.digest_ledger.is_some()` so the disabled
    /// path never reaches here.
    fn record_state_digest(&mut self) {
        let due = self
            .digest_ledger
            .as_ref()
            .is_some_and(|l| self.events_processed.is_multiple_of(l.stride()));
        if !due {
            return;
        }
        let entry = crate::digest::DigestLedgerEntry {
            events: self.events_processed,
            t_ns: self.kernel.now.as_nanos(),
            digests: self.state_digest(),
        };
        if let Some(l) = self.digest_ledger.as_mut() {
            l.push(entry);
        }
    }

    /// Grace period for retrying events addressed to a host that is
    /// currently paused or crashed (flow starts, pending CC timers).
    const HOST_DOWN_RETRY: SimDuration = SimDuration::from_micros(100);

    fn dispatch(&mut self, ev: Event) {
        if self.kernel.prof.is_enabled() {
            self.kernel.prof.dispatch_begin(ev.kind_idx());
        }
        match ev {
            Event::Arrive { link, pr } => {
                let (to_node, to_port) = self.topo.link(link).to;
                if self.kernel.faults.is_active() {
                    // Packets in flight on a downed link die at the delivery
                    // instant (deterministic, and covers both packets caught
                    // by the flap and packets transmitted onto a dead link).
                    if self.kernel.faults.link_is_down(link) {
                        self.trace.faults.link_down_drops += 1;
                        let pkt = self.kernel.packets.take(pr);
                        self.kernel.san.destroy(pkt.wire_bytes());
                        self.publish_drop(to_node, pkt.flow, DropCause::LinkDown);
                        return;
                    }
                    if self.kernel.faults.host_is_down(to_node)
                        && matches!(self.nodes[to_node.0], NodeSlot::Host(_))
                    {
                        self.trace.faults.host_down_drops += 1;
                        let pkt = self.kernel.packets.take(pr);
                        self.kernel.san.destroy(pkt.wire_bytes());
                        self.publish_drop(to_node, pkt.flow, DropCause::HostDown);
                        return;
                    }
                    let kind = self.kernel.packets.get(pr).kind;
                    match self.kernel.faults.decide(self.kernel.now, link, &kind) {
                        FaultDecision::Deliver => {}
                        FaultDecision::Lose(target) => {
                            // A CNP-class loss hitting an echo-bearing ACK
                            // destroys only the congestion signal: real CNPs
                            // travel separately from the ACK stream, so the
                            // ACK itself survives with its echo stripped.
                            if target == FaultTarget::Cnp {
                                if let PacketKind::Ack { ecn_echo, .. } =
                                    &mut self.kernel.packets.get_mut(pr).kind
                                {
                                    if *ecn_echo {
                                        *ecn_echo = false;
                                        self.trace.faults.ctrl_lost += 1;
                                    }
                                }
                                if !matches!(kind, PacketKind::Ack { .. }) {
                                    self.trace.faults.ctrl_lost += 1;
                                    let pkt = self.kernel.packets.take(pr);
                                    self.kernel.san.destroy(pkt.wire_bytes());
                                    self.publish_drop(to_node, pkt.flow, DropCause::FaultLoss);
                                    return;
                                }
                            } else {
                                let pkt = self.kernel.packets.take(pr);
                                if pkt.is_data() {
                                    self.trace.faults.data_lost += 1;
                                } else {
                                    self.trace.faults.ctrl_lost += 1;
                                }
                                self.kernel.san.destroy(pkt.wire_bytes());
                                self.publish_drop(to_node, pkt.flow, DropCause::FaultLoss);
                                return;
                            }
                        }
                        FaultDecision::Corrupt => {
                            let pkt = self.kernel.packets.take(pr);
                            if pkt.is_data() {
                                self.trace.faults.data_corrupted += 1;
                            } else {
                                self.trace.faults.ctrl_corrupted += 1;
                            }
                            self.kernel.san.destroy(pkt.wire_bytes());
                            self.publish_drop(to_node, pkt.flow, DropCause::FaultCorrupt);
                            // Failed FCS: switches discard at ingress; hosts
                            // discard too, but a corrupted data packet nudges
                            // the receiver's go-back-N (see the host hook).
                            if let NodeSlot::Host(h) = &mut self.nodes[to_node.0] {
                                h.handle_corrupt_arrive(
                                    &mut self.kernel,
                                    &self.topo,
                                    &mut self.trace,
                                    pkt,
                                );
                            }
                            return;
                        }
                        FaultDecision::Duplicate => {
                            // The NIC/switch emitted the frame twice: a clone
                            // arrives alongside the original. The clone is
                            // fresh wire bytes from the ledger's view.
                            self.trace.faults.duplicated += 1;
                            let copy = *self.kernel.packets.get(pr);
                            self.kernel.san.inject(copy.wire_bytes());
                            let dup = self.kernel.packets.alloc(copy);
                            let now = self.kernel.now;
                            self.kernel.schedule(now, Event::Arrive { link, pr: dup });
                            // The original falls through to normal delivery.
                        }
                        FaultDecision::Reorder(delay) => {
                            // Defer this arrival: the packet goes back on the
                            // wire (heap) and lands behind later frames. The
                            // heap ledger re-add balances the pop's subtract,
                            // so conservation holds throughout.
                            self.trace.faults.reordered += 1;
                            let at = self.kernel.now + delay;
                            self.kernel.schedule(at, Event::Arrive { link, pr });
                            return;
                        }
                    }
                }
                match &mut self.nodes[to_node.0] {
                    NodeSlot::Switch(sw) => {
                        sw.handle_arrive(&mut self.kernel, &self.topo, &mut self.trace, to_port, pr)
                    }
                    NodeSlot::Host(h) => {
                        // Host delivery is the packet's exit from the network
                        // and from the slab.
                        let pkt = self.kernel.packets.take(pr);
                        self.kernel.san.consume(pkt.wire_bytes());
                        h.handle_arrive(
                            &mut self.kernel,
                            &self.topo,
                            &mut self.trace,
                            &self.flow_dir,
                            pkt,
                        )
                    }
                }
            }
            Event::SwitchTxDone { node, port } => {
                if let NodeSlot::Switch(sw) = &mut self.nodes[node.0] {
                    sw.handle_tx_done(&mut self.kernel, &self.topo, &mut self.trace, port);
                }
            }
            Event::HostTxDone { node } => {
                if self.kernel.faults.host_is_down(node) {
                    // The NIC went down mid-serialization: the packet never
                    // reaches the wire. `revive` resets the TX path. The
                    // serialized packet is not at hand here, so the drop
                    // event carries the PFC-style sentinel flow id.
                    self.trace.faults.host_down_drops += 1;
                    self.publish_drop(node, FlowId(u64::MAX), DropCause::HostDown);
                    return;
                }
                if let NodeSlot::Host(h) = &mut self.nodes[node.0] {
                    h.handle_tx_done(&mut self.kernel, &self.topo, &mut self.trace);
                }
            }
            Event::HostWake { node } => {
                if self.kernel.faults.host_is_down(node) {
                    return; // revive restarts the TX path from scratch
                }
                if let NodeSlot::Host(h) = &mut self.nodes[node.0] {
                    h.handle_wake(&mut self.kernel, &self.topo, &mut self.trace);
                }
            }
            Event::CpTimer { node, port } => {
                if let NodeSlot::Switch(sw) = &mut self.nodes[node.0] {
                    sw.handle_cc_timer(&mut self.kernel, &self.topo, &mut self.trace, port);
                }
            }
            Event::HostCcTimer {
                node,
                flow,
                token,
                gen,
            } => {
                if self.kernel.faults.host_is_down(node) {
                    // A host with no restore scheduled is never coming back:
                    // re-queueing would churn the heap every 100 µs until the
                    // deadline for an event nobody will ever handle.
                    if !self.kernel.faults.host_will_recover(node, self.kernel.now) {
                        self.trace.faults.abandoned_events += 1;
                        return;
                    }
                    // Timers freeze while the host is down; re-deliver later
                    // with the same generation so CC timer chains (e.g. the
                    // RoCC recovery timer) survive a pause. A crash bumps
                    // every generation, so replayed timers die there.
                    let at = self.kernel.now + Self::HOST_DOWN_RETRY;
                    self.kernel.schedule(
                        at,
                        Event::HostCcTimer {
                            node,
                            flow,
                            token,
                            gen,
                        },
                    );
                    return;
                }
                if let NodeSlot::Host(h) = &mut self.nodes[node.0] {
                    h.handle_cc_timer(&mut self.kernel, &self.topo, &mut self.trace, flow, token, gen);
                }
            }
            Event::Feedback { node, flow, fb } => {
                if self.kernel.faults.host_is_down(node) {
                    return; // feedback pending in a dead NIC is lost
                }
                if let NodeSlot::Host(h) = &mut self.nodes[node.0] {
                    h.handle_feedback(&mut self.kernel, &self.topo, &mut self.trace, flow, fb);
                }
            }
            Event::FlowStart { idx } => {
                let spec = self.flows[idx];
                let meta = self.flow_dir[&spec.id];
                if self.kernel.faults.host_is_down(spec.src) {
                    // A permanently crashed source can never start this flow;
                    // abandon the event instead of re-queueing it forever
                    // (the run then drains and gets a typed verdict).
                    if !self.kernel.faults.host_will_recover(spec.src, self.kernel.now) {
                        self.trace.faults.abandoned_events += 1;
                        return;
                    }
                    // The source is down; retry once it has come back.
                    let at = self.kernel.now + Self::HOST_DOWN_RETRY;
                    self.kernel.schedule(at, Event::FlowStart { idx });
                    return;
                }
                if let NodeSlot::Host(h) = &mut self.nodes[spec.src.0] {
                    let line = h.line_rate();
                    let cc = self.host_cc.make(spec.id, line);
                    h.start_flow(&mut self.kernel, &self.topo, &mut self.trace, spec.id, &meta, cc);
                } else {
                    panic!("flow source {:?} is not a host", spec.src);
                }
            }
            Event::FlowStop { flow } => {
                let Some(meta) = self.flow_dir.get(&flow) else {
                    return;
                };
                let src = meta.src;
                if let NodeSlot::Host(h) = &mut self.nodes[src.0] {
                    h.stop_flow(flow);
                }
            }
            Event::Sample => self.take_samples(),
            Event::Fault(fe) => self.apply_fault(fe),
        }
    }

    /// Publish a packet-drop telemetry event (no-op unless enabled).
    fn publish_drop(&mut self, node: NodeId, flow: FlowId, cause: DropCause) {
        if self.trace.wants(EventMask::DROP) {
            self.trace.publish_event(SimEvent::Drop {
                t: self.kernel.now,
                node,
                flow,
                cause,
            });
        }
    }

    /// Apply a scheduled fault transition.
    fn apply_fault(&mut self, fe: FaultEvent) {
        if self.trace.wants(EventMask::FAULT) {
            self.trace.publish_event(SimEvent::Fault {
                t: self.kernel.now,
                fault: fe,
            });
        }
        match fe {
            FaultEvent::LinkDown(l) => {
                // A physical link failure takes out both directions of the
                // full-duplex pair; everything in flight dies at delivery.
                let rev = self.topo.reverse_link(l);
                self.kernel.faults.set_link_down(l, true);
                self.kernel.faults.set_link_down(rev, true);
            }
            FaultEvent::LinkUp(l) => {
                let rev = self.topo.reverse_link(l);
                self.kernel.faults.set_link_down(l, false);
                self.kernel.faults.set_link_down(rev, false);
                // PFC pause state on either end may be stale: PAUSE/RESUME
                // frames in flight died with the link. Resynchronize both
                // endpoints (each endpoint is `to` of one direction).
                for lid in [l, rev] {
                    let (to_node, to_port) = self.topo.link(lid).to;
                    match &mut self.nodes[to_node.0] {
                        NodeSlot::Host(h) => {
                            h.on_link_restored(&mut self.kernel, &self.topo, &mut self.trace)
                        }
                        NodeSlot::Switch(sw) => sw.on_link_restored(
                            &mut self.kernel,
                            &self.topo,
                            &mut self.trace,
                            to_port,
                        ),
                    }
                }
            }
            FaultEvent::HostPause(n) => {
                self.kernel.faults.set_host_down(n, true);
            }
            FaultEvent::HostCrash(n) => {
                self.kernel.faults.set_host_down(n, true);
                let lost = if let NodeSlot::Host(h) = &mut self.nodes[n.0] {
                    h.on_crash()
                } else {
                    0
                };
                self.kernel.san.destroy(lost);
            }
            FaultEvent::HostRestore(n) => {
                self.kernel.faults.set_host_down(n, false);
                if let NodeSlot::Host(h) = &mut self.nodes[n.0] {
                    h.revive(&mut self.kernel, &self.topo, &mut self.trace);
                }
            }
        }
    }

    fn take_samples(&mut self) {
        self.kernel.prof.enter(Phase::Telemetry);
        let now = self.kernel.now;
        let Some(period) = self.trace.sample_period else {
            return;
        };
        // Queue depths.
        for i in 0..self.trace.watched_queues().len() {
            let (n, p) = self.trace.watched_queues()[i];
            if let NodeSlot::Switch(sw) = &self.nodes[n.0] {
                let (q, _) = sw.snapshot(p);
                self.trace.record_queue_sample(i, now, q);
                self.trace.telemetry.record_queue_depth(q);
            }
        }
        // Long-run queue averages.
        for i in 0..self.trace.watched_avg_ports().len() {
            let (n, p) = self.trace.watched_avg_ports()[i];
            if let NodeSlot::Switch(sw) = &self.nodes[n.0] {
                let (q, _) = sw.snapshot(p);
                self.trace.record_queue_avg(now, n, p, q);
            }
        }
        // Port throughputs.
        for i in 0..self.trace.watched_ports().len() {
            let (n, p) = self.trace.watched_ports()[i];
            if let NodeSlot::Switch(sw) = &self.nodes[n.0] {
                let (_, tx) = sw.snapshot(p);
                self.trace.sample_port_tput(i, now, tx, period);
            }
        }
        // Flow goodputs.
        self.trace.sample_flow_rates(now, period);
        // Sender CC rates.
        for i in 0..self.trace.watched_cc_flows().len() {
            let f = self.trace.watched_cc_flows()[i];
            if let Some(meta) = self.flow_dir.get(&f) {
                if let NodeSlot::Host(h) = &self.nodes[meta.src.0] {
                    if let Some(d) = h.cc_rate(f) {
                        self.trace
                            .record_cc_rate(i, now, d.rate.as_bps() as f64);
                    }
                }
            }
        }
        // Observatory time-series rows: one gated block of pure reads, so
        // the disabled path costs a single branch and the enabled path
        // cannot perturb the schedule.
        if self.trace.observatory.is_enabled() {
            self.kernel.prof.enter(Phase::Observatory);
            for i in 0..self.trace.watched_queues().len() {
                let (n, p) = self.trace.watched_queues()[i];
                if let NodeSlot::Switch(sw) = &self.nodes[n.0] {
                    let (q, _) = sw.snapshot(p);
                    self.trace.observatory.note_queue_sample(now, n, p, q);
                }
            }
            let flows: Vec<FlowId> = self.trace.watched_flows().to_vec();
            for (i, f) in flows.into_iter().enumerate() {
                let goodput = self.trace.flow_rate_series[i]
                    .last()
                    .map(|s| s.v as u64)
                    .unwrap_or(0);
                let rp_bps = self
                    .flow_dir
                    .get(&f)
                    .and_then(|meta| match &self.nodes[meta.src.0] {
                        NodeSlot::Host(h) => h.cc_rate(f).map(|d| d.rate.as_bps()),
                        NodeSlot::Switch(_) => None,
                    })
                    .unwrap_or(0);
                self.trace.observatory.note_flow_sample(now, f, rp_bps, goodput);
            }
            self.trace.observatory.sample_tick(now);
            self.kernel.prof.enter(Phase::Telemetry);
        }
        self.kernel.schedule(now + period, Event::Sample);
    }
}

/// Write a failed verdict's JSON into `dir` for artifact collection.
/// Best-effort: a verdict dump must never take down the run that produced
/// it, so failures are reported on stderr (with the typed
/// [`crate::artifacts::ArtifactError`]) instead of panicking or being
/// silently swallowed.
fn dump_verdict(dir: &str, verdict: &RunVerdict) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let path = std::path::Path::new(dir).join(format!("verdict_{pid}_{n}.json"));
    if let Err(e) = crate::artifacts::write_artifact(&path, &verdict.to_json()) {
        eprintln!("ROCC_VERDICT_DIR dump failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{NullHostCcFactory, NullSwitchCcFactory};
    use crate::topology::TopologyBuilder;

    fn two_hosts_one_switch() -> Topology {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host("h0");
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw", NodeRole::Switch);
        b.connect(h0, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        b.connect(h1, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        b.build()
    }

    #[test]
    fn single_flow_completes_and_fct_is_sane() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 100_000,
            start: SimTime::ZERO,
            offered: None,
        });
        sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        assert_eq!(sim.trace.fcts.len(), 1);
        let fct = sim.trace.fcts[0].fct();
        // 100 kB at 40 Gb/s ≈ 21 µs (incl. headers) + 2 µs propagation +
        // store-and-forward; must be well under 100 µs and over 20 µs.
        assert!(fct.as_nanos() > 20_000, "FCT too small: {fct}");
        assert!(fct.as_nanos() < 100_000, "FCT too large: {fct}");
        assert_eq!(sim.trace.drops, 0);
        assert_eq!(sim.trace.unroutable_drops, 0);
        assert_eq!(sim.trace.retx_bytes, 0);
    }

    #[test]
    fn two_flows_share_bottleneck_fairly_at_line_rate() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_host("s0");
        let s1 = b.add_host("s1");
        let d = b.add_host("d");
        let sw = b.add_switch("sw", NodeRole::Switch);
        for h in [s0, s1, d] {
            b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        }
        let topo = b.build();
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        // Identical offered sizes; PFC keeps it lossless so both complete.
        for (i, src) in [s0, s1].into_iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src,
                dst: d,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        assert_eq!(sim.trace.fcts.len(), 2);
        let a = sim.trace.fcts[0].fct().as_nanos() as f64;
        let b2 = sim.trace.fcts[1].fct().as_nanos() as f64;
        // Both flows finish within 25% of each other (round-robin service).
        assert!((a - b2).abs() / a.max(b2) < 0.25, "unfair: {a} vs {b2}");
        assert_eq!(sim.trace.drops, 0);
        assert_eq!(sim.trace.unroutable_drops, 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let topo = two_hosts_one_switch();
            let h0 = topo.hosts()[0];
            let h1 = topo.hosts()[1];
            let mut sim = Sim::new(
                topo,
                SimConfig::default(),
                Box::new(NullHostCcFactory),
                Box::new(NullSwitchCcFactory),
            );
            for i in 0..10 {
                sim.add_flow(FlowSpec {
                    id: FlowId(i),
                    src: h0,
                    dst: h1,
                    size: 50_000 + i * 1000,
                    start: SimTime::from_micros(i * 3),
                    offered: None,
                });
            }
            sim.run_until(SimTime::from_millis(10));
            (
                sim.events_processed(),
                sim.trace
                    .fcts
                    .iter()
                    .map(|r| (r.flow, r.end.as_nanos()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pfc_pauses_prevent_drops_under_incast() {
        // 4 senders incast one 10G receiver link through a switch with
        // lossless PFC: zero drops by construction.
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let d = b.add_host("d");
        b.connect(d, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..4 {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let topo = b.build();
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst: d,
                size: 2_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        assert_eq!(sim.trace.drops, 0);
        assert_eq!(sim.trace.unroutable_drops, 0);
        assert!(
            !sim.trace.pfc_events.is_empty(),
            "incast at line rate must trigger PFC"
        );
    }

    #[test]
    fn lossy_mode_drops_and_recovers_via_go_back_n() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let d = b.add_host("d");
        b.connect(d, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..4 {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let topo = b.build();
        let mut cfg = SimConfig::default();
        cfg.buffer_mode = crate::config::BufferMode::LossyTailDrop {
            limit_bytes: 30_000,
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst: d,
                size: 500_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        assert!(
            sim.run_until_flows_done(SimTime::from_millis(500)).is_complete(),
            "flows must complete despite drops"
        );
        assert!(sim.trace.drops > 0, "tiny buffer incast must drop");
        assert_eq!(sim.trace.unroutable_drops, 0);
        assert!(sim.trace.retx_bytes > 0, "go-back-N must retransmit");
    }

    #[test]
    fn offered_rate_caps_throughput() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        // 1 Gb/s offered for 10 ms → ~1.25 MB delivered (payload).
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(BitRate::from_gbps(1)),
        });
        sim.run_until(SimTime::from_millis(10));
        let delivered = sim.trace.delivered_bytes(FlowId(1));
        let expect = 1.25e6 * 1000.0 / 1048.0; // wire-rate cap incl. headers
        let err = (delivered as f64 - expect).abs() / expect;
        assert!(err < 0.05, "delivered {delivered} vs expected {expect}");
    }

    #[test]
    fn event_budget_exhaustion_yields_typed_verdict() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut cfg = SimConfig::default();
        cfg.budget = crate::config::RunBudget {
            max_events: Some(50),
            stall_events: None,
            wall_clock_ms: None,
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 10_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
        let v = sim.run_until_flows_done(SimTime::from_millis(100));
        match v.err() {
            Some(e @ SimError::BudgetExhausted { limit, events, .. }) => {
                assert_eq!(*limit, 50);
                assert_eq!(*events, 50);
                assert!(e.is_budget());
                assert!(e.to_json().contains("\"verdict\":\"budget_exhausted\""));
                assert_eq!(
                    e.kind(),
                    crate::telemetry::VerdictKind::BudgetExhausted
                );
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(sim.events_processed(), 50);
    }

    /// A zero sample period makes `Sample` reschedule itself at `now`
    /// forever: the clock can never pass the first sampling instant. The
    /// sim-time deadline is useless here — only the livelock guard fires.
    #[test]
    fn livelock_is_detected_as_stalled() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut cfg = SimConfig::default();
        cfg.budget = crate::config::RunBudget {
            max_events: None,
            stall_events: Some(10_000),
            wall_clock_ms: None,
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.trace.sample_period = Some(SimDuration::ZERO);
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 100_000,
            start: SimTime::ZERO,
            offered: None,
        });
        let v = sim.run_until_flows_done(SimTime::from_millis(100));
        match v.err() {
            Some(e @ SimError::Stalled { events_at_instant, incomplete_flows, .. }) => {
                assert!(*events_at_instant >= 10_000);
                assert_eq!(*incomplete_flows, 1);
                assert!(e.is_budget());
                assert!(e.to_json().contains("\"verdict\":\"stalled\""));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn open_ended_run_records_budget_failure() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut cfg = SimConfig::default();
        cfg.budget = crate::config::RunBudget {
            max_events: None,
            stall_events: Some(1_000),
            wall_clock_ms: None,
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.trace.sample_period = Some(SimDuration::ZERO);
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(BitRate::from_gbps(1)),
        });
        sim.run_until(SimTime::from_millis(1));
        assert!(
            matches!(sim.budget_failure(), Some(SimError::Stalled { .. })),
            "open-ended livelock must be recorded: {:?}",
            sim.budget_failure()
        );
    }

    #[test]
    fn healthy_run_is_bit_identical_under_budgets() {
        let run = |budget: crate::config::RunBudget| {
            let topo = two_hosts_one_switch();
            let h0 = topo.hosts()[0];
            let h1 = topo.hosts()[1];
            let mut cfg = SimConfig::default();
            cfg.budget = budget;
            let mut sim = Sim::new(
                topo,
                cfg,
                Box::new(NullHostCcFactory),
                Box::new(NullSwitchCcFactory),
            );
            sim.add_flow(FlowSpec {
                id: FlowId(1),
                src: h0,
                dst: h1,
                size: 200_000,
                start: SimTime::ZERO,
                offered: None,
            });
            sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
            (
                sim.events_processed(),
                sim.trace.fcts.iter().map(|r| r.end.as_nanos()).collect::<Vec<_>>(),
            )
        };
        let loose = crate::config::RunBudget::unlimited();
        let guarded = crate::config::RunBudget {
            max_events: Some(u64::MAX),
            stall_events: Some(1_000_000),
            wall_clock_ms: Some(3_600_000),
        };
        assert_eq!(run(loose), run(guarded));
    }

    #[test]
    fn wall_clock_budget_yields_typed_verdict() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut cfg = SimConfig::default();
        // A zero-millisecond ceiling trips on the first strided check,
        // making the test deterministic regardless of host speed.
        cfg.budget = crate::config::RunBudget::default().with_wall_clock_ms(0);
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 10_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
        let v = sim.run_until_flows_done(SimTime::from_millis(100));
        match v.err() {
            Some(e @ SimError::WallClockExceeded { limit_ms, incomplete_flows, .. }) => {
                assert_eq!(*limit_ms, 0);
                assert_eq!(*incomplete_flows, 1);
                assert!(e.is_budget(), "wall-clock breaches are a budget class");
                assert!(e.to_json().contains("\"verdict\":\"wall_clock_exceeded\""));
                assert_eq!(e.kind(), crate::telemetry::VerdictKind::WallClockExceeded);
            }
            other => panic!("expected WallClockExceeded, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_restore_roundtrip_mid_run_is_bit_identical() {
        let build = || {
            let topo = two_hosts_one_switch();
            let h0 = topo.hosts()[0];
            let h1 = topo.hosts()[1];
            let mut sim = Sim::new(
                topo,
                SimConfig::default(),
                Box::new(NullHostCcFactory),
                Box::new(NullSwitchCcFactory),
            );
            for i in 0..4 {
                sim.add_flow(FlowSpec {
                    id: FlowId(i),
                    src: h0,
                    dst: h1,
                    size: 100_000 + i * 7_000,
                    start: SimTime::from_micros(i * 2),
                    offered: None,
                });
            }
            sim
        };
        let digest = |sim: &Sim| {
            (
                sim.events_processed(),
                sim.kernel.now,
                sim.trace
                    .fcts
                    .iter()
                    .map(|r| (r.flow, r.end.as_nanos()))
                    .collect::<Vec<_>>(),
            )
        };
        // Control: run to completion uninterrupted.
        let mut control = build();
        control.run_until_flows_done(SimTime::from_millis(100)).assert_complete();

        // Snapshot mid-run, restore into a fresh sim, finish both.
        let mut a = build();
        for _ in 0..500 {
            assert!(a.step(), "run too short for the test");
        }
        let snap = a.snapshot();
        let info = crate::snapshot::inspect(&snap).expect("snapshot must inspect cleanly");
        assert_eq!(info.events_processed, 500);
        let mut b = build();
        b.restore(&snap).expect("restore into an identical rebuild");
        assert_eq!(b.events_processed(), 500);
        a.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        b.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        assert_eq!(digest(&a), digest(&b), "restored run must match the donor");
        assert_eq!(digest(&b), digest(&control), "restored run must match uninterrupted");
    }

    #[test]
    fn restore_rejects_mismatched_config_and_corruption() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 100_000,
            start: SimTime::ZERO,
            offered: None,
        });
        for _ in 0..50 {
            sim.step();
        }
        let snap = sim.snapshot();

        // Different seed → ConfigMismatch.
        let mut cfg = SimConfig::default();
        cfg.seed = 999;
        let mut other = Sim::new(
            two_hosts_one_switch(),
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::ConfigMismatch { .. })
        ));

        // Flipped body byte → DigestMismatch at unframe time.
        let mut bad = snap.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        let mut fresh = Sim::new(
            two_hosts_one_switch(),
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        fresh.add_flow(FlowSpec {
            id: FlowId(1),
            src: fresh.topo().hosts()[0],
            dst: fresh.topo().hosts()[1],
            size: 100_000,
            start: SimTime::ZERO,
            offered: None,
        });
        assert!(matches!(
            fresh.restore(&bad),
            Err(SnapshotError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn auto_checkpoint_fires_on_stride_and_snapshots_restore() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 300_000,
            start: SimTime::ZERO,
            offered: None,
        });
        let taken: Rc<RefCell<Vec<(u64, Vec<u8>)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = {
            let taken = Rc::clone(&taken);
            Box::new(move |events: u64, bytes: &[u8]| {
                taken.borrow_mut().push((events, bytes.to_vec()));
            })
        };
        sim.enable_auto_checkpoint(200, sink);
        sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        let final_digest = (
            sim.events_processed(),
            sim.trace.fcts.iter().map(|r| r.end.as_nanos()).collect::<Vec<_>>(),
        );
        let taken = taken.borrow();
        assert!(!taken.is_empty(), "stride 200 must fire at least once");
        for (events, _) in taken.iter() {
            assert_eq!(events % 200, 0, "checkpoints fire on stride multiples");
        }
        // The last checkpoint resumes to the same completion state.
        let (_, ref bytes) = taken[taken.len() - 1];
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut resumed = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        resumed.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 300_000,
            start: SimTime::ZERO,
            offered: None,
        });
        resumed.restore(bytes).expect("checkpoint restores");
        resumed.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        let resumed_digest = (
            resumed.events_processed(),
            resumed.trace.fcts.iter().map(|r| r.end.as_nanos()).collect::<Vec<_>>(),
        );
        assert_eq!(resumed_digest, final_digest);
    }

    #[test]
    fn events_for_permanently_crashed_host_are_abandoned() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut cfg = SimConfig::default();
        cfg.fault_plan = crate::fault::FaultPlan::default()
            .with_host_crash_forever(h0, SimTime::from_micros(5));
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        // The flow starts after the crash: its FlowStart must be abandoned,
        // not re-queued every 100 µs until the deadline.
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 100_000,
            start: SimTime::from_micros(10),
            offered: None,
        });
        let v = sim.run_until_flows_done(SimTime::from_millis(100));
        assert!(
            matches!(v.err(), Some(SimError::Drained { incomplete_flows: 1, .. })),
            "run must drain, not churn to the deadline: {v:?}"
        );
        assert_eq!(sim.trace.faults.abandoned_events, 1);
        // No 100 µs retry churn: the whole run is a handful of events.
        assert!(
            sim.events_processed() < 20,
            "event churn despite abandonment: {}",
            sim.events_processed()
        );
    }

    #[test]
    fn crashed_host_with_scheduled_restore_still_retries() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut cfg = SimConfig::default();
        cfg.fault_plan = crate::fault::FaultPlan::default().with_host_crash(
            h0,
            SimTime::from_micros(5),
            SimTime::from_micros(300),
        );
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: 100_000,
            start: SimTime::from_micros(10),
            offered: None,
        });
        sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
        assert_eq!(sim.trace.faults.abandoned_events, 0);
    }

    #[test]
    fn flow_stop_halts_traffic() {
        let topo = two_hosts_one_switch();
        let h0 = topo.hosts()[0];
        let h1 = topo.hosts()[1];
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.add_flow(FlowSpec {
            id: FlowId(1),
            src: h0,
            dst: h1,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(BitRate::from_gbps(10)),
        });
        sim.stop_flow_at(FlowId(1), SimTime::from_millis(1));
        sim.run_until(SimTime::from_millis(2));
        let at_stop = sim.trace.delivered_bytes(FlowId(1));
        sim.run_until(SimTime::from_millis(5));
        let later = sim.trace.delivered_bytes(FlowId(1));
        // Only in-flight residue may arrive after the stop.
        assert!(later - at_stop < 10_000, "flow kept sending after stop");
    }

    #[test]
    fn requeue_updates_peak_pending() {
        // Pin the requeue accounting fix: a requeue that grows the queue
        // past every prior high-water mark must raise `peak_pending`,
        // exactly like `schedule` does. Before the fix, requeue re-pushed
        // without touching `peak_heap`, under-reporting peaks on
        // deadline-bounded runs (where the loop pops one event past the
        // deadline and puts it back).
        let topo = two_hosts_one_switch();
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.kernel.schedule(SimTime::from_micros(5), Event::Sample);
        sim.kernel.schedule(SimTime::from_micros(6), Event::Sample);
        assert_eq!(sim.kernel.peak_pending(), 2);
        let head = sim.kernel.pop().expect("two events pending");
        // Simulate a fresh kernel whose only growth is via requeue: reset
        // the watermark (tests live in the module, fields are reachable)
        // and put the popped head back.
        sim.kernel.peak_heap = 0;
        sim.kernel.requeue(head);
        assert_eq!(
            sim.kernel.peak_pending(),
            2,
            "requeue must update the peak-pending watermark"
        );
        assert_eq!(sim.kernel.pending(), 2);
    }

    #[test]
    fn past_due_schedule_is_clamped_counted_and_published() {
        // Pin the clamp-observability fix: scheduling below `now` still
        // clamps forward (the event dispatches at `now`), but the clamp is
        // now counted, bumps the `sched.past_due_clamp` telemetry counter,
        // and publishes a sanitizer-class `SchedClamp` event carrying the
        // requested (pre-clamp) timestamp.
        let topo = two_hosts_one_switch();
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.trace.telemetry.enable_metrics();
        sim.trace.telemetry.collect(EventMask::SANITIZER);
        sim.kernel.now = SimTime::from_micros(10);
        sim.kernel.schedule(SimTime::from_micros(3), Event::Sample);
        assert_eq!(sim.kernel.past_due_clamps(), 1);
        assert!(sim.step(), "clamped event must still dispatch");
        assert_eq!(
            sim.kernel.now,
            SimTime::from_micros(10),
            "clamped event dispatches at the clock, not in the past"
        );
        assert_eq!(sim.trace.telemetry.counter_total("sched.past_due_clamp"), 1);
        let clamp = sim
            .trace
            .telemetry
            .events
            .iter()
            .find_map(|e| match e {
                SimEvent::SchedClamp { t, requested, total } => Some((*t, *requested, *total)),
                _ => None,
            })
            .expect("SchedClamp event published under the sanitizer mask");
        assert_eq!(clamp.0, SimTime::from_micros(10));
        assert_eq!(clamp.1, SimTime::from_micros(3));
        assert_eq!(clamp.2, 1);
    }

    #[test]
    fn clamp_publication_is_gated_on_the_sanitizer_mask() {
        // The counter is always maintained (it is plain arithmetic), but
        // the event publication must stay behind the sanitizer mask so
        // disabled-telemetry runs pay only the one comparison.
        let topo = two_hosts_one_switch();
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        sim.kernel.now = SimTime::from_micros(10);
        sim.kernel.schedule(SimTime::from_micros(3), Event::Sample);
        assert!(sim.step());
        assert_eq!(sim.kernel.past_due_clamps(), 1);
        assert!(
            sim.trace.telemetry.events.is_empty(),
            "no event published without the sanitizer mask"
        );
    }

    #[test]
    fn scheduler_backend_swap_preserves_the_pending_schedule() {
        // `set_scheduler_backend` migrates every pending event in (at,
        // seq) order; a run split across a mid-flight swap must land on
        // the same trajectory as an unswapped run.
        let topo = two_hosts_one_switch();
        let mut sim = Sim::new(
            topo,
            SimConfig::default(),
            Box::new(NullHostCcFactory),
            Box::new(NullSwitchCcFactory),
        );
        for i in 0..16u64 {
            // Two events per instant so FIFO-within-timestamp matters.
            sim.kernel
                .schedule(SimTime::from_micros(5 + i / 2), Event::Sample);
        }
        let before: Vec<_> = {
            let mut q = sim.kernel.sched.entries();
            q.sort_by_key(|&(at, seq, _)| (at, seq));
            q.into_iter().map(|(at, seq, _)| (at, seq)).collect()
        };
        let other = match sim.kernel.scheduler_backend() {
            Backend::Heap => Backend::Wheel,
            Backend::Wheel => Backend::Heap,
        };
        sim.kernel.set_scheduler_backend(other);
        assert_eq!(sim.kernel.scheduler_backend(), other);
        let mut popped = Vec::new();
        while let Some(s) = sim.kernel.pop() {
            popped.push((s.at, s.seq));
        }
        assert_eq!(popped, before, "swap must not reorder pending events");
    }
}
