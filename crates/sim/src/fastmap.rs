//! Fast hashing for hot-path lookup tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! lookup — wasted work inside a simulator whose keys are small integers it
//! generated itself. This module provides the well-known Fx hash (one
//! multiply + rotate + xor per word, as used by the Rust compiler's own
//! interner tables), hand-rolled here because the build is offline and
//! cannot take the `rustc-hash` crate as a dependency.
//!
//! Determinism note: only *lookup* behavior changes. Any map whose
//! iteration order can reach scheduling, telemetry ordering, or verdict
//! output must stay `BTreeMap` (or sort before iterating) regardless of
//! hasher — see DESIGN.md §3e.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (derived from the golden ratio; the same constant
/// rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation distance between absorbed words.
const ROTATE: u32 = 5;

/// The Fx hasher: fast, deterministic, not DoS-resistant — fine for keys
/// the simulator itself mints (flow ids, node/port pairs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed through [`FxHasher`]. Drop-in for `std::HashMap` on
/// hot paths whose iteration order never escapes into outputs.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.get(&2), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        // No per-instance random state: the same key always hashes the
        // same, in-process and across processes.
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn tuple_and_partial_word_keys_hash() {
        let mut m: FxHashMap<(usize, u32), u64> = FxHashMap::default();
        m.insert((3, 7), 99);
        assert_eq!(m[&(3, 7)], 99);
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]); // exercises the remainder path
        assert_ne!(h.finish(), 0);
    }
}
