//! DCQCN (Zhu et al., SIGCOMM '15) — the widely deployed source-driven
//! RoCEv2 congestion control the paper compares against.
//!
//! * **CP (switch)**: RED-style probabilistic ECN marking on egress queue
//!   depth between Kmin and Kmax.
//! * **NP (receiver)**: relays marks back as CNPs, at most one per flow per
//!   50 µs. In this implementation the receiver echoes the ECN bit on every
//!   ACK and the sender-side NP filter applies the 50 µs coalescing — the
//!   signal path and latency are identical, without a second control-packet
//!   type on the wire.
//! * **RP (sender)**: on CNP, cut rate by `α/2` and raise `α`; `α` decays on
//!   a timer; rate recovers in QCN-style fast-recovery / additive-increase /
//!   hyper-increase stages driven by a byte counter and a timer.

use rand::Rng;
use rocc_sim::cc::{
    AckEvent, HostCc, HostCcCtx, PacketMeta, RateDecision, SwitchCc, SwitchCcCtx, SwitchCcFactory,
};
use rocc_sim::prelude::{BitRate, CpId, FlowId, SimDuration, SimTime};

/// ECN marking thresholds for one egress port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// No marking below this queue depth (bytes).
    pub k_min: u64,
    /// Mark everything above this queue depth (bytes).
    pub k_max: u64,
    /// Marking probability at `k_max`.
    pub p_max: f64,
}

impl RedParams {
    /// Thresholds scaled to the egress line rate (the usual deployment
    /// guidance scales Kmin/Kmax with link speed).
    pub fn for_link_rate(rate: BitRate) -> Self {
        let gbps = rate.as_bps() as f64 / 1e9;
        let scale = (gbps / 40.0).max(0.25);
        RedParams {
            k_min: (40_000.0 * scale) as u64,
            k_max: (160_000.0 * scale) as u64,
            p_max: 0.2,
        }
    }

    /// Marking probability at queue depth `q` bytes.
    pub fn mark_probability(&self, q: u64) -> f64 {
        if q <= self.k_min {
            0.0
        } else if q >= self.k_max {
            1.0
        } else {
            self.p_max * (q - self.k_min) as f64 / (self.k_max - self.k_min) as f64
        }
    }
}

/// DCQCN's switch side: RED/ECN marking at enqueue.
pub struct DcqcnSwitchCc {
    red: RedParams,
}

impl DcqcnSwitchCc {
    /// Build with explicit thresholds.
    pub fn new(red: RedParams) -> Self {
        DcqcnSwitchCc { red }
    }
}

impl SwitchCc for DcqcnSwitchCc {
    fn on_enqueue(&mut self, ctx: &mut SwitchCcCtx<'_>, _pkt: PacketMeta) -> bool {
        let p = self.red.mark_probability(ctx.qlen_bytes);
        p > 0.0 && ctx.rng.gen::<f64>() < p
    }
}

/// Factory for [`DcqcnSwitchCc`] with per-port thresholds from line rate.
#[derive(Debug, Default, Clone, Copy)]
pub struct DcqcnSwitchCcFactory {
    /// Optional threshold override applied to every port.
    pub red_override: Option<RedParams>,
}

impl SwitchCcFactory for DcqcnSwitchCcFactory {
    fn make(&self, _cp: CpId, link_rate: BitRate) -> Box<dyn SwitchCc> {
        let red = self
            .red_override
            .unwrap_or_else(|| RedParams::for_link_rate(link_rate));
        Box::new(DcqcnSwitchCc::new(red))
    }
}

/// RP parameters (defaults follow the DCQCN paper / common NIC settings,
/// with the increase timer tightened for microsecond-scale fabrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcqcnParams {
    /// α EWMA gain g (paper: 1/256).
    pub g: f64,
    /// Minimum gap between honored congestion notifications (paper: 50 µs).
    pub cnp_interval: SimDuration,
    /// α decay timer when no CNP arrives (paper: 55 µs).
    pub alpha_timer: SimDuration,
    /// Rate-increase timer period.
    pub increase_timer: SimDuration,
    /// Rate-increase byte counter.
    pub byte_counter: u64,
    /// Fast-recovery rounds before additive increase (paper: F = 5).
    pub fast_recovery_rounds: u32,
    /// Additive increase step.
    pub r_ai: BitRate,
    /// Hyper increase step.
    pub r_hai: BitRate,
    /// Minimum rate floor.
    pub r_min: BitRate,
}

impl Default for DcqcnParams {
    fn default() -> Self {
        DcqcnParams {
            g: 1.0 / 256.0,
            cnp_interval: SimDuration::from_micros(50),
            alpha_timer: SimDuration::from_micros(55),
            increase_timer: SimDuration::from_micros(55),
            byte_counter: 10_000_000,
            fast_recovery_rounds: 5,
            r_ai: BitRate::from_mbps(50),
            r_hai: BitRate::from_mbps(500),
            r_min: BitRate::from_mbps(40),
        }
    }
}

/// Timer token: α decay.
const ALPHA_TOKEN: u8 = 0;
/// Timer token: rate increase.
const INCREASE_TOKEN: u8 = 1;

/// DCQCN's per-flow reaction point.
pub struct DcqcnHostCc {
    p: DcqcnParams,
    r_max: BitRate,
    /// Current rate Rc.
    rc: BitRate,
    /// Target rate Rt.
    rt: BitRate,
    alpha: f64,
    /// Last honored congestion notification.
    last_cnp: Option<SimTime>,
    /// Increase-stage counters.
    t_count: u32,
    bc_count: u32,
    bytes_since_increase: u64,
}

impl DcqcnHostCc {
    /// New flow at line rate (DCQCN starts at full rate).
    pub fn new(p: DcqcnParams, r_max: BitRate) -> Self {
        DcqcnHostCc {
            p,
            r_max,
            rc: r_max,
            rt: r_max,
            alpha: 1.0,
            last_cnp: None,
            t_count: 0,
            bc_count: 0,
            bytes_since_increase: 0,
        }
    }

    /// Current α (tests/diagnostics).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn cut_rate(&mut self, ctx: &mut HostCcCtx) {
        self.rt = self.rc;
        self.rc = self.rc.scale(1.0 - self.alpha / 2.0).max(self.p.r_min);
        self.alpha = (1.0 - self.p.g) * self.alpha + self.p.g;
        self.t_count = 0;
        self.bc_count = 0;
        self.bytes_since_increase = 0;
        ctx.set_timer(ALPHA_TOKEN, self.p.alpha_timer);
        ctx.set_timer(INCREASE_TOKEN, self.p.increase_timer);
    }

    /// One fast-recovery / additive / hyper increase event.
    fn increase_event(&mut self, stage_from_timer: bool) {
        if stage_from_timer {
            self.t_count += 1;
        } else {
            self.bc_count += 1;
        }
        let f = self.p.fast_recovery_rounds;
        if self.t_count.min(self.bc_count) >= f && self.t_count.max(self.bc_count) > f {
            // Hyper increase.
            self.rt = (self.rt + self.p.r_hai).min(self.r_max);
        } else if self.t_count > f || self.bc_count > f {
            // Additive increase.
            self.rt = (self.rt + self.p.r_ai).min(self.r_max);
        }
        // Fast recovery step toward target in every stage.
        self.rc = BitRate::from_bps((self.rc.as_bps() + self.rt.as_bps()) / 2).min(self.r_max);
    }
}

impl HostCc for DcqcnHostCc {
    fn decision(&self) -> RateDecision {
        RateDecision::line_rate(self.rc.min(self.r_max))
    }

    fn on_ack(&mut self, ctx: &mut HostCcCtx, ack: AckEvent) {
        if ack.ecn_echo {
            // NP-side CNP coalescing: honor at most one mark per interval.
            let due = self
                .last_cnp
                .is_none_or(|t| ctx.now.saturating_since(t) >= self.p.cnp_interval);
            if due {
                self.last_cnp = Some(ctx.now);
                self.cut_rate(ctx);
                return;
            }
        }
        // Byte-counter stage progress.
        self.bytes_since_increase += ack.newly_acked;
        if self.bytes_since_increase >= self.p.byte_counter {
            self.bytes_since_increase = 0;
            self.increase_event(false);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCcCtx, token: u8) {
        match token {
            ALPHA_TOKEN => {
                self.alpha *= 1.0 - self.p.g;
                ctx.set_timer(ALPHA_TOKEN, self.p.alpha_timer);
            }
            INCREASE_TOKEN => {
                self.increase_event(true);
                ctx.set_timer(INCREASE_TOKEN, self.p.increase_timer);
            }
            _ => {}
        }
    }

    fn on_feedback(&mut self, ctx: &mut HostCcCtx, fb: rocc_sim::cc::FeedbackEvent) {
        // Explicit DCQCN CNPs (if a receiver-side NP is used instead of
        // ACK echoes) take the same cut path, same coalescing.
        if matches!(fb, rocc_sim::cc::FeedbackEvent::DcqcnCnp) {
            let due = self
                .last_cnp
                .is_none_or(|t| ctx.now.saturating_since(t) >= self.p.cnp_interval);
            if due {
                self.last_cnp = Some(ctx.now);
                self.cut_rate(ctx);
            }
        }
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.rc.as_bps());
        out.push(self.rt.as_bps());
        out.push(self.alpha.to_bits());
        match self.last_cnp {
            None => out.extend_from_slice(&[0, 0]),
            Some(t) => out.extend_from_slice(&[1, t.as_nanos()]),
        }
        out.push(self.t_count as u64);
        out.push(self.bc_count as u64);
        out.push(self.bytes_since_increase);
    }

    fn restore_state(&mut self, state: &[u64]) {
        let [rc, rt, alpha, has_cnp, cnp_ns, t_count, bc_count, bytes] = state else {
            return; // digest-verified upstream; short input is a no-op
        };
        self.rc = BitRate::from_bps(*rc);
        self.rt = BitRate::from_bps(*rt);
        self.alpha = f64::from_bits(*alpha);
        self.last_cnp = (*has_cnp != 0).then(|| SimTime::from_nanos(*cnp_ns));
        self.t_count = *t_count as u32;
        self.bc_count = *bc_count as u32;
        self.bytes_since_increase = *bytes;
    }
}

/// Factory for [`DcqcnHostCc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DcqcnHostCcFactory {
    /// RP parameter overrides.
    pub params: Option<DcqcnParams>,
}

impl rocc_sim::cc::HostCcFactory for DcqcnHostCcFactory {
    fn make(&self, _flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        Box::new(DcqcnHostCc::new(
            self.params.unwrap_or_default(),
            link_rate,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::packet::IntStack;

    fn ctx_at(us: u64) -> HostCcCtx {
        HostCcCtx {
            now: SimTime::from_micros(us),
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: rocc_sim::telemetry::EventMask::NONE,
        }
    }

    fn marked_ack() -> AckEvent {
        AckEvent {
            newly_acked: 1000,
            cum_seq: 1000,
            rtt: SimDuration::from_micros(10),
            ecn_echo: true,
            int: IntStack::new(),
        }
    }

    #[test]
    fn red_probability_curve() {
        let r = RedParams {
            k_min: 100,
            k_max: 300,
            p_max: 0.2,
        };
        assert_eq!(r.mark_probability(50), 0.0);
        assert_eq!(r.mark_probability(100), 0.0);
        assert!((r.mark_probability(200) - 0.1).abs() < 1e-12);
        assert_eq!(r.mark_probability(300), 1.0);
        assert_eq!(r.mark_probability(1000), 1.0);
    }

    #[test]
    fn red_scales_with_link_rate() {
        let r40 = RedParams::for_link_rate(BitRate::from_gbps(40));
        let r100 = RedParams::for_link_rate(BitRate::from_gbps(100));
        assert!(r100.k_min > r40.k_min);
        assert_eq!(r40.k_min, 40_000);
    }

    #[test]
    fn first_mark_cuts_by_half_alpha() {
        let mut cc = DcqcnHostCc::new(DcqcnParams::default(), BitRate::from_gbps(40));
        let mut c = ctx_at(100);
        cc.on_ack(&mut c, marked_ack());
        // α starts at 1: cut = 1 - 1/2 = 0.5, and the α update
        // (1-g)·1 + g keeps α at its fixed point of 1.
        assert_eq!(cc.decision().rate, BitRate::from_gbps(20));
        assert!((cc.alpha() - 1.0).abs() < 1e-12);
        assert_eq!(c.set_timers.len(), 2, "alpha + increase timers armed");
    }

    #[test]
    fn cnp_coalescing_honors_50us_window() {
        let mut cc = DcqcnHostCc::new(DcqcnParams::default(), BitRate::from_gbps(40));
        let mut c = ctx_at(100);
        cc.on_ack(&mut c, marked_ack());
        let r1 = cc.decision().rate;
        // A second mark 10 µs later is coalesced away.
        let mut c = ctx_at(110);
        cc.on_ack(&mut c, marked_ack());
        assert_eq!(cc.decision().rate, r1);
        // 60 µs later it is honored.
        let mut c = ctx_at(160);
        cc.on_ack(&mut c, marked_ack());
        assert!(cc.decision().rate < r1);
    }

    #[test]
    fn fast_recovery_returns_toward_target() {
        let mut cc = DcqcnHostCc::new(DcqcnParams::default(), BitRate::from_gbps(40));
        let mut c = ctx_at(0);
        cc.on_ack(&mut c, marked_ack()); // Rc=20G, Rt=40G
        for _ in 0..3 {
            let mut c = ctx_at(1000);
            cc.on_timer(&mut c, INCREASE_TOKEN);
        }
        // 20 → 30 → 35 → 37.5 Gb/s.
        assert_eq!(cc.decision().rate, BitRate::from_bps(37_500_000_000));
    }

    #[test]
    fn additive_then_hyper_increase_after_fast_recovery() {
        let p = DcqcnParams::default();
        let mut cc = DcqcnHostCc::new(p, BitRate::from_gbps(40));
        let mut c = ctx_at(0);
        cc.on_ack(&mut c, marked_ack());
        // Exhaust fast recovery (5 rounds), then additive increases lift Rt
        // above the old target.
        for _ in 0..8 {
            let mut c = ctx_at(1000);
            cc.on_timer(&mut c, INCREASE_TOKEN);
        }
        assert!(cc.rt >= BitRate::from_gbps(40).min(cc.r_max));
        // Rate must never exceed line rate.
        assert!(cc.decision().rate <= BitRate::from_gbps(40));
    }

    #[test]
    fn alpha_decays_without_marks() {
        let mut cc = DcqcnHostCc::new(DcqcnParams::default(), BitRate::from_gbps(40));
        let mut c = ctx_at(0);
        cc.on_ack(&mut c, marked_ack());
        let a0 = cc.alpha();
        let mut c = ctx_at(100);
        cc.on_timer(&mut c, ALPHA_TOKEN);
        assert!(cc.alpha() < a0);
        assert_eq!(c.set_timers.len(), 1, "alpha timer re-armed");
    }

    #[test]
    fn rate_floor_respected() {
        let p = DcqcnParams::default();
        let mut cc = DcqcnHostCc::new(p, BitRate::from_gbps(40));
        // Many honored marks in a row.
        for i in 0..100 {
            let mut c = ctx_at(i * 60);
            cc.on_ack(&mut c, marked_ack());
        }
        assert!(cc.decision().rate >= p.r_min);
    }
}
