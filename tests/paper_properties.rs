//! The paper's headline claims, asserted end-to-end at reduced scale.

use rocc::core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc::experiments::{micro, Scale, Scheme};
use rocc::sim::cc::{NullHostCcFactory, NullSwitchCcFactory};
use rocc::sim::prelude::*;
use rocc::stats::jain_fairness;

/// §1: "RoCC can achieve up to 7× reduction in PFC frames generated under
/// high average load levels, compared to DCQCN" — mechanism check: under a
/// sustained heavy incast, RoCC generates far fewer PFC pauses than a
/// PFC-only fabric, because the CP keeps queues at Qref.
#[test]
fn rocc_suppresses_pfc_under_sustained_incast() {
    let run = |rocc: bool| -> usize {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let dst = b.add_host("dst");
        b.connect(sw, dst, BitRate::from_gbps(40), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..16 {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let (hf, sf): (
            Box<dyn rocc::sim::cc::HostCcFactory>,
            Box<dyn rocc::sim::cc::SwitchCcFactory>,
        ) = if rocc {
            (
                Box::new(RoccHostCcFactory::new()),
                Box::new(RoccSwitchCcFactory::new()),
            )
        } else {
            (Box::new(NullHostCcFactory), Box::new(NullSwitchCcFactory))
        };
        let mut sim = Sim::new(b.build(), SimConfig::default(), hf, sf);
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 4_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        sim.run_until(SimTime::from_millis(30));
        sim.trace.pfc_events.len()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        without > 0,
        "PFC-only fabric must pause under a 16-to-1 4MB incast"
    );
    assert!(
        with * 5 <= without,
        "RoCC must cut PFC drastically: {with} vs {without}"
    );
}

/// §6.1: RoCC is the fairest scheme in the Fig. 11 comparison.
#[test]
fn rocc_wins_the_fairness_comparison() {
    let rows = micro::fig11(Scale::Quick);
    let jain = |r: &micro::Fig11Row| jain_fairness(&r.per_flow_rate).unwrap();
    let rocc = rows.iter().find(|r| r.scheme == Scheme::Rocc).unwrap();
    for r in &rows {
        assert!(
            jain(rocc) >= jain(r) - 1e-6,
            "{} fairer than RoCC: {:.4} vs {:.4}",
            r.scheme.name(),
            jain(r),
            jain(rocc)
        );
    }
    assert!(jain(rocc) > 0.999, "RoCC fairness {:.5}", jain(rocc));
}

/// §6.1: RoCC's queue is the most stable around a nonzero operating point
/// (stable ≠ shallow: HPCC's queue is near-empty by design).
#[test]
fn rocc_queue_is_stable_at_reference() {
    let rows = micro::fig11(Scale::Quick);
    let rocc = rows.iter().find(|r| r.scheme == Scheme::Rocc).unwrap();
    // Near Qref...
    assert!(
        (rocc.queue_mean - 150_000.0).abs() < 40_000.0,
        "RoCC queue mean {:.0}",
        rocc.queue_mean
    );
    // ...with small relative variation.
    assert!(
        rocc.queue_sd / rocc.queue_mean < 0.2,
        "RoCC queue CoV {:.3}",
        rocc.queue_sd / rocc.queue_mean
    );
    // DCQCN fluctuates harder relative to its own operating point.
    let dcqcn = rows.iter().find(|r| r.scheme == Scheme::Dcqcn).unwrap();
    assert!(
        dcqcn.queue_sd / dcqcn.queue_mean.max(1.0) > rocc.queue_sd / rocc.queue_mean,
        "DCQCN should be less stable"
    );
}

/// §6.1 key takeaway (i): high utilization — RoCC keeps the bottleneck
/// above 95% while holding the queue at Qref.
#[test]
fn rocc_sustains_high_utilization() {
    let rows = micro::fig11(Scale::Quick);
    let rocc = rows.iter().find(|r| r.scheme == Scheme::Rocc).unwrap();
    assert!(rocc.util_mean > 0.95, "utilization {:.3}", rocc.util_mean);
}

/// Fig. 13's conclusion: the testbed profile (stack latency + jitter +
/// T = 100 µs) reproduces the clean simulation's equilibrium.
#[test]
fn testbed_profile_matches_simulation() {
    let runs = micro::fig13(Scale::Quick);
    let get = |profile: &str, scenario: &str| {
        runs.iter()
            .find(|r| r.profile == profile && r.scenario == scenario)
            .unwrap()
    };
    for scenario in ["uni", "mix"] {
        let sim = get("sim", scenario);
        let tb = get("testbed", scenario);
        assert!(
            (sim.queue_mean - tb.queue_mean).abs() < 20_000.0,
            "{scenario}: queue {:.0} vs {:.0}",
            sim.queue_mean,
            tb.queue_mean
        );
        for (a, b) in sim.goodput.iter().zip(&tb.goodput) {
            assert!(
                (a - b).abs() / a.max(1.0) < 0.15,
                "{scenario}: goodput {a:.2e} vs {b:.2e}"
            );
        }
    }
}
