//! Phase-margin and loop-bandwidth analysis (paper §5.2–§5.3, Figs. 5–7).

use crate::model::LoopModel;

/// Result of a stability analysis at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Margin {
    /// Gain-crossover frequency ω_c (rad/s) where |G(jω)| = 1.
    pub crossover_rad_s: f64,
    /// Phase margin 180° + arg G(jω_c), in degrees. Positive ⇒ stable.
    pub phase_margin_deg: f64,
}

impl Margin {
    /// Loop bandwidth in Hz (the paper's Fig. 7b metric).
    pub fn bandwidth_hz(&self) -> f64 {
        self.crossover_rad_s / (2.0 * std::f64::consts::PI)
    }
}

/// Find the gain crossover by bisection on log-frequency. |G| is strictly
/// decreasing (double integrator with a single zero), so the crossover is
/// unique.
pub fn gain_crossover(m: &LoopModel) -> f64 {
    let mut lo = 1e-2;
    // Expand the bracket until |G| crosses unity inside it (very large
    // loop gains — e.g. huge N — push the crossover arbitrarily high).
    while m.magnitude(lo) <= 1.0 && lo > 1e-30 {
        lo /= 1e3;
    }
    let mut hi = 1e9;
    while m.magnitude(hi) >= 1.0 && hi < 1e30 {
        hi *= 1e3;
    }
    debug_assert!(m.magnitude(lo) > 1.0, "|G| must start above unity");
    debug_assert!(m.magnitude(hi) < 1.0, "|G| must end below unity");
    for _ in 0..200 {
        let mid = (lo.ln() + hi.ln()) / 2.0;
        let w = mid.exp();
        if m.magnitude(w) > 1.0 {
            lo = w;
        } else {
            hi = w;
        }
    }
    (lo * hi).sqrt()
}

/// Full margin analysis of a loop model.
pub fn analyze(m: &LoopModel) -> Margin {
    let wc = gain_crossover(m);
    let pm = 180.0 + m.phase(wc).to_degrees();
    Margin {
        crossover_rad_s: wc,
        phase_margin_deg: pm,
    }
}

/// One cell of the Fig. 5 phase-margin surface.
#[derive(Debug, Clone, Copy)]
pub struct SurfacePoint {
    /// PI gain α.
    pub alpha: f64,
    /// PI gain β.
    pub beta: f64,
    /// Phase margin in degrees.
    pub phase_margin_deg: f64,
}

/// Fig. 5: phase margin over an (α, β) grid at fixed T and N.
pub fn phase_margin_surface(
    alphas: &[f64],
    betas: &[f64],
    n: f64,
) -> Vec<SurfacePoint> {
    let mut out = Vec::with_capacity(alphas.len() * betas.len());
    for &a in alphas {
        for &b in betas {
            let m = LoopModel::paper(a, b, n);
            out.push(SurfacePoint {
                alpha: a,
                beta: b,
                phase_margin_deg: analyze(&m).phase_margin_deg,
            });
        }
    }
    out
}

/// The paper's six α:β pairs for Fig. 7: start at 0.3 : 3 and halve.
pub fn fig7_gain_pairs() -> Vec<(f64, f64)> {
    let mut pairs = Vec::with_capacity(6);
    let (mut a, mut b) = (0.3, 3.0);
    for _ in 0..6 {
        pairs.push((a, b));
        a /= 2.0;
        b /= 2.0;
    }
    pairs
}

/// One point of the Fig. 6 Bode traces.
#[derive(Debug, Clone, Copy)]
pub struct BodePoint {
    /// Angular frequency (rad/s).
    pub w: f64,
    /// Gain in dB.
    pub gain_db: f64,
    /// Phase in degrees.
    pub phase_deg: f64,
}

/// Log-spaced Bode sweep between `w_lo` and `w_hi`.
pub fn bode_sweep(m: &LoopModel, w_lo: f64, w_hi: f64, points: usize) -> Vec<BodePoint> {
    assert!(points >= 2 && w_hi > w_lo && w_lo > 0.0);
    let step = (w_hi / w_lo).ln() / (points - 1) as f64;
    (0..points)
        .map(|i| {
            let w = w_lo * (step * i as f64).exp();
            BodePoint {
                w,
                gain_db: 20.0 * m.magnitude(w).log10(),
                phase_deg: m.phase(w).to_degrees(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_unity_gain() {
        let m = LoopModel::paper(0.3, 1.5, 2.0);
        let wc = gain_crossover(&m);
        assert!((m.magnitude(wc) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn default_40g_gains_are_stable_for_n2() {
        let m = LoopModel::paper(0.3, 1.5, 2.0);
        let r = analyze(&m);
        assert!(
            r.phase_margin_deg > 20.0,
            "N=2 must be comfortably stable: {:.1}°",
            r.phase_margin_deg
        );
    }

    #[test]
    fn fixed_gains_go_unstable_at_large_n() {
        // Paper Fig. 6: raising N from 2 to 10 with fixed gains collapses
        // the margin (50° → −50° in their example).
        let m = LoopModel::paper(0.3, 3.0, 128.0);
        let r = analyze(&m);
        assert!(
            r.phase_margin_deg < 0.0,
            "N=128 with the largest gains must be unstable: {:.1}°",
            r.phase_margin_deg
        );
    }

    #[test]
    fn conservative_pair_stable_for_all_n() {
        // Paper §5.2: α = 0.0093, β = 0.0937 keeps PM > 20° for N ∈ [2,128].
        for n in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            let m = LoopModel::paper(0.0093, 0.0937, n);
            let r = analyze(&m);
            assert!(
                r.phase_margin_deg > 20.0,
                "N={n}: PM {:.1}° ≤ 20°",
                r.phase_margin_deg
            );
        }
    }

    #[test]
    fn smaller_gains_slower_loop() {
        // Fig. 7b: halving the gains lowers loop bandwidth at fixed N.
        let fast = analyze(&LoopModel::paper(0.3, 3.0, 2.0));
        let slow = analyze(&LoopModel::paper(0.075, 0.75, 2.0));
        assert!(slow.bandwidth_hz() < fast.bandwidth_hz());
    }

    #[test]
    fn auto_tune_effect_keeps_margin_roughly_constant() {
        // The auto-tuner divides gains by ~N's octave, keeping N·α roughly
        // constant: PM at (N=2, pair 0) ≈ PM at (N=64, pair 5).
        let pairs = fig7_gain_pairs();
        let pm_small_n = analyze(&LoopModel::paper(pairs[0].0, pairs[0].1, 2.0));
        let pm_large_n = analyze(&LoopModel::paper(pairs[5].0, pairs[5].1, 64.0));
        assert!(
            (pm_small_n.phase_margin_deg - pm_large_n.phase_margin_deg).abs() < 10.0,
            "{:.1}° vs {:.1}°",
            pm_small_n.phase_margin_deg,
            pm_large_n.phase_margin_deg
        );
    }

    #[test]
    fn six_pairs_generated() {
        let p = fig7_gain_pairs();
        assert_eq!(p.len(), 6);
        assert!((p[0].0 - 0.3).abs() < 1e-12);
        assert!((p[5].0 - 0.3 / 32.0).abs() < 1e-12);
        assert!((p[5].1 - 3.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn surface_covers_grid() {
        let s = phase_margin_surface(&[0.01, 0.1], &[0.1, 1.0, 2.0], 2.0);
        assert_eq!(s.len(), 6);
        // Margin varies across the grid.
        let (min, max) = s.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
            (lo.min(p.phase_margin_deg), hi.max(p.phase_margin_deg))
        });
        assert!(max > min);
    }

    #[test]
    fn bode_sweep_shape() {
        let m = LoopModel::paper(0.3, 1.5, 2.0);
        let pts = bode_sweep(&m, 10.0, 1e6, 64);
        assert_eq!(pts.len(), 64);
        // Gain monotonically decreasing.
        for w in pts.windows(2) {
            assert!(w[1].gain_db < w[0].gain_db);
        }
    }
}
