//! Minimal complex arithmetic for frequency-domain analysis.
//!
//! Only what Bode analysis needs — no external numerics dependency, per the
//! project's dependency policy.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely imaginary number `jw`.
    pub const fn j(w: f64) -> Self {
        Complex { re: 0.0, im: w }
    }

    /// Magnitude |z|.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in radians, in (−π, π].
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential e^z.
    pub fn exp(self) -> Complex {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Reciprocal 1/z. Panics on zero.
    pub fn recip(self) -> Complex {
        let d = self.re * self.re + self.im * self.im;
        assert!(d > 0.0, "division by complex zero");
        Complex::new(self.re / d, -self.im / d)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division is deliberately multiply-by-reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex) -> Complex {
        self * o.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn basic_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn polar_properties() {
        let z = Complex::j(2.0);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-12);
        assert!((Complex::new(-1.0, 0.0).arg() - PI).abs() < 1e-12);
    }

    #[test]
    fn exp_of_imaginary_is_rotation() {
        let z = Complex::j(PI).exp();
        assert!((z.re + 1.0).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn exp_of_real_matches_scalar() {
        let z = Complex::new(1.0, 0.0).exp();
        assert!((z.re - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "division by complex zero")]
    fn div_by_zero_panics() {
        let _ = Complex::ONE / Complex::ZERO;
    }
}
