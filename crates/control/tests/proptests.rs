//! Property-based tests for the control-theoretic analysis.

use proptest::prelude::*;
use rocc_control::margin::gain_crossover;
use rocc_control::{analyze, Complex, LoopModel};

proptest! {
    /// Complex arithmetic satisfies field identities.
    #[test]
    fn complex_field_identities(
        a in -1e6f64..1e6, b in -1e6f64..1e6,
        c in -1e6f64..1e6, d in -1e6f64..1e6,
    ) {
        let x = Complex::new(a, b);
        let y = Complex::new(c, d);
        // Commutativity.
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        // |xy| = |x||y| (within float tolerance).
        let lhs = (x * y).norm();
        let rhs = x.norm() * y.norm();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0));
        // Multiplicative inverse (when y != 0).
        if y.norm() > 1e-6 {
            let z = x / y * y;
            prop_assert!((z.re - x.re).abs() < 1e-4 * x.norm().max(1.0));
            prop_assert!((z.im - x.im).abs() < 1e-4 * x.norm().max(1.0));
        }
    }

    /// |G(jω)| is strictly decreasing for the RoCC loop (the precondition
    /// for the bisection crossover search).
    #[test]
    fn magnitude_strictly_decreasing(
        alpha in 0.001f64..1.0,
        beta_ratio in 1.0f64..20.0,
        n in 1.0f64..200.0,
        w in 1.0f64..1e7,
    ) {
        let m = LoopModel::paper(alpha, alpha * beta_ratio, n);
        prop_assert!(m.magnitude(w * 1.5) < m.magnitude(w));
    }

    /// The crossover found by bisection is actually unity gain, and the
    /// analysis is deterministic.
    #[test]
    fn crossover_is_unity(
        alpha in 0.001f64..1.0,
        beta_ratio in 1.0f64..20.0,
        n in 1.0f64..200.0,
    ) {
        let m = LoopModel::paper(alpha, alpha * beta_ratio, n);
        let wc = gain_crossover(&m);
        prop_assert!((m.magnitude(wc) - 1.0).abs() < 1e-5, "|G| = {}", m.magnitude(wc));
        prop_assert_eq!(analyze(&m).crossover_rad_s, analyze(&m).crossover_rad_s);
    }

    /// The margin-vs-crossover curve `atan(ω/z1) − ωT` is unimodal with a
    /// peak at ω* = z1·√(1/(z1·T) − 1); past that peak, more flows (more
    /// gain → higher crossover) strictly erode the margin — the Fig. 6
    /// effect that motivates the auto-tuner.
    #[test]
    fn margin_decreases_with_n_past_the_peak(
        alpha in 0.005f64..0.5,
        beta_ratio in 2.0f64..15.0,
        n in 2.0f64..64.0,
    ) {
        let m1 = LoopModel::paper(alpha, alpha * beta_ratio, n);
        let m2 = LoopModel::paper(alpha, alpha * beta_ratio, n * 2.0);
        let z1 = m1.z1();
        prop_assume!(z1 * m1.t < 1.0);
        let w_star = z1 * (1.0 / (z1 * m1.t) - 1.0).sqrt();
        prop_assume!(gain_crossover(&m1) >= w_star);
        let pm1 = analyze(&m1).phase_margin_deg;
        let pm2 = analyze(&m2).phase_margin_deg;
        prop_assert!(pm2 <= pm1 + 1e-6, "N {n} -> {}: margin {pm1} -> {pm2}", n * 2.0);
    }

    /// Dually, once past the peak, scaling the gains down (fixed α:β
    /// ratio, so z1 is unchanged) lowers the crossover and recovers
    /// margin — Fig. 7a's premise behind the halving gain ladder.
    #[test]
    fn smaller_gains_recover_margin_past_the_peak(
        alpha in 0.01f64..0.5,
        n in 2.0f64..128.0,
        shift in 1u32..6,
    ) {
        let beta = alpha * 10.0;
        let k = 2f64.powi(shift as i32);
        let big_model = LoopModel::paper(alpha, beta, n);
        let small_model = LoopModel::paper(alpha / k, beta / k, n);
        let z1 = big_model.z1();
        prop_assume!(z1 * big_model.t < 1.0);
        let w_star = z1 * (1.0 / (z1 * big_model.t) - 1.0).sqrt();
        // Smaller gains give the lower crossover; both must sit past ω*.
        prop_assume!(gain_crossover(&small_model) >= w_star);
        let big = analyze(&big_model).phase_margin_deg;
        let small = analyze(&small_model).phase_margin_deg;
        prop_assert!(small >= big - 1e-6, "margin {big} -> {small} after /{k}");
    }

    /// With any fixed gains, enough flows always destabilize the loop —
    /// the impossibility result that makes auto-tuning necessary rather
    /// than optional.
    #[test]
    fn any_fixed_gains_eventually_unstable(
        alpha in 0.001f64..1.0,
        beta_ratio in 1.0f64..20.0,
    ) {
        let m = LoopModel::paper(alpha, alpha * beta_ratio, 1e6);
        prop_assert!(analyze(&m).phase_margin_deg < 0.0);
    }
}
