//! Analytic experiments: the §5 stability analysis (Figs. 5, 6, 7).

use rocc_control::{analyze, bode_sweep, fig7_gain_pairs, BodePoint, LoopModel};

/// One Fig. 5 surface cell.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// PI gain α.
    pub alpha: f64,
    /// PI gain β.
    pub beta: f64,
    /// Phase margin (degrees); > 0 means stable.
    pub phase_margin_deg: f64,
}

/// Fig. 5: phase margin as a function of α and β at T = 40 µs, N = 2.
pub fn fig5(grid: usize) -> Vec<Fig5Point> {
    assert!(grid >= 2);
    let log_space = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
        (0..n)
            .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
            .collect()
    };
    let alphas = log_space(0.003, 1.0, grid);
    let betas = log_space(0.03, 10.0, grid);
    let mut out = Vec::with_capacity(grid * grid);
    for &a in &alphas {
        for &b in &betas {
            let m = LoopModel::paper(a, b, 2.0);
            out.push(Fig5Point {
                alpha: a,
                beta: b,
                phase_margin_deg: analyze(&m).phase_margin_deg,
            });
        }
    }
    out
}

/// Fig. 6 output: Bode traces for two flow counts at fixed gains, plus the
/// resulting margins.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Gains used (the pair with ≈50° margin at N = 2, as in the paper).
    pub alpha: f64,
    /// β of the pair.
    pub beta: f64,
    /// Bode trace at N = 2.
    pub n2: Vec<BodePoint>,
    /// Bode trace at N = 10.
    pub n10: Vec<BodePoint>,
    /// Phase margin at N = 2 (≈ +50° in the paper).
    pub pm_n2: f64,
    /// Phase margin at N = 10 (≈ −50° in the paper).
    pub pm_n10: f64,
}

/// Fig. 6: how N shifts the 0 dB crossing and collapses the margin.
pub fn fig6() -> Fig6Result {
    let (alpha, beta) = (0.3, 3.0);
    let m2 = LoopModel::paper(alpha, beta, 2.0);
    let m10 = LoopModel::paper(alpha, beta, 10.0);
    Fig6Result {
        alpha,
        beta,
        n2: bode_sweep(&m2, 100.0, 1e6, 120),
        n10: bode_sweep(&m10, 100.0, 1e6, 120),
        pm_n2: analyze(&m2).phase_margin_deg,
        pm_n10: analyze(&m10).phase_margin_deg,
    }
}

/// One Fig. 7 series point.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Flow count N.
    pub n: f64,
    /// Phase margin (degrees) — Fig. 7a.
    pub phase_margin_deg: f64,
    /// Loop bandwidth (Hz) — Fig. 7b.
    pub bandwidth_hz: f64,
}

/// One Fig. 7 series: a gain pair swept over N.
#[derive(Debug, Clone)]
pub struct Fig7Series {
    /// PI gain α.
    pub alpha: f64,
    /// PI gain β.
    pub beta: f64,
    /// Points over N ∈ [2, 128].
    pub points: Vec<Fig7Point>,
}

/// Fig. 7a/7b: margin and loop bandwidth vs N for the six α:β pairs
/// obtained by halving 0.3 : 3.
pub fn fig7() -> Vec<Fig7Series> {
    let ns: Vec<f64> = (1..=7).map(|k| 2f64.powi(k)).collect(); // 2..128
    fig7_gain_pairs()
        .into_iter()
        .map(|(alpha, beta)| {
            let points = ns
                .iter()
                .map(|&n| {
                    let r = analyze(&LoopModel::paper(alpha, beta, n));
                    Fig7Point {
                        n,
                        phase_margin_deg: r.phase_margin_deg,
                        bandwidth_hz: r.bandwidth_hz(),
                    }
                })
                .collect();
            Fig7Series {
                alpha,
                beta,
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_surface_contains_stable_and_unstable_regions() {
        let s = fig5(12);
        assert_eq!(s.len(), 144);
        assert!(s.iter().any(|p| p.phase_margin_deg > 30.0));
        assert!(s.iter().any(|p| p.phase_margin_deg < 0.0));
    }

    #[test]
    fn fig6_margin_flip_matches_paper() {
        let r = fig6();
        // Paper: ≈ +50° at N=2, ≈ −50° at N=10 for the same gains.
        assert!(
            (r.pm_n2 - 50.0).abs() < 12.0,
            "N=2 margin {:.1}° not ≈ 50°",
            r.pm_n2
        );
        assert!(
            r.pm_n10 < -25.0,
            "N=10 margin {:.1}° must be deeply negative",
            r.pm_n10
        );
    }

    #[test]
    fn fig7a_small_gains_stay_stable_for_all_n() {
        let series = fig7();
        let last = series.last().unwrap(); // α=0.3/32 ≈ 0.0094
        assert!(
            last.points.iter().all(|p| p.phase_margin_deg > 20.0),
            "smallest pair must be stable everywhere"
        );
        // The largest pair loses stability at high N.
        let first = &series[0];
        assert!(first.points.last().unwrap().phase_margin_deg < 0.0);
    }

    #[test]
    fn fig7b_smaller_gains_mean_lower_bandwidth_at_small_n() {
        let series = fig7();
        let bw_big = series[0].points[0].bandwidth_hz; // (0.3, 3) at N=2
        let bw_small = series[5].points[0].bandwidth_hz; // (0.0094, 0.094) at N=2
        assert!(
            bw_small < bw_big / 4.0,
            "loop slows as gains shrink: {bw_big:.0} vs {bw_small:.0}"
        );
    }
}
