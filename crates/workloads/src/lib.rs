//! # rocc-workloads — datacenter traffic generation
//!
//! The two published flow-size distributions the RoCC paper evaluates on
//! ([`dist::FlowSizeDist::web_search`], [`dist::FlowSizeDist::fb_hadoop`])
//! and a Poisson open-loop arrival generator targeting a given average
//! link load ([`poisson::PoissonWorkload`]). Simulator-agnostic: outputs
//! indices/bytes/nanoseconds that the experiment harness maps onto
//! topology nodes.

#![warn(missing_docs)]

pub mod dist;
pub mod poisson;

pub use dist::FlowSizeDist;
pub use poisson::{GeneratedFlow, PoissonWorkload};
