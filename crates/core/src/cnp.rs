//! CNP wire format.
//!
//! RoCC carries its feedback in ICMP messages using reserved type 253 (the
//! paper's DPDK implementation does exactly this, §6.2), prioritized by the
//! fabric. The message body carries the fair rate in multiples of ΔF plus
//! enough identity to match the feedback to the right rate limiter: the
//! originating congestion point (switch + port) and the flow id.
//!
//! The simulator forwards decoded descriptors, but this module is a real
//! encoder/decoder over bytes — it is what a DPDK/raw-socket RP would parse
//! — with the standard internet checksum.

use bytes::{Buf, BufMut};
use rocc_sim::prelude::{CpId, FlowId, NodeId, PortId};

/// ICMP type used for RoCC CNPs (reserved/experimental, per the paper).
pub const ICMP_TYPE_ROCC: u8 = 253;
/// ICMP code for rate feedback.
pub const ICMP_CODE_RATE: u8 = 0;
/// ICMP code for queue reports (§3.6 host-side rate computation).
pub const ICMP_CODE_QUEUE_REPORT: u8 = 1;
/// Magic tag opening the payload.
pub const MAGIC: [u8; 4] = *b"RoCC";
/// Protocol version.
pub const VERSION: u8 = 1;
/// Encoded message length in bytes.
pub const WIRE_LEN: usize = 28;

/// A decoded CNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cnp {
    /// Fair rate in multiples of ΔF.
    pub fair_rate_units: u32,
    /// Originating congestion point.
    pub cp: CpId,
    /// The flow the rate applies to.
    pub flow: FlowId,
}

/// Errors from [`Cnp::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnpError {
    /// Buffer shorter than [`WIRE_LEN`].
    Truncated,
    /// Not ICMP type 253 / code 0.
    WrongType,
    /// Payload magic/version mismatch.
    BadMagic,
    /// Internet checksum failed.
    BadChecksum,
}

impl std::fmt::Display for CnpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CnpError::Truncated => write!(f, "CNP truncated"),
            CnpError::WrongType => write!(f, "not a RoCC CNP (ICMP type/code)"),
            CnpError::BadMagic => write!(f, "bad CNP magic or version"),
            CnpError::BadChecksum => write!(f, "CNP checksum mismatch"),
        }
    }
}

impl std::error::Error for CnpError {}

/// RFC 1071 internet checksum over `data` (even length required here; the
/// encoded CNP always is).
fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in data.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Cnp {
    /// Encode into `buf` (ICMP header + RoCC payload, checksummed).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.put_u8(ICMP_TYPE_ROCC);
        buf.put_u8(ICMP_CODE_RATE);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0); // reserved
        buf.put_u16(self.cp.port.0 as u16);
        buf.put_u32(self.fair_rate_units);
        buf.put_u32(self.cp.node.0 as u32);
        buf.put_u64(self.flow.0);
        debug_assert_eq!(buf.len() - start, WIRE_LEN);
        let ck = internet_checksum(&buf[start..]);
        buf[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(WIRE_LEN);
        self.encode(&mut v);
        v
    }

    /// Decode and verify a CNP from `data`.
    pub fn decode(data: &[u8]) -> Result<Cnp, CnpError> {
        if data.len() < WIRE_LEN {
            return Err(CnpError::Truncated);
        }
        let mut b = &data[..WIRE_LEN];
        let ty = b.get_u8();
        let code = b.get_u8();
        if ty != ICMP_TYPE_ROCC || code != ICMP_CODE_RATE {
            return Err(CnpError::WrongType);
        }
        let _ck = b.get_u16();
        if internet_checksum(&data[..WIRE_LEN]) != 0 {
            return Err(CnpError::BadChecksum);
        }
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        let version = b.get_u8();
        let _reserved = b.get_u8();
        if magic != MAGIC || version != VERSION {
            return Err(CnpError::BadMagic);
        }
        let port = b.get_u16();
        let fair_rate_units = b.get_u32();
        let node = b.get_u32();
        let flow = b.get_u64();
        Ok(Cnp {
            fair_rate_units,
            cp: CpId {
                node: NodeId(node as usize),
                port: PortId(port as usize),
            },
            flow: FlowId(flow),
        })
    }
}

/// A decoded queue report (§3.6): the CP ships Qcur and Fmax; the host
/// computes the rate locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueReport {
    /// Queue depth in multiples of ΔQ.
    pub q_cur_units: u32,
    /// The CP's Fmax in multiples of ΔF (parameter-registry key).
    pub f_max_units: u32,
    /// Originating congestion point.
    pub cp: CpId,
    /// The flow the report applies to.
    pub flow: FlowId,
}

/// Encoded queue-report length in bytes.
pub const QUEUE_REPORT_WIRE_LEN: usize = 32;

impl QueueReport {
    /// Encode into `buf` (ICMP header + payload, checksummed).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.put_u8(ICMP_TYPE_ROCC);
        buf.put_u8(ICMP_CODE_QUEUE_REPORT);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0); // reserved
        buf.put_u16(self.cp.port.0 as u16);
        buf.put_u32(self.q_cur_units);
        buf.put_u32(self.f_max_units);
        buf.put_u32(self.cp.node.0 as u32);
        buf.put_u64(self.flow.0);
        debug_assert_eq!(buf.len() - start, QUEUE_REPORT_WIRE_LEN);
        let ck = internet_checksum(&buf[start..]);
        buf[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(QUEUE_REPORT_WIRE_LEN);
        self.encode(&mut v);
        v
    }

    /// Decode and verify a queue report from `data`.
    pub fn decode(data: &[u8]) -> Result<QueueReport, CnpError> {
        if data.len() < QUEUE_REPORT_WIRE_LEN {
            return Err(CnpError::Truncated);
        }
        let mut b = &data[..QUEUE_REPORT_WIRE_LEN];
        let ty = b.get_u8();
        let code = b.get_u8();
        if ty != ICMP_TYPE_ROCC || code != ICMP_CODE_QUEUE_REPORT {
            return Err(CnpError::WrongType);
        }
        let _ck = b.get_u16();
        if internet_checksum(&data[..QUEUE_REPORT_WIRE_LEN]) != 0 {
            return Err(CnpError::BadChecksum);
        }
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        let version = b.get_u8();
        let _reserved = b.get_u8();
        if magic != MAGIC || version != VERSION {
            return Err(CnpError::BadMagic);
        }
        let port = b.get_u16();
        let q_cur_units = b.get_u32();
        let f_max_units = b.get_u32();
        let node = b.get_u32();
        let flow = b.get_u64();
        Ok(QueueReport {
            q_cur_units,
            f_max_units,
            cp: CpId {
                node: NodeId(node as usize),
                port: PortId(port as usize),
            },
            flow: FlowId(flow),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cnp {
        Cnp {
            fair_rate_units: 1234,
            cp: CpId {
                node: NodeId(7),
                port: PortId(3),
            },
            flow: FlowId(0xdead_beef_0042),
        }
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let bytes = c.to_bytes();
        assert_eq!(bytes.len(), WIRE_LEN);
        assert_eq!(Cnp::decode(&bytes), Ok(c));
    }

    #[test]
    fn checksum_catches_corruption() {
        let mut bytes = sample().to_bytes();
        bytes[10] ^= 0xff;
        assert_eq!(Cnp::decode(&bytes), Err(CnpError::BadChecksum));
    }

    #[test]
    fn wrong_type_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 8; // echo request
        assert_eq!(Cnp::decode(&bytes), Err(CnpError::WrongType));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        assert_eq!(Cnp::decode(&bytes[..10]), Err(CnpError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let c = sample();
        let mut bytes = c.to_bytes();
        // Corrupt magic but re-checksum so only the magic check fires.
        bytes[4] = b'X';
        bytes[2] = 0;
        bytes[3] = 0;
        let ck = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(Cnp::decode(&bytes), Err(CnpError::BadMagic));
    }

    #[test]
    fn checksum_of_valid_message_is_zero() {
        let bytes = sample().to_bytes();
        assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn queue_report_round_trip() {
        let r = QueueReport {
            q_cur_units: 612,
            f_max_units: 4000,
            cp: CpId {
                node: NodeId(9),
                port: PortId(2),
            },
            flow: FlowId(77),
        };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), QUEUE_REPORT_WIRE_LEN);
        assert_eq!(QueueReport::decode(&bytes), Ok(r));
    }

    #[test]
    fn message_codes_are_disjoint() {
        // A rate CNP never parses as a queue report and vice versa. (The
        // shorter CNP trips the report's length check before its code
        // check.)
        let c = sample().to_bytes();
        assert!(QueueReport::decode(&c).is_err());
        let r = QueueReport {
            q_cur_units: 1,
            f_max_units: 1,
            cp: CpId {
                node: NodeId(0),
                port: PortId(0),
            },
            flow: FlowId(0),
        }
        .to_bytes();
        assert_eq!(Cnp::decode(&r), Err(CnpError::WrongType));
    }

    #[test]
    fn corrupted_queue_report_rejected() {
        let r = QueueReport {
            q_cur_units: 612,
            f_max_units: 4000,
            cp: CpId {
                node: NodeId(9),
                port: PortId(2),
            },
            flow: FlowId(77),
        };
        let mut bytes = r.to_bytes();
        bytes[12] ^= 0x01;
        assert_eq!(QueueReport::decode(&bytes), Err(CnpError::BadChecksum));
    }
}
