//! Scheduler-backend differential suite: the binary heap is kept as an
//! oracle for the hierarchical timing wheel (see DESIGN.md §3j). Both
//! backends implement the same `(at, seq)` total order, so a full
//! chaos-grade simulation — loss, CNP loss, a link flap, RoCC end to
//! end — must produce bit-identical outputs under either one.
//!
//! The backend is forced per-`Sim` with [`Sim::set_scheduler_backend`]
//! rather than via the `ROCC_SCHEDULER` env override: tests run on
//! parallel threads and the env var is process-global.

use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// Everything simulation-visible a run produces, plus the scheduler
/// watermark (the queues must agree on *accounting*, not just outputs).
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    events: u64,
    fcts: Vec<(u64, u64)>,
    drops: u64,
    retx: u64,
    ctrl_emitted: u64,
    injected_drops: u64,
    peak_pending: usize,
    clamps: u64,
}

/// The chaos incast from the golden-engine suite, built (not run) on an
/// explicit scheduler backend. Separate from the runner so a divergence
/// can be bisected on freshly built sims.
fn build_chaos(seed: u64, backend: Backend) -> Sim {
    let (topo, srcs, dst) = dumbbell(6, 40);
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.004)
            .with_loss(FaultTarget::Cnp, 0.01)
            .with_flap(
                LinkId(3),
                SimTime::from_micros(400),
                SimTime::from_micros(900),
            ),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    sim.set_scheduler_backend(backend);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 1_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim
}

/// Run the chaos incast on an explicit backend and fingerprint it.
fn chaos_incast(seed: u64, backend: Backend) -> RunFingerprint {
    let mut sim = build_chaos(seed, backend);
    let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
    assert!(verdict.is_complete(), "chaos incast must finish: {verdict:?}");
    assert_eq!(sim.kernel.scheduler_backend(), backend);
    RunFingerprint {
        events: sim.events_processed(),
        fcts: sim
            .trace
            .fcts
            .iter()
            .map(|r| (r.flow.0, r.end.as_nanos()))
            .collect(),
        drops: sim.trace.drops,
        retx: sim.trace.retx_bytes,
        ctrl_emitted: sim.trace.ctrl_emitted,
        injected_drops: sim.trace.faults.data_lost + sim.trace.faults.ctrl_lost,
        peak_pending: sim.kernel.peak_pending(),
        clamps: sim.kernel.past_due_clamps(),
    }
}

#[test]
fn wheel_is_bit_identical_to_the_heap_oracle() {
    for seed in [1u64, 7, 42] {
        let heap = chaos_incast(seed, Backend::Heap);
        let wheel = chaos_incast(seed, Backend::Wheel);
        if heap != wheel {
            // Unlike the pinned golden constants, both sides of this
            // differential are reproducible here — bisect fresh sims to
            // the exact first divergent event and write the full
            // `rocc-divergence-report/v1` before failing (CI uploads it).
            let dir = std::env::var("ROCC_DIVERGE_DIR")
                .unwrap_or_else(|_| "target/diverge".to_string());
            let path = format!("{dir}/scheduler_seed{seed}_divergence.json");
            let mut a = build_chaos(seed, Backend::Heap);
            let mut b = build_chaos(seed, Backend::Wheel);
            let opts = BisectOptions {
                scan_stride: 2048,
                max_events: 400_000,
                perturb_b_at: None,
            };
            match bisect_divergence(&mut a, &mut b, &opts) {
                BisectOutcome::Diverged(rep) => {
                    let wrote = write_artifact(&path, &rep.to_json())
                        .map(|()| path)
                        .unwrap_or_else(|e| format!("<failed to write report: {e}>"));
                    panic!(
                        "scheduler backends diverged on chaos seed {seed} \
                         (heap=a, wheel=b): {}\nreport written to {wrote}",
                        rep.summary()
                    );
                }
                BisectOutcome::Identical { events } => panic!(
                    "scheduler fingerprints differ on chaos seed {seed} but per-event \
                     states matched through {events} events:\nheap:  {heap:?}\nwheel: {wheel:?}"
                ),
            }
        }
    }
}

#[test]
fn wheel_actually_cascades_on_a_real_workload() {
    // Guard against a degenerate wheel that keeps everything in level 0:
    // a real run schedules timers far enough out (CP ticks, CC timers,
    // retransmit deadlines) that upper levels must see traffic.
    let f = chaos_incast(1, Backend::Wheel);
    assert!(f.events > 0);
    let (topo, srcs, dst) = dumbbell(6, 40);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    sim.set_scheduler_backend(Backend::Wheel);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 1_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
    let stats = sim.kernel.scheduler_stats();
    assert!(
        stats.cascades > 0,
        "wheel never cascaded — everything landed in level 0?"
    );
    assert!(stats.cascaded_events >= stats.cascades);
    assert!(
        stats.max_level >= 1,
        "no event ever reached an overflow level"
    );
}

#[test]
fn heap_oracle_reports_no_wheel_stats() {
    let (topo, _, _) = dumbbell(2, 40);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    sim.set_scheduler_backend(Backend::Heap);
    let stats = sim.kernel.scheduler_stats();
    assert_eq!(stats.cascades, 0);
    assert_eq!(stats.rebases, 0);
    assert_eq!(stats.max_level, 0);
}
