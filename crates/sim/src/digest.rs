//! Divergence observatory: per-subsystem state digests, the strided
//! `rocc-digest-ledger/v1` recorder, and the first-divergent-event
//! bisector.
//!
//! Determinism bugs present as "two runs that should match, don't" — a
//! golden fingerprint mismatch, a heap-vs-wheel scheduler disagreement, a
//! restore that drifts. The engine-level fingerprint says *that* the runs
//! split but not *where*: which of the hundreds of thousands of dispatched
//! events first pushed the two states apart, and in which subsystem.
//!
//! This module answers both questions:
//!
//! * [`Sim::state_digest`] hashes every subsystem's dynamic state
//!   **separately** — scheduler queue, packet slab, both RNG streams,
//!   per-switch queues/CC state, per-host CC state, fault cursors,
//!   telemetry counters — using the exact `rocc-snapshot/v1` word codecs,
//!   so a digest difference names the component that diverged, and a
//!   word-level diff of the two serializations localizes the field group.
//! * [`DigestLedger`] records those digests every N dispatched events
//!   behind the same one-branch gating as auto-checkpointing (recording a
//!   run is bit-identical to not recording it; pinned by the
//!   `observer_effect` suite). Two ledgers from different machines or CI
//!   runs can be diffed offline via [`DigestLedger::first_divergence`].
//! * [`bisect_divergence`] runs two live sims in lockstep, scans digests
//!   at a stride, and binary-searches — restoring both sims from their
//!   last-matching snapshots — down to the exact first event index after
//!   which any component digest differs, then decodes the diverging event
//!   and the word-level state diff into a [`DivergenceReport`]
//!   (`rocc-divergence-report/v1`).
//!
//! All hashing is the workspace's shared FNV-1a-64
//! ([`rocc_stats::digest`]), so digests are stable across platforms and
//! comparable with every other artifact digest the repo emits.

use crate::engine::Sim;
use rocc_stats::digest::{fnv1a_64, Fnv64};

/// Schema tag written on every digest-ledger JSONL line.
pub const DIGEST_LEDGER_SCHEMA: &str = "rocc-digest-ledger/v1";

/// Schema tag of the bisector's report artifact.
pub const DIVERGENCE_REPORT_SCHEMA: &str = "rocc-divergence-report/v1";

// ---------------------------------------------------------------------------
// Component states and digests
// ---------------------------------------------------------------------------

/// One subsystem's dynamic state, serialized with the `rocc-snapshot/v1`
/// word codecs. Produced by [`Sim::component_states`]; the byte stream is
/// the unit both of digesting and of word-level diffing.
#[derive(Clone, Debug)]
pub struct ComponentState {
    /// Canonical component name (`kernel`, `rng`, `sched`, `faults`,
    /// `san`, `slab`, `host/N`, `switch/N`, `run`, `trace`, `sanitizer`).
    pub name: String,
    /// The component's serialized state words, little-endian.
    pub bytes: Vec<u8>,
}

impl ComponentState {
    /// Wrap a named serialized state stream.
    pub fn new(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        ComponentState { name: name.into(), bytes }
    }

    /// FNV-1a-64 over the serialized bytes.
    pub fn digest(&self) -> u64 {
        fnv1a_64(&self.bytes)
    }

    /// The byte stream decoded as little-endian 64-bit words (the tail is
    /// zero-padded — component streams are word-aligned except for the
    /// occasional `u8` tag).
    pub fn words(&self) -> Vec<u64> {
        le_words(&self.bytes)
    }
}

fn le_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect()
}

/// Per-subsystem digests of one sim state, in canonical component order.
/// Two values compare equal iff every component name and digest matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentDigests {
    entries: Vec<(String, u64)>,
}

impl ComponentDigests {
    /// Digest each component of a [`Sim::component_states`] listing.
    pub fn from_states(states: &[ComponentState]) -> Self {
        ComponentDigests {
            entries: states.iter().map(|s| (s.name.clone(), s.digest())).collect(),
        }
    }

    /// Build from pre-computed `(name, digest)` pairs (ledger parsing).
    pub fn from_entries(entries: Vec<(String, u64)>) -> Self {
        ComponentDigests { entries }
    }

    /// The digest of one component, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|(n, _)| n == name).map(|&(_, d)| d)
    }

    /// Iterate `(name, digest)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no components were digested.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Names whose digests differ between `self` and `other`, in `self`'s
    /// canonical order; components present on only one side count as
    /// differing (and other-only names are appended last).
    pub fn differing(&self, other: &ComponentDigests) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .iter()
            .filter(|(n, d)| other.get(n) != Some(*d))
            .map(|(n, _)| n.clone())
            .collect();
        for (n, _) in &other.entries {
            if self.get(n).is_none() {
                out.push(n.clone());
            }
        }
        out
    }

    /// Render as a JSON object: `{"kernel":"0123456789abcdef",...}`.
    pub fn render_json(&self) -> String {
        let mut s = String::with_capacity(self.entries.len() * 32 + 2);
        s.push('{');
        for (i, (n, d)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(n);
            s.push_str("\":\"");
            s.push_str(&format!("{d:016x}"));
            s.push('"');
        }
        s.push('}');
        s
    }
}

impl Sim {
    /// Per-subsystem FNV-1a-64 digests of the current dynamic state: one
    /// digest per [`Sim::component_states`] entry, computed over the same
    /// `rocc-snapshot/v1` serialization the snapshot machinery writes.
    /// Equal full-state snapshots imply equal digests; a digest mismatch
    /// names the first subsystem whose state diverged.
    pub fn state_digest(&self) -> ComponentDigests {
        ComponentDigests::from_states(&self.component_states())
    }
}

// ---------------------------------------------------------------------------
// Strided digest ledger
// ---------------------------------------------------------------------------

/// One recorded ledger row: the component digests after `events`
/// dispatched events, at sim time `t_ns`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestLedgerEntry {
    /// Events dispatched when the row was recorded.
    pub events: u64,
    /// Sim clock at recording, nanoseconds.
    pub t_ns: u64,
    /// Per-component digests at that instant.
    pub digests: ComponentDigests,
}

/// An in-memory `rocc-digest-ledger/v1`: component digests recorded every
/// `stride` dispatched events by [`Sim::enable_digest_ledger`]. Render to
/// JSONL with [`DigestLedger::to_jsonl`]; parse (tolerantly — a torn
/// final line from a crashed run is skipped, not fatal) with
/// [`parse_ledger_jsonl`]; diff two ledgers with
/// [`DigestLedger::first_divergence`].
#[derive(Clone, Debug)]
pub struct DigestLedger {
    stride: u64,
    entries: Vec<DigestLedgerEntry>,
}

impl DigestLedger {
    /// New empty ledger recording every `stride` events.
    pub fn new(stride: u64) -> Self {
        assert!(stride > 0, "ledger stride must be positive");
        DigestLedger { stride, entries: Vec::new() }
    }

    /// Recording stride in dispatched events.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Append a recorded row.
    pub fn push(&mut self, entry: DigestLedgerEntry) {
        self.entries.push(entry);
    }

    /// All recorded rows, in recording order.
    pub fn entries(&self) -> &[DigestLedgerEntry] {
        &self.entries
    }

    /// Render the ledger as `rocc-digest-ledger/v1` JSONL, one row per
    /// line, schema-tagged per line so a tail-truncated file stays
    /// self-describing.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"schema\":\"{}\",\"event\":{},\"t_ns\":{},\"digests\":{}}}\n",
                DIGEST_LEDGER_SCHEMA,
                e.events,
                e.t_ns,
                e.digests.render_json()
            ));
        }
        out
    }

    /// First event count at which two ledgers disagree: rows are joined
    /// on their event count; the earliest joined row with any differing
    /// component digest wins. `None` when every joined row matches (the
    /// ledgers may still have disjoint strides — only common rows are
    /// comparable).
    pub fn first_divergence(&self, other: &DigestLedger) -> Option<LedgerDivergence> {
        first_ledger_divergence(&self.entries, &other.entries)
    }
}

/// The earliest ledger row at which two recorded runs disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerDivergence {
    /// Event count of the first differing joined row.
    pub events: u64,
    /// Sim time of that row in run A, nanoseconds.
    pub t_ns_a: u64,
    /// Sim time of that row in run B, nanoseconds.
    pub t_ns_b: u64,
    /// Component names whose digests differ at that row.
    pub components: Vec<String>,
}

/// Join two ledger row sets on event count and report the earliest row
/// with any differing component digest (see
/// [`DigestLedger::first_divergence`]).
pub fn first_ledger_divergence(
    a: &[DigestLedgerEntry],
    b: &[DigestLedgerEntry],
) -> Option<LedgerDivergence> {
    for ea in a {
        let Some(eb) = b.iter().find(|e| e.events == ea.events) else {
            continue;
        };
        if ea.digests != eb.digests || ea.t_ns != eb.t_ns {
            let mut components = ea.digests.differing(&eb.digests);
            if components.is_empty() {
                // Same digests but different sim clocks: the kernel
                // section is where the clock lives, so charge it there.
                components.push("kernel".to_string());
            }
            return Some(LedgerDivergence {
                events: ea.events,
                t_ns_a: ea.t_ns,
                t_ns_b: eb.t_ns,
                components,
            });
        }
    }
    None
}

/// A parsed digest-ledger file. `torn_tail` is set when a malformed line
/// (typically a write cut short by a crash) stopped the parse; every
/// well-formed row before it is still returned.
#[derive(Clone, Debug)]
pub struct ParsedLedger {
    /// Rows parsed in file order, up to the first malformed line.
    pub entries: Vec<DigestLedgerEntry>,
    /// True when at least one line failed to parse.
    pub torn_tail: bool,
}

/// Parse `rocc-digest-ledger/v1` JSONL tolerantly: rows are returned up
/// to the first malformed line, and a torn tail (crashed writer) is
/// reported, not fatal. Blank lines are skipped.
pub fn parse_ledger_jsonl(text: &str) -> ParsedLedger {
    let mut entries = Vec::new();
    let mut torn_tail = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_ledger_line(line) {
            Some(e) => entries.push(e),
            None => {
                torn_tail = true;
                break;
            }
        }
    }
    ParsedLedger { entries, torn_tail }
}

fn parse_ledger_line(line: &str) -> Option<DigestLedgerEntry> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    if !line.contains(&format!("\"schema\":\"{DIGEST_LEDGER_SCHEMA}\"")) {
        return None;
    }
    let events = scan_u64(line, "\"event\":")?;
    let t_ns = scan_u64(line, "\"t_ns\":")?;
    let dpos = line.find("\"digests\":{")?;
    let body = &line[dpos + "\"digests\":{".len()..];
    let end = body.find('}')?;
    let body = &body[..end];
    let mut digests = Vec::new();
    for pair in body.split(',') {
        if pair.trim().is_empty() {
            continue;
        }
        let (k, v) = pair.split_once(':')?;
        let name = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        let hex = v.trim().strip_prefix('"')?.strip_suffix('"')?;
        if hex.len() != 16 {
            return None;
        }
        let d = u64::from_str_radix(hex, 16).ok()?;
        digests.push((name.to_string(), d));
    }
    if digests.is_empty() {
        return None;
    }
    Some(DigestLedgerEntry { events, t_ns, digests: ComponentDigests::from_entries(digests) })
}

fn scan_u64(line: &str, key: &str) -> Option<u64> {
    let pos = line.find(key)? + key.len();
    let rest = &line[pos..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Live bisection
// ---------------------------------------------------------------------------

/// Tuning for [`bisect_divergence`].
#[derive(Clone, Debug)]
pub struct BisectOptions {
    /// Phase-1 scan stride: digests are compared (and last-matching
    /// snapshots refreshed) every this many dispatched events. Larger
    /// strides scan faster but leave a wider window for the O(log stride)
    /// binary search.
    pub scan_stride: u64,
    /// Hard cap on events to compare before declaring the runs identical.
    pub max_events: u64,
    /// Fault injection: after exactly this many dispatched events, sim B
    /// receives [`Sim::inject_rp_perturbation`] (re-applied faithfully on
    /// every restore-based probe, so the bisector converges on it). This
    /// is how the acceptance tests manufacture a run with a *known* first
    /// bad event.
    pub perturb_b_at: Option<u64>,
}

impl Default for BisectOptions {
    fn default() -> Self {
        BisectOptions { scan_stride: 2048, max_events: u64::MAX, perturb_b_at: None }
    }
}

/// Result of [`bisect_divergence`].
#[derive(Clone, Debug)]
pub enum BisectOutcome {
    /// No component digest ever differed: both runs matched through
    /// `events` dispatched events (exhaustion of both schedules, or the
    /// configured cap).
    Identical {
        /// Events compared before the runs were declared identical.
        events: u64,
    },
    /// The runs split; the report pins the first divergent event.
    Diverged(Box<DivergenceReport>),
}

/// One differing 64-bit word in the first diverging component's
/// serialized state.
#[derive(Clone, Debug)]
pub struct WordDiff {
    /// Word index into the component's little-endian serialization.
    pub index: usize,
    /// Word value in sim A.
    pub a: u64,
    /// Word value in sim B.
    pub b: u64,
}

/// The bisector's `rocc-divergence-report/v1` payload: the exact first
/// event index after which the two runs' states differ, the decoded
/// diverging event, and a word-level diff of the first differing
/// component.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// First event count at which any component digest differs: after
    /// `first_divergent_event` dispatched events the states disagree;
    /// after one fewer they still matched.
    pub first_divergent_event: u64,
    /// Sim A's clock at the divergent state, nanoseconds.
    pub t_ns_a: u64,
    /// Sim B's clock at the divergent state, nanoseconds.
    pub t_ns_b: u64,
    /// First differing component, in canonical component order.
    pub component: String,
    /// That component's digest in sim A (hex16).
    pub digest_a: String,
    /// That component's digest in sim B (hex16).
    pub digest_b: String,
    /// Every differing component, canonical order.
    pub differing_components: Vec<String>,
    /// The event sim A dispatched as event `first_divergent_event`,
    /// decoded (`None` when A's schedule was already empty).
    pub event_a: Option<String>,
    /// Same for sim B.
    pub event_b: Option<String>,
    /// First differing 64-bit words of `component`'s serialization
    /// (capped at [`WORD_DIFF_CAP`] entries).
    pub word_diff: Vec<WordDiff>,
    /// Word length of `component`'s serialization in sim A.
    pub words_a: usize,
    /// Word length of `component`'s serialization in sim B.
    pub words_b: usize,
    /// Restore-and-replay probes the binary search spent.
    pub probes: u64,
    /// Events advanced during the phase-1 lockstep scan.
    pub events_scanned: u64,
}

/// Maximum differing words quoted in a report.
pub const WORD_DIFF_CAP: usize = 32;

impl DivergenceReport {
    /// Render as a `rocc-divergence-report/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{DIVERGENCE_REPORT_SCHEMA}\",\n"));
        s.push_str(&format!(
            "  \"first_divergent_event\": {},\n",
            self.first_divergent_event
        ));
        s.push_str(&format!("  \"t_ns_a\": {},\n", self.t_ns_a));
        s.push_str(&format!("  \"t_ns_b\": {},\n", self.t_ns_b));
        s.push_str(&format!("  \"component\": \"{}\",\n", json_escape(&self.component)));
        s.push_str(&format!("  \"digest_a\": \"{}\",\n", self.digest_a));
        s.push_str(&format!("  \"digest_b\": \"{}\",\n", self.digest_b));
        s.push_str("  \"differing_components\": [");
        for (i, c) in self.differing_components.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", json_escape(c)));
        }
        s.push_str("],\n");
        match &self.event_a {
            Some(e) => s.push_str(&format!("  \"event_a\": \"{}\",\n", json_escape(e))),
            None => s.push_str("  \"event_a\": null,\n"),
        }
        match &self.event_b {
            Some(e) => s.push_str(&format!("  \"event_b\": \"{}\",\n", json_escape(e))),
            None => s.push_str("  \"event_b\": null,\n"),
        }
        s.push_str(&format!("  \"words_a\": {},\n", self.words_a));
        s.push_str(&format!("  \"words_b\": {},\n", self.words_b));
        s.push_str("  \"word_diff\": [");
        for (i, w) in self.word_diff.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"word\": {}, \"a\": \"{:016x}\", \"b\": \"{:016x}\"}}",
                w.index, w.a, w.b
            ));
        }
        if !self.word_diff.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"probes\": {},\n", self.probes));
        s.push_str(&format!("  \"events_scanned\": {}\n", self.events_scanned));
        s.push_str("}\n");
        s
    }

    /// One-line human summary for panics and CLI output.
    pub fn summary(&self) -> String {
        format!(
            "first divergent event {} (component {}, {} vs {}; {} differing component(s), {} probes)",
            self.first_divergent_event,
            self.component,
            self.digest_a,
            self.digest_b,
            self.differing_components.len(),
            self.probes,
        )
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Advance `sim` event-by-event until `target` events have been
/// dispatched (or the schedule runs dry — returns `false`). When
/// `perturb_at` is crossed *from below within this call*, the RP
/// perturbation fires exactly once; a sim restored from a snapshot taken
/// at or past the perturbation point already carries the flipped state,
/// so the crossing rule makes replays exact.
fn advance_to(sim: &mut Sim, target: u64, perturb_at: Option<u64>) -> bool {
    let entry = sim.events_processed();
    loop {
        let e = sim.events_processed();
        if let Some(p) = perturb_at {
            if e == p && entry < p {
                sim.inject_rp_perturbation();
            }
        }
        if e >= target {
            return true;
        }
        if !sim.step() {
            return false;
        }
    }
}

fn states_differ(a: &mut Sim, b: &mut Sim) -> bool {
    a.events_processed() != b.events_processed() || a.state_digest() != b.state_digest()
}

/// Run sims `a` and `b` in lockstep and pin the exact first event index
/// after which their states differ.
///
/// Both sims must be freshly built (or restored) at the **same** event
/// count; they may use different scheduler backends or configurations
/// that are *supposed* to be equivalent — that is the point. Phase 1
/// advances both by [`BisectOptions::scan_stride`] events at a time,
/// comparing [`Sim::state_digest`] at each boundary and re-snapshotting
/// both sims while they still match. On the first mismatching boundary,
/// phase 2 binary-searches inside the window: each probe restores both
/// sims from the last-matching snapshots, replays forward to the probe
/// index (re-injecting the configured perturbation at its recorded event
/// if the replay crosses it), and tests the digests. The result is the
/// smallest event count `e*` with differing states; the report decodes
/// the event each sim dispatched as `e*` and word-diffs the first
/// differing component.
pub fn bisect_divergence(a: &mut Sim, b: &mut Sim, opts: &BisectOptions) -> BisectOutcome {
    assert!(opts.scan_stride > 0, "scan stride must be positive");
    assert_eq!(
        a.events_processed(),
        b.events_processed(),
        "bisect requires both sims at the same event count"
    );
    let start = a.events_processed();
    // A perturbation scheduled exactly at the starting count can never be
    // "crossed from below" — fire it now so the scan sees its effect.
    if opts.perturb_b_at == Some(start) {
        b.inject_rp_perturbation();
    }
    let mut base_events = start;
    let mut base_a = a.snapshot();
    let mut base_b = b.snapshot();
    let mut probes = 0u64;

    if a.state_digest() != b.state_digest() {
        // Diverged before a single event: report at the starting count.
        return BisectOutcome::Diverged(Box::new(build_report(
            a, b, start, probes, 0,
        )));
    }

    // Phase 1: strided lockstep scan, keeping last-matching snapshots.
    let hi = loop {
        let target = (base_events + opts.scan_stride).min(opts.max_events.max(base_events));
        let more_a = advance_to(a, target, None);
        let more_b = advance_to(b, target, opts.perturb_b_at);
        if states_differ(a, b) {
            break a.events_processed().max(b.events_processed());
        }
        if !more_a && !more_b {
            return BisectOutcome::Identical { events: a.events_processed() };
        }
        if a.events_processed() >= opts.max_events {
            return BisectOutcome::Identical { events: a.events_processed() };
        }
        base_events = a.events_processed();
        base_a = a.snapshot();
        base_b = b.snapshot();
    };
    let events_scanned = hi - start;

    // Phase 2: binary search in (base_events, hi]. Invariant: states
    // match after `lo` events, differ after `hi`.
    let mut lo = base_events;
    let mut hi = hi;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        a.restore(&base_a).expect("restoring bisect base snapshot (a)");
        b.restore(&base_b).expect("restoring bisect base snapshot (b)");
        advance_to(a, mid, None);
        advance_to(b, mid, opts.perturb_b_at);
        probes += 1;
        if states_differ(a, b) {
            hi = mid;
        } else {
            lo = mid;
        }
    }

    // Reconstruct at e* = hi: replay to e*-1 for the decoded next events,
    // then one more step for the diverging state itself.
    a.restore(&base_a).expect("restoring bisect base snapshot (a)");
    b.restore(&base_b).expect("restoring bisect base snapshot (b)");
    advance_to(a, hi - 1, None);
    advance_to(b, hi - 1, opts.perturb_b_at);
    let event_a = a.next_event_brief();
    let event_b = b.next_event_brief();
    advance_to(a, hi, None);
    advance_to(b, hi, opts.perturb_b_at);
    let mut report = build_report(a, b, hi, probes, events_scanned);
    report.event_a = event_a;
    report.event_b = event_b;
    BisectOutcome::Diverged(Box::new(report))
}

/// Assemble a [`DivergenceReport`] from two sims standing at the
/// divergent state (decoded events are filled in by the caller).
fn build_report(
    a: &mut Sim,
    b: &mut Sim,
    first_divergent_event: u64,
    probes: u64,
    events_scanned: u64,
) -> DivergenceReport {
    let da = a.state_digest();
    let db = b.state_digest();
    let mut differing = da.differing(&db);
    if differing.is_empty() {
        // Event counts differed with equal digests can't happen (the
        // kernel section hashes the count), but keep the report total.
        differing.push("kernel".to_string());
    }
    let component = differing[0].clone();
    let sa = a.component_states();
    let sb = b.component_states();
    let find = |states: &[ComponentState], name: &str| {
        states.iter().find(|s| s.name == name).map(|s| s.words()).unwrap_or_default()
    };
    let wa = find(&sa, &component);
    let wb = find(&sb, &component);
    let mut word_diff = Vec::new();
    for i in 0..wa.len().max(wb.len()) {
        let va = wa.get(i).copied().unwrap_or(0);
        let vb = wb.get(i).copied().unwrap_or(0);
        if va != vb {
            word_diff.push(WordDiff { index: i, a: va, b: vb });
            if word_diff.len() >= WORD_DIFF_CAP {
                break;
            }
        }
    }
    DivergenceReport {
        first_divergent_event,
        t_ns_a: a.kernel.now.as_nanos(),
        t_ns_b: b.kernel.now.as_nanos(),
        component: component.clone(),
        digest_a: format!("{:016x}", da.get(&component).unwrap_or(0)),
        digest_b: format!("{:016x}", db.get(&component).unwrap_or(0)),
        differing_components: differing,
        event_a: None,
        event_b: None,
        word_diff,
        words_a: wa.len(),
        words_b: wb.len(),
        probes,
        events_scanned,
    }
}

/// Digest-mix a whole [`ComponentDigests`] into one u64 (handy for test
/// assertions that "anything changed").
pub fn combined_digest(d: &ComponentDigests) -> u64 {
    let mut h = Fnv64::new();
    for (name, digest) in d.iter() {
        h.write(name.as_bytes());
        h.write_u64(digest);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_digests() -> ComponentDigests {
        ComponentDigests::from_entries(vec![
            ("kernel".into(), 0x0123_4567_89ab_cdef),
            ("host/0".into(), 0xdead_beef_0000_0001),
        ])
    }

    #[test]
    fn ledger_jsonl_roundtrip() {
        let mut ledger = DigestLedger::new(100);
        ledger.push(DigestLedgerEntry { events: 100, t_ns: 42, digests: sample_digests() });
        ledger.push(DigestLedgerEntry { events: 200, t_ns: 84, digests: sample_digests() });
        let text = ledger.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_ledger_jsonl(&text);
        assert!(!parsed.torn_tail);
        assert_eq!(parsed.entries, ledger.entries);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let mut ledger = DigestLedger::new(100);
        ledger.push(DigestLedgerEntry { events: 100, t_ns: 42, digests: sample_digests() });
        ledger.push(DigestLedgerEntry { events: 200, t_ns: 84, digests: sample_digests() });
        let text = ledger.to_jsonl();
        // Cut the file mid-way through the final line.
        let cut = &text[..text.len() - 17];
        let parsed = parse_ledger_jsonl(cut);
        assert!(parsed.torn_tail);
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0], ledger.entries[0]);
    }

    #[test]
    fn ledger_divergence_names_components() {
        let a = vec![
            DigestLedgerEntry { events: 100, t_ns: 1, digests: sample_digests() },
            DigestLedgerEntry { events: 200, t_ns: 2, digests: sample_digests() },
        ];
        let mut changed = sample_digests();
        changed.entries[1].1 ^= 1;
        let b = vec![
            DigestLedgerEntry { events: 100, t_ns: 1, digests: sample_digests() },
            DigestLedgerEntry { events: 200, t_ns: 2, digests: changed },
        ];
        let d = first_ledger_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.events, 200);
        assert_eq!(d.components, vec!["host/0".to_string()]);
        assert!(first_ledger_divergence(&a, &a).is_none());
    }

    #[test]
    fn differing_handles_one_sided_components() {
        let a = sample_digests();
        let b = ComponentDigests::from_entries(vec![("kernel".into(), 0x0123_4567_89ab_cdef)]);
        assert_eq!(a.differing(&b), vec!["host/0".to_string()]);
        assert_eq!(b.differing(&a), vec!["host/0".to_string()]);
    }

    #[test]
    fn word_decode_pads_tail() {
        let c = ComponentState::new("x", vec![1, 0, 0, 0, 0, 0, 0, 0, 2]);
        assert_eq!(c.words(), vec![1, 2]);
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_json_is_schema_tagged() {
        let r = DivergenceReport {
            first_divergent_event: 7,
            t_ns_a: 1,
            t_ns_b: 1,
            component: "host/3".into(),
            digest_a: "0000000000000001".into(),
            digest_b: "0000000000000002".into(),
            differing_components: vec!["host/3".into(), "sched".into()],
            event_a: Some("[at 10 ns, seq 3] Foo".into()),
            event_b: None,
            word_diff: vec![WordDiff { index: 0, a: 1, b: 2 }],
            words_a: 5,
            words_b: 5,
            probes: 11,
            events_scanned: 4096,
        };
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"rocc-divergence-report/v1\""));
        assert!(j.contains("\"first_divergent_event\": 7"));
        assert!(j.contains("\"component\": \"host/3\""));
        assert!(j.contains("\"event_b\": null"));
        assert!(r.summary().contains("first divergent event 7"));
    }
}
