//! Store-and-forward switch model.
//!
//! Each switch has one [`Port`] per attached full-duplex link. An egress
//! port owns a FIFO data queue plus a strict-priority control queue (the
//! paper prioritizes CNPs to minimize feedback delay, §3.3). Ingress-side
//! byte accounting drives PFC (802.1Qbb): when the bytes buffered on behalf
//! of an ingress port cross the XOFF threshold, a PAUSE frame is sent
//! upstream; a RESUME follows when occupancy falls below the XON threshold.
//! PFC frames are MAC control frames — they bypass queues entirely and are
//! delivered after one propagation delay.
//!
//! A pluggable [`SwitchCc`] instance per egress port observes enqueues and
//! dequeues (ECN marking, INT stamping) and may run a periodic timer that
//! emits feedback packets toward flow sources (the RoCC congestion point).

use crate::cc::{CtrlEmit, PacketMeta, SwitchCc, SwitchCcCtx};
use crate::config::BufferMode;
use crate::engine::{Event, Kernel};
use crate::packet::{CpId, FlowId, Packet, PacketKind, PFC_FRAME_BYTES};
use crate::profiler::Phase;
use crate::slab::{PacketRef, PacketSlab};
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::telemetry::{CcEvent, DropCause, EventMask, SimEvent};
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId, NodeRole, PortId, Topology};
use crate::trace::Trace;
use crate::units::BitRate;
use std::collections::VecDeque;

/// A packet waiting in (or leaving) an egress queue, remembering which
/// ingress port it arrived on (None for switch-generated feedback). The
/// packet itself stays in the kernel's slab: forwarding moves an 8-byte
/// entry between queues instead of cloning the packet per hop.
#[derive(Debug, Clone, Copy)]
struct QueuedPacket {
    pr: PacketRef,
    ingress: Option<PortId>,
}

/// One physical port: egress queues + transmit state.
pub struct Port {
    /// Strict-priority control queue (feedback packets, ACKs).
    ctrl_q: VecDeque<QueuedPacket>,
    /// Data FIFO.
    data_q: VecDeque<QueuedPacket>,
    /// Bytes currently in `data_q`.
    qlen_bytes: u64,
    /// True while serializing a packet.
    busy: bool,
    /// True after receiving PFC PAUSE from the downstream neighbor.
    paused: bool,
    /// Outgoing link on this port.
    link: LinkId,
    /// Line rate of the outgoing link.
    rate: BitRate,
    /// Cumulative bytes transmitted.
    tx_bytes: u64,
    /// Packet currently being serialized.
    in_flight: Option<QueuedPacket>,
    /// Congestion-control instance for this egress port.
    cc: Box<dyn SwitchCc>,
}

impl Port {
    /// Data-queue occupancy in bytes.
    pub fn qlen_bytes(&self) -> u64 {
        self.qlen_bytes
    }

    /// Cumulative bytes transmitted.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Egress line rate.
    pub fn rate(&self) -> BitRate {
        self.rate
    }

    /// True if this port has received PAUSE and not yet RESUME.
    pub fn is_paused(&self) -> bool {
        self.paused
    }
}

/// A multi-port switch.
pub struct Switch {
    /// This switch's node id.
    pub id: NodeId,
    /// Fabric role (used by experiments to classify congestion points).
    pub role: NodeRole,
    ports: Vec<Port>,
    /// Bytes buffered per ingress port (PFC accounting).
    ingress_buffered: Vec<u64>,
    /// True when we have PAUSEd the upstream neighbor of this ingress port.
    sent_xoff: Vec<bool>,
}

impl Switch {
    /// Build a switch for `id` from the topology, instantiating one CC per
    /// egress port via `make_cc`.
    pub fn new(
        id: NodeId,
        topo: &Topology,
        mut make_cc: impl FnMut(CpId, BitRate) -> Box<dyn SwitchCc>,
    ) -> Self {
        let info = topo.node(id);
        let ports = info
            .out_links
            .iter()
            .enumerate()
            .map(|(p, &link)| {
                let rate = topo.link(link).rate;
                Port {
                    ctrl_q: VecDeque::new(),
                    data_q: VecDeque::new(),
                    qlen_bytes: 0,
                    busy: false,
                    paused: false,
                    link,
                    rate,
                    tx_bytes: 0,
                    in_flight: None,
                    cc: make_cc(
                        CpId {
                            node: id,
                            port: PortId(p),
                        },
                        rate,
                    ),
                }
            })
            .collect::<Vec<_>>();
        let n = ports.len();
        Switch {
            id,
            role: info.role,
            ports,
            ingress_buffered: vec![0; n],
            sent_xoff: vec![false; n],
        }
    }

    /// Port accessor (for sampling).
    pub fn port(&self, p: PortId) -> &Port {
        &self.ports[p.0]
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Timer period requested by the CC on `port`, if any.
    pub fn cc_timer_period(&self, p: PortId) -> Option<crate::time::SimDuration> {
        self.ports[p.0].cc.timer_period()
    }

    /// Total wire bytes resident in this switch: every control queue, data
    /// queue, and in-serialization frame across all ports. Conservation
    /// audits count these as in-network. Queues hold slab refs, so audits
    /// resolve them through `packets`.
    pub fn buffered_wire_bytes(&self, packets: &PacketSlab) -> u64 {
        self.ports
            .iter()
            .map(|p| {
                p.ctrl_q
                    .iter()
                    .map(|q| packets.get(q.pr).wire_bytes())
                    .sum::<u64>()
                    + p.data_q
                        .iter()
                        .map(|q| packets.get(q.pr).wire_bytes())
                        .sum::<u64>()
                    + p.in_flight
                        .as_ref()
                        .map(|q| packets.get(q.pr).wire_bytes())
                        .unwrap_or(0)
            })
            .sum()
    }

    /// Recomputed wire bytes in the data FIFO of egress `p` (the sanitizer
    /// cross-checks this against the incrementally maintained
    /// [`Port::qlen_bytes`]).
    pub fn data_q_wire_bytes(&self, p: PortId, packets: &PacketSlab) -> u64 {
        self.ports[p.0]
            .data_q
            .iter()
            .map(|q| packets.get(q.pr).wire_bytes())
            .sum()
    }

    /// Bytes currently buffered on behalf of ingress port `p` (the PFC
    /// accounting counter).
    pub fn ingress_buffered(&self, p: PortId) -> u64 {
        self.ingress_buffered[p.0]
    }

    /// True while this switch has PAUSEd the upstream neighbor of ingress
    /// port `p` (XOFF sent, XON not yet).
    pub fn sent_xoff(&self, p: PortId) -> bool {
        self.sent_xoff[p.0]
    }

    /// Wire bytes queued in egress `egress`'s data FIFO that arrived via
    /// `ingress` — the per-(ingress, egress) slice of PFC accounting the
    /// pause wait-for graph edges are built from.
    pub fn ingress_bytes_at(&self, egress: PortId, ingress: PortId, packets: &PacketSlab) -> u64 {
        self.ports[egress.0]
            .data_q
            .iter()
            .filter(|q| q.ingress == Some(ingress))
            .map(|q| packets.get(q.pr).wire_bytes())
            .sum()
    }

    /// `(flow, destination)` of every data packet queued on egress `egress`,
    /// in FIFO order — used for victim-flow attribution in pause storms.
    pub fn queued_flows(&self, egress: PortId, packets: &PacketSlab) -> Vec<(FlowId, NodeId)> {
        self.ports[egress.0]
            .data_q
            .iter()
            .map(|q| {
                let pkt = packets.get(q.pr);
                (pkt.flow, pkt.dst)
            })
            .collect()
    }

    fn cc_ctx<'a>(&self, k: &'a mut Kernel, p: PortId, mask: EventMask) -> SwitchCcCtx<'a> {
        let port = &self.ports[p.0];
        SwitchCcCtx {
            now: k.now,
            cp: CpId {
                node: self.id,
                port: p,
            },
            qlen_bytes: port.qlen_bytes,
            link_rate: port.rate,
            tx_bytes: port.tx_bytes,
            rng: &mut k.rng,
            emits: Vec::new(),
            events: Vec::new(),
            event_mask: mask,
        }
    }

    /// Publish a packet-drop telemetry event at this switch.
    fn publish_drop(&self, k: &Kernel, trace: &mut Trace, flow: FlowId, cause: DropCause) {
        if trace.wants(EventMask::DROP) {
            trace.publish_event(SimEvent::Drop {
                t: k.now,
                node: self.id,
                flow,
                cause,
            });
        }
    }

    /// Wrap decision events buffered by the port CC into timestamped,
    /// CP-attributed telemetry events.
    fn publish_cc_events(&self, k: &Kernel, trace: &mut Trace, p: PortId, events: Vec<CcEvent>) {
        for ev in events {
            if let CcEvent::CpDecision {
                kind,
                fair_rate_units,
                alpha,
                beta,
                region,
                qlen_bytes,
            } = ev
            {
                trace.publish_event(SimEvent::CpDecision {
                    t: k.now,
                    cp: CpId {
                        node: self.id,
                        port: p,
                    },
                    kind,
                    fair_rate_units,
                    alpha,
                    beta,
                    region,
                    qlen_bytes,
                });
            }
        }
    }

    /// A packet arrived on `in_port` (by slab ref).
    pub fn handle_arrive(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        in_port: PortId,
        pr: PacketRef,
    ) {
        k.prof.enter(Phase::SwitchForward);
        let (kind, flow, dst) = {
            let pkt = k.packets.get(pr);
            (pkt.kind, pkt.flow, pkt.dst)
        };
        match kind {
            PacketKind::PfcPause => {
                // PFC frames are consumed by the adjacent port: off the wire,
                // out of the slab.
                let pkt = k.packets.take(pr);
                k.san.consume(pkt.wire_bytes());
                self.ports[in_port.0].paused = true;
            }
            PacketKind::PfcResume => {
                let pkt = k.packets.take(pr);
                k.san.consume(pkt.wire_bytes());
                self.ports[in_port.0].paused = false;
                self.try_start_tx(k, topo, trace, in_port);
            }
            _ => {
                let Some(egress) = topo.route(self.id, dst, flow) else {
                    // Unroutable packets are dropped and counted apart from
                    // congestion drops: any nonzero count flags a topology
                    // or routing bug, not load.
                    trace.unroutable_drops += 1;
                    let pkt = k.packets.take(pr);
                    k.san.destroy(pkt.wire_bytes());
                    self.publish_drop(k, trace, flow, DropCause::Unroutable);
                    return;
                };
                self.enqueue(k, topo, trace, egress, Some(in_port), pr);
            }
        }
    }

    /// Append the packet at `pr` to the egress queue on `egress`, running
    /// CC hooks, PFC accounting, and (in lossy mode) tail-drop.
    fn enqueue(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        egress: PortId,
        ingress: Option<PortId>,
        pr: PacketRef,
    ) {
        let (wire, is_ctrl, flow, src) = {
            let pkt = k.packets.get(pr);
            (pkt.wire_bytes(), pkt.kind.is_control(), pkt.flow, pkt.src)
        };

        // An egress interface whose link is administratively down drops at
        // enqueue (all classes): nothing accumulates behind a dead port, and
        // PFC never backpressures traffic that could not be delivered anyway.
        if k.faults.is_active() && k.faults.link_is_down(self.ports[egress.0].link) {
            trace.faults.link_down_drops += 1;
            k.packets.free(pr);
            k.san.destroy(wire);
            self.publish_drop(k, trace, flow, DropCause::LinkDown);
            return;
        }

        if is_ctrl && k.config.prioritize_control {
            self.ports[egress.0].ctrl_q.push_back(QueuedPacket { pr, ingress });
            self.try_start_tx(k, topo, trace, egress);
            return;
        }

        // Data path (and un-prioritized control when ablated): loss / ECN /
        // PFC logic. CC hooks and PFC accounting apply to data only.
        if let BufferMode::LossyTailDrop { limit_bytes } = k.config.buffer_mode {
            if self.ports[egress.0].qlen_bytes + wire > limit_bytes {
                trace.drops += 1;
                k.packets.free(pr);
                k.san.destroy(wire);
                self.publish_drop(k, trace, flow, DropCause::Congestion);
                return;
            }
        }

        self.ports[egress.0].qlen_bytes += wire;
        trace.note_queue_depth(self.id, egress, self.ports[egress.0].qlen_bytes);

        if !is_ctrl {
            // CC enqueue hook (ECN marking, flow-table update, QCN sampling).
            let meta = PacketMeta {
                flow,
                src,
                wire_bytes: wire,
            };
            let mut ctx = self.cc_ctx(k, egress, trace.cc_mask());
            let mark = self.ports[egress.0].cc.on_enqueue(&mut ctx, meta);
            let emits = std::mem::take(&mut ctx.emits);
            let events = std::mem::take(&mut ctx.events);
            if mark {
                k.packets.get_mut(pr).ecn = true;
            }
            self.publish_cc_events(k, trace, egress, events);
            self.inject_feedback(k, topo, trace, emits);
        }

        // PFC ingress accounting.
        if let (BufferMode::LosslessPfc, Some(ing)) = (k.config.buffer_mode, ingress) {
            self.ingress_buffered[ing.0] += wire;
            let in_rate = topo.link(topo.node(self.id).in_links[ing.0]).rate;
            let xoff = k.config.pfc.xoff_for(in_rate);
            if self.ingress_buffered[ing.0] > xoff && !self.sent_xoff[ing.0] {
                self.sent_xoff[ing.0] = true;
                trace.note_pfc(k.now, self.id, ing);
                self.send_pfc(k, topo, ing, PacketKind::PfcPause);
            }
        }

        self.ports[egress.0].data_q.push_back(QueuedPacket { pr, ingress });
        self.try_start_tx(k, topo, trace, egress);
    }

    /// Send a PFC frame out of port `p` (bypassing queues: MAC control).
    fn send_pfc(&self, k: &mut Kernel, topo: &Topology, p: PortId, kind: PacketKind) {
        let port = &self.ports[p.0];
        let link = topo.link(port.link);
        let ser = port.rate.serialization_time(PFC_FRAME_BYTES);
        let pkt = Packet {
            flow: FlowId(u64::MAX),
            src: self.id,
            dst: link.to.0,
            kind,
            ecn: false,
            int: Default::default(),
            sent_at: k.now,
        };
        k.san.inject(pkt.wire_bytes());
        let pr = k.packets.alloc(pkt);
        k.schedule(k.now + ser + link.delay, Event::Arrive { link: port.link, pr });
    }

    /// Route switch-generated feedback packets (RoCC CNPs, QCN Fb) toward
    /// the flow sources. They enter this switch's own egress control queue.
    fn inject_feedback(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        emits: Vec<CtrlEmit>,
    ) {
        for e in emits {
            let pkt = Packet {
                flow: e.flow,
                src: self.id,
                dst: e.to,
                kind: e.kind,
                ecn: false,
                int: Default::default(),
                sent_at: k.now,
            };
            let Some(egress) = topo.route(self.id, e.to, e.flow) else {
                trace.unroutable_drops += 1;
                self.publish_drop(k, trace, e.flow, DropCause::Unroutable);
                continue;
            };
            trace.ctrl_emitted += 1;
            // Switch-originated feedback is born here: it enters the
            // conservation ledger at the instant it is queued.
            k.san.inject(pkt.wire_bytes());
            if trace.wants(EventMask::CNP) {
                let (cp, units) = match pkt.kind {
                    PacketKind::RoccCnp {
                        fair_rate_units,
                        cp,
                    } => (cp, fair_rate_units),
                    PacketKind::QcnFb { fb, cp } => (cp, fb as u32),
                    _ => (
                        CpId {
                            node: self.id,
                            port: egress,
                        },
                        0,
                    ),
                };
                trace.publish_event(SimEvent::CnpEmit {
                    t: k.now,
                    cp,
                    flow: e.flow,
                    fair_rate_units: units,
                });
            }
            let pr = k.packets.alloc(pkt);
            self.ports[egress.0]
                .ctrl_q
                .push_back(QueuedPacket { pr, ingress: None });
            self.try_start_tx(k, topo, trace, egress);
        }
    }

    /// Begin serializing the next packet on `p` if the port is idle.
    fn try_start_tx(&mut self, k: &mut Kernel, topo: &Topology, trace: &mut Trace, p: PortId) {
        if self.ports[p.0].busy || self.ports[p.0].in_flight.is_some() {
            return;
        }
        // Control first; PFC pause gates only the data class.
        let qp = if let Some(qp) = self.ports[p.0].ctrl_q.pop_front() {
            Some(qp)
        } else if !self.ports[p.0].paused {
            self.ports[p.0].data_q.pop_front().inspect(|qp| {
                let (wire, is_data, flow, src) = {
                    let pkt = k.packets.get(qp.pr);
                    (pkt.wire_bytes(), pkt.is_data(), pkt.flow, pkt.src)
                };
                self.ports[p.0].qlen_bytes -= wire;
                if is_data {
                    // CC dequeue hook (INT stamping) sees post-dequeue depth.
                    let meta = PacketMeta {
                        flow,
                        src,
                        wire_bytes: wire,
                    };
                    let mut ctx = self.cc_ctx(k, p, trace.cc_mask());
                    let hop = self.ports[p.0].cc.on_dequeue(&mut ctx, meta);
                    let emits = std::mem::take(&mut ctx.emits);
                    let events = std::mem::take(&mut ctx.events);
                    if let Some(h) = hop {
                        // INT stamping grows the frame in flight; the added
                        // telemetry bytes enter the wire here, so the
                        // conservation ledger books them as injected.
                        let pkt = k.packets.get_mut(qp.pr);
                        let before = pkt.wire_bytes();
                        pkt.int.push(h);
                        let after = pkt.wire_bytes();
                        k.san.inject(after - before);
                    }
                    self.publish_cc_events(k, trace, p, events);
                    self.inject_feedback(k, topo, trace, emits);
                }
                // Release PFC accounting.
                if let Some(ing) = qp.ingress {
                    let b = &mut self.ingress_buffered[ing.0];
                    *b = b.saturating_sub(wire);
                    if self.sent_xoff[ing.0] {
                        let in_rate =
                            topo.link(topo.node(self.id).in_links[ing.0]).rate;
                        if *b < k.config.pfc.xon_for(in_rate) {
                            self.sent_xoff[ing.0] = false;
                            trace.note_pfc_resume(k.now, self.id, ing);
                            self.send_pfc(k, topo, ing, PacketKind::PfcResume);
                        }
                    }
                }
            })
        } else {
            None
        };
        let Some(qp) = qp else { return };
        let ser = self.ports[p.0]
            .rate
            .serialization_time(k.packets.get(qp.pr).wire_bytes());
        self.ports[p.0].busy = true;
        self.ports[p.0].in_flight = Some(qp);
        k.schedule(
            k.now + ser,
            Event::SwitchTxDone {
                node: self.id,
                port: p,
            },
        );
    }

    /// Serialization finished on `p`: hand the packet to the link.
    pub fn handle_tx_done(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        p: PortId,
    ) {
        k.prof.enter(Phase::SwitchForward);
        let qp = self.ports[p.0]
            .in_flight
            .take()
            .expect("TxDone without in-flight packet");
        let wire = k.packets.get(qp.pr).wire_bytes();
        self.ports[p.0].tx_bytes += wire;
        self.ports[p.0].busy = false;
        let link = self.ports[p.0].link;
        let delay = topo.link(link).delay;
        k.schedule(k.now + delay, Event::Arrive { link, pr: qp.pr });
        self.try_start_tx(k, topo, trace, p);
    }

    /// Periodic CC timer fired for `p` (RoCC's fair-rate computation).
    pub fn handle_cc_timer(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        p: PortId,
    ) {
        k.prof.enter(Phase::CpTick);
        let mut ctx = self.cc_ctx(k, p, trace.cc_mask());
        self.ports[p.0].cc.on_timer(&mut ctx);
        let emits = std::mem::take(&mut ctx.emits);
        let events = std::mem::take(&mut ctx.events);
        self.publish_cc_events(k, trace, p, events);
        self.inject_feedback(k, topo, trace, emits);
        if let Some(period) = self.ports[p.0].cc.timer_period() {
            k.schedule(
                k.now + period,
                Event::CpTimer {
                    node: self.id,
                    port: p,
                },
            );
        }
    }

    /// The link attached to port `p` came back after an outage. PFC state on
    /// both ends is stale — PAUSE/RESUME frames in flight died with the link
    /// — so resynchronize: forget any PAUSE received from the peer, and if we
    /// had PAUSEd the peer, re-assert it while this ingress is still above
    /// the XON threshold (otherwise treat it as resumed).
    pub fn on_link_restored(
        &mut self,
        k: &mut Kernel,
        topo: &Topology,
        trace: &mut Trace,
        p: PortId,
    ) {
        k.prof.enter(Phase::SwitchForward);
        self.ports[p.0].paused = false;
        if self.sent_xoff[p.0] {
            let in_rate = topo.link(topo.node(self.id).in_links[p.0]).rate;
            if self.ingress_buffered[p.0] >= k.config.pfc.xon_for(in_rate) {
                self.send_pfc(k, topo, p, PacketKind::PfcPause);
            } else {
                self.sent_xoff[p.0] = false;
            }
        }
        self.try_start_tx(k, topo, trace, p);
    }

    /// Exact simulation-time snapshot of a port's state (sampling support).
    pub fn snapshot(&self, p: PortId) -> (u64, u64) {
        (self.ports[p.0].qlen_bytes, self.ports[p.0].tx_bytes)
    }

    /// Serialize the switch's dynamic state: per-port queues (as slab
    /// refs, verbatim FIFO order), transmit and PFC state, the CC word
    /// stream, and the ingress accounting vectors.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        let write_qp = |w: &mut SnapWriter, qp: &QueuedPacket| {
            w.u32(qp.pr.index());
            match qp.ingress {
                None => w.u8(0),
                Some(p) => {
                    w.u8(1);
                    w.usize(p.0);
                }
            }
        };
        w.usize(self.ports.len());
        for port in &self.ports {
            w.usize(port.ctrl_q.len());
            for qp in &port.ctrl_q {
                write_qp(w, qp);
            }
            w.usize(port.data_q.len());
            for qp in &port.data_q {
                write_qp(w, qp);
            }
            w.u64(port.qlen_bytes);
            w.bool(port.busy);
            w.bool(port.paused);
            w.u64(port.tx_bytes);
            match &port.in_flight {
                None => w.u8(0),
                Some(qp) => {
                    w.u8(1);
                    write_qp(w, qp);
                }
            }
            let mut words = Vec::new();
            port.cc.snapshot_state(&mut words);
            w.words(&words);
        }
        w.usize(self.ingress_buffered.len());
        for &b in &self.ingress_buffered {
            w.u64(b);
        }
        for &x in &self.sent_xoff {
            w.bool(x);
        }
    }

    /// Overwrite the switch's dynamic state from a [`Switch::save_state`]
    /// stream. The port layout and CC boxes of the freshly rebuilt switch
    /// are reused; only their dynamic contents change.
    pub(crate) fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let read_qp = |r: &mut SnapReader<'_>| -> Result<QueuedPacket, SnapshotError> {
            let pr = PacketRef::from_index(r.u32()?);
            let ingress = match r.u8()? {
                0 => None,
                1 => Some(PortId(r.usize()?)),
                _ => return Err(SnapshotError::Malformed("queued packet ingress tag")),
            };
            Ok(QueuedPacket { pr, ingress })
        };
        let np = r.len()?;
        if np != self.ports.len() {
            return Err(SnapshotError::Malformed("switch port count"));
        }
        for port in &mut self.ports {
            let nc = r.len()?;
            port.ctrl_q.clear();
            for _ in 0..nc {
                port.ctrl_q.push_back(read_qp(r)?);
            }
            let nd = r.len()?;
            port.data_q.clear();
            for _ in 0..nd {
                port.data_q.push_back(read_qp(r)?);
            }
            port.qlen_bytes = r.u64()?;
            port.busy = r.bool()?;
            port.paused = r.bool()?;
            port.tx_bytes = r.u64()?;
            port.in_flight = match r.u8()? {
                0 => None,
                1 => Some(read_qp(r)?),
                _ => return Err(SnapshotError::Malformed("in-flight tag")),
            };
            let words = r.words()?;
            port.cc.restore_state(&words);
        }
        let ni = r.len()?;
        if ni != self.ingress_buffered.len() {
            return Err(SnapshotError::Malformed("switch ingress count"));
        }
        for b in &mut self.ingress_buffered {
            *b = r.u64()?;
        }
        for x in &mut self.sent_xoff {
            *x = r.bool()?;
        }
        Ok(())
    }

    /// Schedule initial CC timers (called once by the engine at t=0 with a
    /// deterministic phase offset so all ports don't fire in lockstep).
    pub fn schedule_cc_timers(&self, k: &mut Kernel, _now: SimTime) {
        for p in 0..self.ports.len() {
            if let Some(period) = self.ports[p].cc.timer_period() {
                // Stagger by port index to avoid synchronized bursts of CNPs.
                let phase = crate::time::SimDuration::from_nanos(
                    period.as_nanos() * (p as u64 % 7) / 7,
                );
                k.schedule(
                    k.now + period + phase,
                    Event::CpTimer {
                        node: self.id,
                        port: PortId(p),
                    },
                );
            }
        }
    }
}
