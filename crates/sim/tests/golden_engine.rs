//! Golden-run pinning for the event-queue/slab refactor.
//!
//! The indexed event queue (packet slab + compact heap keys) must be a
//! pure representation change: every simulation-visible output — event
//! counts, FCT nanoseconds, drop/retransmit/control counters, fault
//! counters — must be bit-identical to the seed engine that sifted full
//! `Packet`s through the heap. The constants below were captured from
//! the pre-refactor engine (commit 7d7e222) on the chaos scenario used
//! by the observer-effect suite: a 6-sender incast with data loss, CNP
//! loss and a link flap all active, across three seeds.
//!
//! To regenerate after an *intentional* behavior change, run:
//!
//! ```text
//! cargo test --test golden_engine -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// Everything simulation-visible a run produces.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    events: u64,
    fcts: Vec<(u64, u64)>,
    drops: u64,
    unroutable: u64,
    retx: u64,
    ctrl_emitted: u64,
    injected_drops: u64,
}

/// Where divergence artifacts land when a golden assertion fails (CI
/// uploads this directory).
fn diverge_dir() -> String {
    std::env::var("ROCC_DIVERGE_DIR").unwrap_or_else(|_| "target/diverge".to_string())
}

/// The same faulted incast the chaos/observer suites exercise: loss on
/// data and CNPs plus a mid-run link flap, RoCC end to end. The run
/// records the strided digest ledger (pure observation — `observer_effect`
/// pins that recording is bit-identical to not recording) so a
/// fingerprint mismatch can be localized offline.
fn chaos_incast(seed: u64) -> (RunFingerprint, DigestLedger) {
    let (topo, srcs, dst) = dumbbell(6, 40);
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.004)
            .with_loss(FaultTarget::Cnp, 0.01)
            .with_flap(
                LinkId(3),
                SimTime::from_micros(400),
                SimTime::from_micros(900),
            ),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    sim.enable_digest_ledger(4096);
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 1_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
    assert!(verdict.is_complete(), "chaos incast must finish: {verdict:?}");
    // Healthy schemes never schedule into the past; a nonzero clamp count
    // on a golden seed means a node handler regressed (see
    // `Kernel::past_due_clamps`).
    assert_eq!(
        sim.kernel.past_due_clamps(),
        0,
        "golden seed {seed} produced past-due schedule clamps"
    );
    let fp = RunFingerprint {
        events: sim.events_processed(),
        fcts: sim
            .trace
            .fcts
            .iter()
            .map(|r| (r.flow.0, r.end.as_nanos()))
            .collect(),
        drops: sim.trace.drops,
        unroutable: sim.trace.unroutable_drops,
        retx: sim.trace.retx_bytes,
        ctrl_emitted: sim.trace.ctrl_emitted,
        injected_drops: sim.trace.faults.data_lost + sim.trace.faults.ctrl_lost,
    };
    let ledger = sim.take_digest_ledger().expect("ledger enabled above");
    (fp, ledger)
}

/// Golden fingerprints captured from the pre-refactor (full-`Packet`
/// heap) engine. Seeds chosen to hit distinct loss/flap interleavings.
const GOLDEN: &[(u64, u64, &[(u64, u64)], u64, u64, u64, u64, u64)] = &[
    // (seed, events, fcts, drops, unroutable, retx, ctrl_emitted, injected)
    (1, 90689, &[(2, 2339013), (5, 2396585), (3, 2478577), (1, 2623852), (4, 6706250), (0, 10119843)], 0, 0, 2922000, 90, 74),
    (7, 66614, &[(5, 2283643), (4, 2555433), (1, 2559048), (3, 2604450), (2, 2655552), (0, 2881297)], 0, 0, 1687000, 96, 70),
    (42, 66837, &[(4, 2214717), (5, 2356143), (2, 2367213), (1, 2391653), (3, 2399267), (0, 2498173)], 0, 0, 1733000, 82, 77),
];

#[test]
fn slab_queue_is_bit_identical_to_seed_engine() {
    for &(seed, events, fcts, drops, unroutable, retx, ctrl, injected) in GOLDEN {
        let (got, ledger) = chaos_incast(seed);
        let want = RunFingerprint {
            events,
            fcts: fcts.to_vec(),
            drops,
            unroutable,
            retx,
            ctrl_emitted: ctrl,
            injected_drops: injected,
        };
        if got != want {
            // Pinned constants can't be bisected live (the reference
            // build is gone) — dump the run's per-component digest
            // ledger so the mismatch can be localized offline against a
            // known-good build: `repro diverge ledgers <good> <this>`.
            let path = format!("{}/golden_seed{seed}_digest_ledger.jsonl", diverge_dir());
            let wrote = write_artifact(&path, &ledger.to_jsonl())
                .map(|()| path)
                .unwrap_or_else(|e| format!("<failed to write ledger: {e}>"));
            panic!(
                "engine diverged from golden run at seed {seed}:\n  got: {got:?}\n want: {want:?}\n\
                 digest ledger written to {wrote}; diff against a known-good\n\
                 build's ledger with `repro diverge ledgers <good.jsonl> {wrote}`"
            );
        }
    }
}

/// Prints the golden table for the seeds above; used to (re)capture the
/// constants when a deliberate behavior change lands.
#[test]
#[ignore]
fn capture_golden_fingerprints() {
    for seed in [1u64, 7, 42] {
        let (f, _) = chaos_incast(seed);
        println!(
            "    ({seed}, {}, &{:?}, {}, {}, {}, {}, {}),",
            f.events, f.fcts, f.drops, f.unroutable, f.retx, f.ctrl_emitted, f.injected_drops
        );
    }
}
