//! Ablation studies of RoCC's design choices (DESIGN.md §5).
//!
//! Each ablation runs the §6.1 dumbbell under a modified RoCC and reports
//! the metrics the design choice is supposed to move: queue settle time
//! and steadiness, fairness across flows, and feedback-message cost.

use crate::micro::{settle_time, tail_stats};
use crate::scenarios;
use rocc_core::{CpParams, FlowTablePolicy, RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;
use rocc_stats::jain_fairness;

/// Outcome of one ablation run.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Human-readable variant label.
    pub variant: String,
    /// Queue settle time to Qref ± 50% (None = never settled).
    pub settle: Option<SimTime>,
    /// Queue mean over the tail window (bytes).
    pub queue_mean: f64,
    /// Queue standard deviation over the tail window (bytes).
    pub queue_sd: f64,
    /// Jain fairness index over per-flow goodputs (1.0 = perfect).
    pub fairness: f64,
    /// Switch-emitted feedback packets (CNP cost).
    pub cnps: u64,
    /// Mean per-flow goodput (bits/s).
    pub mean_goodput: f64,
}

/// Run N flows over a 40G dumbbell with the given RoCC switch factory and
/// simulator config, and collect the ablation metrics.
pub fn run_variant(
    variant: impl Into<String>,
    n: usize,
    factory: RoccSwitchCcFactory,
    cfg: SimConfig,
    horizon: SimTime,
) -> AblationResult {
    let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
    let mut sim = Sim::new(
        d.topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(factory),
    );
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    let offered = BitRate::from_gbps(40).scale(0.9);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(offered),
        });
    }
    let measure_from = SimTime::from_nanos(horizon.as_nanos() / 2);
    sim.run_until(measure_from);
    let base: Vec<u64> = (0..n)
        .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
        .collect();
    sim.run_until(horizon);
    let w = horizon.saturating_since(measure_from).as_secs_f64();
    let goodputs: Vec<f64> = (0..n)
        .map(|i| (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / w)
        .collect();
    let (queue_mean, queue_sd) = tail_stats(&sim.trace.queue_series[0], measure_from);
    AblationResult {
        variant: variant.into(),
        settle: settle_time(&sim.trace.queue_series[0], 150_000.0, 0.5),
        queue_mean,
        queue_sd,
        fairness: jain_fairness(&goodputs).unwrap_or(0.0),
        cnps: sim.trace.ctrl_emitted,
        mean_goodput: goodputs.iter().sum::<f64>() / n as f64,
    }
}

fn default_horizon() -> SimTime {
    SimTime::from_millis(16)
}

/// Ablation 1: six-level gain auto-tuning on vs off (§5.3). With many
/// flows, fixed aggressive gains destabilize the queue.
pub fn ablate_auto_tune(n: usize) -> Vec<AblationResult> {
    let mut fixed = CpParams::for_40g();
    fixed.auto_tune = false;
    vec![
        run_variant(
            "auto-tune on",
            n,
            RoccSwitchCcFactory::new(),
            SimConfig::default(),
            default_horizon(),
        ),
        run_variant(
            "auto-tune off",
            n,
            RoccSwitchCcFactory::new().with_params(fixed),
            SimConfig::default(),
            default_horizon(),
        ),
    ]
}

/// Burst-join variant: `base` flows run to convergence, then `burst` new
/// line-rate flows join at 8 ms. Reports the post-join queue peak — the
/// quantity MD exists to contain (Alg. 1 lines 2–5). Returns
/// (variant result, post-join peak queue bytes).
pub fn run_burst_variant(
    variant: impl Into<String>,
    base: usize,
    burst: usize,
    burst_offered: Option<BitRate>,
    factory: RoccSwitchCcFactory,
) -> (AblationResult, u64) {
    let d = scenarios::dumbbell(base + burst, BitRate::from_gbps(40));
    let mut sim = Sim::new(
        d.topo,
        SimConfig::default(),
        Box::new(RoccHostCcFactory::new()),
        Box::new(factory),
    );
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    for i in 0..base + burst {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: d.senders[i],
            dst: d.receiver,
            size: u64::MAX,
            start: if i < base {
                SimTime::ZERO
            } else {
                SimTime::from_millis(8)
            },
            offered: if i < base { None } else { burst_offered },
        });
    }
    // Converge with the base set, then reset the peak tracker via a
    // separate measurement: run to 8 ms, note the peak, continue, and
    // report the increment attributable to the join.
    sim.run_until(SimTime::from_millis(8));
    let peak_before = sim.trace.queue_peak[0];
    sim.run_until(SimTime::from_millis(14));
    let peak_after = sim.trace.queue_peak[0];
    let (queue_mean, queue_sd) = tail_stats(
        &sim.trace.queue_series[0],
        SimTime::from_millis(11),
    );
    let res = AblationResult {
        variant: variant.into(),
        settle: settle_time(&sim.trace.queue_series[0], 150_000.0, 0.5),
        queue_mean,
        queue_sd,
        fairness: 1.0,
        cnps: sim.trace.ctrl_emitted,
        mean_goodput: 0.0,
    };
    (res, peak_after.max(peak_before))
}

/// Ablation 2: multiplicative decrease on vs off (Alg. 1 lines 2–5) under
/// a burst join. Note a reproduction finding: with the paper's static
/// gains, the PI's β-term alone already slams F to the floor on large
/// bursts (the paper itself calls the MD parameters "not
/// reliability-critical"); MD's distinct value shows at moderate bursts
/// and low-gain (auto-tuned-down) operating points.
pub fn ablate_md(n: usize) -> Vec<AblationResult> {
    let mut no_md = CpParams::for_40g();
    no_md.multiplicative_decrease = false;
    // A moderate burst: joiners offer ~1.5 Gb/s over the residual
    // capacity per tick, putting the queue growth right in the band where
    // MD's halving outpaces the PI's proportional response.
    let joiners = n.max(4);
    let cap = Some(BitRate::from_gbps(15));
    let (mut on, peak_on) = run_burst_variant("MD on", 2, joiners, cap, RoccSwitchCcFactory::new());
    let (mut off, peak_off) = run_burst_variant(
        "MD off",
        2,
        joiners,
        cap,
        RoccSwitchCcFactory::new().with_params(no_md),
    );
    on.variant = format!("MD on (join peak {} KB)", peak_on / 1000);
    off.variant = format!("MD off (join peak {} KB)", peak_off / 1000);
    vec![on, off]
}

/// Ablation 3: flow-table policy (§3.4) — in-queue vs bounded/age vs
/// sampling. Selective feedback lowers CNP cost at some stability cost.
pub fn ablate_flow_table(n: usize) -> Vec<AblationResult> {
    let policies = [
        ("table: in-queue", FlowTablePolicy::InQueue),
        (
            "table: bounded+age",
            FlowTablePolicy::BoundedAge {
                capacity: 400,
                idle_timeout_ns: 200_000,
            },
        ),
        (
            "table: sampling 25%",
            FlowTablePolicy::Sampling {
                capacity: 128,
                sample_prob: 0.25,
            },
        ),
    ];
    policies
        .into_iter()
        .map(|(name, p)| {
            run_variant(
                name,
                n,
                RoccSwitchCcFactory::new().with_policy(p),
                SimConfig::default(),
                default_horizon(),
            )
        })
        .collect()
}

/// Ablation 4: CNP prioritization (§3.3) on vs off. The priority queue
/// only matters when feedback shares a congested wire with data, so this
/// scenario adds reverse bulk flows (receiver → senders) that CNPs must
/// cross on their way back to the sources.
pub fn ablate_cnp_priority(n: usize) -> Vec<AblationResult> {
    let run = |variant: &str, cfg: SimConfig| -> AblationResult {
        let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
        let mut sim = Sim::new(
            d.topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        sim.trace.sample_period = Some(SimDuration::from_micros(100));
        sim.trace.watch_queue(d.switch, d.bottleneck_port);
        let offered = BitRate::from_gbps(40).scale(0.9);
        for (i, &s) in d.senders.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst: d.receiver,
                size: u64::MAX,
                start: SimTime::ZERO,
                offered: Some(offered),
            });
        }
        // Reverse bulk traffic: the receiver floods every sender's
        // downlink, so CNPs queue behind data unless prioritized.
        for (i, &s) in d.senders.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId((n + i) as u64),
                src: d.receiver,
                dst: s,
                size: u64::MAX,
                start: SimTime::ZERO,
                offered: Some(BitRate::from_gbps(40).scale(0.9 / n as f64)),
            });
        }
        let horizon = default_horizon();
        let measure_from = SimTime::from_nanos(horizon.as_nanos() / 2);
        sim.run_until(measure_from);
        let base: Vec<u64> = (0..n)
            .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
            .collect();
        sim.run_until(horizon);
        let w = horizon.saturating_since(measure_from).as_secs_f64();
        let goodputs: Vec<f64> = (0..n)
            .map(|i| {
                (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / w
            })
            .collect();
        let (queue_mean, queue_sd) = tail_stats(&sim.trace.queue_series[0], measure_from);
        AblationResult {
            variant: variant.into(),
            settle: settle_time(&sim.trace.queue_series[0], 150_000.0, 0.5),
            queue_mean,
            queue_sd,
            fairness: jain_fairness(&goodputs).unwrap_or(0.0),
            cnps: sim.trace.ctrl_emitted,
            mean_goodput: goodputs.iter().sum::<f64>() / n as f64,
        }
    };
    let no_prio = SimConfig {
        prioritize_control: false,
        ..SimConfig::default()
    };
    vec![
        run("CNP priority on", SimConfig::default()),
        run("CNP priority off", no_prio),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_tune_stabilizes_large_n() {
        let r = ablate_auto_tune(64);
        let on = &r[0];
        let off = &r[1];
        assert!(on.fairness > 0.98, "auto-tuned must be fair: {}", on.fairness);
        // Without auto-tuning the fixed 40G gains are far too aggressive
        // for N=64: the queue never stabilizes or oscillates much harder.
        assert!(
            off.queue_sd > 2.0 * on.queue_sd || off.settle.is_none(),
            "ablation must show instability: sd {} vs {}",
            off.queue_sd,
            on.queue_sd
        );
    }

    #[test]
    fn all_tables_reach_high_fairness() {
        for r in ablate_flow_table(10) {
            assert!(
                r.fairness > 0.95,
                "{}: fairness {} too low",
                r.variant,
                r.fairness
            );
        }
    }

    #[test]
    fn md_contains_moderate_burst_overshoot() {
        let no_md = {
            let mut p = CpParams::for_40g();
            p.multiplicative_decrease = false;
            p
        };
        let (_, peak_on) =
            run_burst_variant("on", 2, 10, Some(BitRate::from_gbps(15)), RoccSwitchCcFactory::new());
        let (_, peak_off) = run_burst_variant(
            "off",
            2,
            10,
            Some(BitRate::from_gbps(15)),
            RoccSwitchCcFactory::new().with_params(no_md),
        );
        assert!(
            peak_on < peak_off,
            "MD must reduce the join overshoot: {peak_on} vs {peak_off}"
        );
    }

    #[test]
    fn cnp_priority_ablation_runs_with_reverse_traffic() {
        let r = ablate_cnp_priority(6);
        assert_eq!(r.len(), 2);
        for v in &r {
            assert!(v.fairness > 0.9, "{}: fairness {}", v.variant, v.fairness);
        }
    }
}
