//! Shape assertions for the figure experiments: the qualitative claims a
//! reader takes away from each paper figure, checked programmatically at
//! quick scale.

use rocc_experiments::{analytic, micro, Scale, Scheme};
use rocc_sim::prelude::*;
use rocc_stats::jain_fairness;

#[test]
fn fig8_queue_tracks_qref_at_both_speeds() {
    for case in micro::fig8(Scale::Quick) {
        let qref = if case.gbps >= 100 { 300_000.0 } else { 150_000.0 };
        assert!(
            (case.queue_mean - qref).abs() / qref < 0.15,
            "B={}G N={}: queue {:.0} vs Qref {qref}",
            case.gbps,
            case.n,
            case.queue_mean
        );
        let ideal = case.gbps as f64 * 1e9 / case.n as f64 * (1000.0 / 1048.0);
        let mean =
            case.per_flow_goodput.iter().sum::<f64>() / case.per_flow_goodput.len() as f64;
        assert!(
            (mean - ideal).abs() / ideal < 0.05,
            "B={}G N={}: {mean:.2e} vs {ideal:.2e}",
            case.gbps,
            case.n
        );
        assert!(case.settle.is_some(), "B={}G N={} never settled", case.gbps, case.n);
    }
}

#[test]
fn fig9_rate_plateaus_track_flow_count() {
    let r = micro::fig9(Scale::Quick);
    // At the end of each step, flow 0's RP rate ≈ 40G / N (for steps where
    // flow 0 is active, i.e. all of them).
    let step_ns = (r.steps[1].0 - r.steps[0].0).as_nanos();
    for (k, &(t, n)) in r.steps.iter().enumerate() {
        // Sample just before the *next* step boundary (converged point).
        let probe = SimTime::from_nanos(t.as_nanos() + step_ns * 9 / 10);
        let Some(s) = r.rate.iter().rev().find(|s| s.t <= probe) else {
            continue;
        };
        let ideal = 40e9 / n as f64;
        // Generous tolerance: MD quantization and Fmin clamp at N=96.
        let ratio = s.v / ideal;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "step {k} (N={n}): rate {:.2e} vs ideal {ideal:.2e}",
            s.v
        );
    }
}

#[test]
fn fig19_staircase_for_both_baselines() {
    // The App. A.1 verification claim: per-flow throughput steps track the
    // active flow count for DCQCN and HPCC.
    let step_ms = 15.0;
    for run in micro::fig19(Scale::Quick) {
        // During [3.5, 4) steps, all four flows are active → each ≈ 10G.
        let probe = |ms: f64| -> Vec<f64> {
            run.flow_series
                .iter()
                .map(|s| {
                    s.iter()
                        .rev()
                        .find(|x| x.t.as_millis_f64() <= ms)
                        .map(|x| x.v)
                        .unwrap_or(0.0)
                })
                .collect()
        };
        let all_four = probe(4.0 * step_ms - 1.0);
        let total: f64 = all_four.iter().sum();
        assert!(
            (total - 38e9).abs() / 38e9 < 0.15,
            "{}: four-flow total {:.1} Gb/s",
            run.scheme.name(),
            total / 1e9
        );
        let fair = jain_fairness(&all_four).unwrap();
        assert!(
            fair > 0.8,
            "{}: four-flow fairness {fair:.3}",
            run.scheme.name()
        );
        // During the first step only flow 0 runs, near line rate.
        let solo = probe(step_ms - 1.0);
        assert!(
            solo[0] > 30e9,
            "{}: solo flow at {:.1} Gb/s",
            run.scheme.name(),
            solo[0] / 1e9
        );
        assert!(solo[1] < 1e9 && solo[2] < 1e9 && solo[3] < 1e9);
    }
}

#[test]
fn fig12a_rocc_is_the_fairest_to_the_multi_cp_flow() {
    let rows = micro::fig12a(Scale::Quick);
    let d0_d5_gap = |r: &micro::Fig12Row| (r.throughput[0] - r.throughput[5]).abs();
    let rocc = rows.iter().find(|r| r.scheme == Scheme::Rocc).unwrap();
    for r in &rows {
        assert!(
            d0_d5_gap(rocc) <= d0_d5_gap(r) + 1e7,
            "{} matches D0/D5 better than RoCC",
            r.scheme.name()
        );
    }
    // And D0 gets its full most-congested-link share only under RoCC.
    let ideal = 5e9 * (1000.0 / 1048.0);
    assert!((rocc.throughput[0] - ideal).abs() / ideal < 0.05);
}

#[test]
fn fig12b_rocc_equalizes_the_asymmetric_topology() {
    let rows = micro::fig12b(Scale::Quick);
    let rocc = rows.iter().find(|r| r.scheme == Scheme::Rocc).unwrap();
    let hpcc = rows.iter().find(|r| r.scheme == Scheme::Hpcc).unwrap();
    assert!(jain_fairness(&rocc.throughput).unwrap() > 0.999);
    // HPCC's fast-NIC bias: flows 5/6 (100G hosts) above flows 0–4.
    let slow_max = hpcc.throughput[..5].iter().cloned().fold(f64::MIN, f64::max);
    let fast_min = hpcc.throughput[5..].iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        fast_min > slow_max,
        "HPCC bias not visible: slow max {slow_max:.2e} vs fast min {fast_min:.2e}"
    );
}

#[test]
fn fig5_surface_has_the_paper_ridge() {
    let pts = analytic::fig5(10);
    // The best margins live at small α with β ≈ 0.4–1.5 (the ridge in the
    // paper's surface); both very small and very large β are worse.
    let best = pts
        .iter()
        .max_by(|a, b| a.phase_margin_deg.partial_cmp(&b.phase_margin_deg).unwrap())
        .unwrap();
    assert!(best.phase_margin_deg > 70.0);
    assert!(best.beta > 0.2 && best.beta < 2.0, "ridge at beta {}", best.beta);
    assert!(best.alpha < 0.1, "ridge at alpha {}", best.alpha);
}
