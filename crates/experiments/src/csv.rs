//! Plot-ready CSV export for the figure experiments.
//!
//! `repro dump <dir> [quick|paper]` writes one CSV per figure so the
//! paper's plots can be regenerated with any plotting tool. Formats are
//! deliberately simple: one header row, comma-separated, time in
//! milliseconds, rates in Gb/s, queues in KB, FCTs in ms.

use crate::fct::{fct_comparison, BufferRegime, SchemeFcts, Workload};
use crate::micro;
use crate::Scale;
use rocc_sim::prelude::Sample;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

fn series_csv(columns: &[(&str, &[Sample])]) -> String {
    let mut out = String::new();
    out.push_str("t_ms");
    for (name, _) in columns {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    let len = columns.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    for i in 0..len {
        let _ = write!(out, "{:.3}", columns[0].1[i].t.as_millis_f64());
        for (_, s) in columns {
            let _ = write!(out, ",{:.6}", s[i].v);
        }
        out.push('\n');
    }
    out
}

fn fct_csv(results: &[SchemeFcts]) -> String {
    let mut out = String::from("scheme,bin_bytes,count,avg_ms,avg_ci_ms,p90_ms,p90_ci_ms,p99_ms,p99_ci_ms\n");
    for r in results {
        for b in &r.bins {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                r.scheme.name(),
                b.bin,
                b.count,
                b.avg.mean * 1e3,
                b.avg.ci95 * 1e3,
                b.p90.mean * 1e3,
                b.p90.ci95 * 1e3,
                b.p99.mean * 1e3,
                b.p99.ci95 * 1e3,
            );
        }
    }
    out
}

/// Write every figure's plot data into `dir`. Returns the file list.
pub fn dump_all(dir: &Path, scale: Scale) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut save = |name: &str, content: String| -> io::Result<()> {
        fs::write(dir.join(name), content)?;
        written.push(name.to_string());
        Ok(())
    };

    // Fig. 8: queue + rate series per (B, N) case.
    for case in micro::fig8(scale) {
        let name = format!("fig8_{}g_n{}.csv", case.gbps, case.n);
        save(
            &name,
            series_csv(&[
                ("queue_bytes", &case.queue),
                ("rate_bps", &case.rate),
            ]),
        )?;
    }

    // Fig. 9: load-swing series.
    let f9 = micro::fig9(scale);
    save(
        "fig9.csv",
        series_csv(&[("queue_bytes", &f9.queue), ("rate_bps", &f9.rate)]),
    )?;

    // Fig. 11: per-scheme queue/utilization series + per-flow rates.
    let mut f11_rates = String::from("scheme,flow,rate_bps\n");
    for row in micro::fig11(scale) {
        let name = format!(
            "fig11_{}.csv",
            row.scheme.name().to_lowercase().replace('+', "_")
        );
        save(
            &name,
            series_csv(&[("queue_bytes", &row.queue), ("tput_bps", &row.util)]),
        )?;
        for (i, r) in row.per_flow_rate.iter().enumerate() {
            let _ = writeln!(f11_rates, "{},{},{:.0}", row.scheme.name(), i, r);
        }
    }
    save("fig11_rates.csv", f11_rates)?;

    // Fig. 12: fairness bars.
    let mut f12 = String::from("figure,scheme,flow,throughput_bps\n");
    for row in micro::fig12a(scale) {
        for (i, t) in row.throughput.iter().enumerate() {
            let _ = writeln!(f12, "12a,{},D{},{:.0}", row.scheme.name(), i, t);
        }
    }
    for row in micro::fig12b(scale) {
        for (i, t) in row.throughput.iter().enumerate() {
            let _ = writeln!(f12, "12b,{},D{},{:.0}", row.scheme.name(), i, t);
        }
    }
    save("fig12.csv", f12)?;

    // Fig. 13: queue series per cell.
    for run in micro::fig13(scale) {
        let name = format!("fig13_{}_{}.csv", run.profile, run.scenario);
        save(&name, series_csv(&[("queue_bytes", &run.queue)]))?;
    }

    // Figs. 14–16 + Table 3 source data.
    for wl in [Workload::WebSearch, Workload::FbHadoop] {
        let res = fct_comparison(wl, 0.7, scale, BufferRegime::Pfc);
        let name = format!("fct_{}.csv", wl.name().to_lowercase());
        save(&name, fct_csv(&res))?;
    }

    // Fig. 19: per-flow series per scheme.
    for run in micro::fig19(scale) {
        let name = format!("fig19_{}.csv", run.scheme.name().to_lowercase());
        let cols: Vec<(String, &[Sample])> = run
            .flow_series
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("flow{i}_bps"), s.as_slice()))
            .collect();
        let borrowed: Vec<(&str, &[Sample])> =
            cols.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        save(&name, series_csv(&borrowed))?;
    }

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::SimTime;

    #[test]
    fn series_csv_formats_rows() {
        let a = vec![
            Sample {
                t: SimTime::from_millis(1),
                v: 100.0,
            },
            Sample {
                t: SimTime::from_millis(2),
                v: 200.0,
            },
        ];
        let b: Vec<Sample> = a.iter().map(|s| Sample { t: s.t, v: s.v * 3.0 }).collect();
        let csv = series_csv(&[("x", &a), ("y", &b)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t_ms,x,y"));
        assert_eq!(lines.next(), Some("1.000,100.000000,300.000000"));
        assert_eq!(lines.next(), Some("2.000,200.000000,600.000000"));
    }

    #[test]
    fn fct_csv_has_header_and_rows() {
        // Build a minimal SchemeFcts via the public constructor path.
        use crate::fct::{scheme_fcts, FatTreeConfig};
        use crate::Scheme;
        use rocc_sim::prelude::SimDuration;
        let cfg = FatTreeConfig {
            hosts_per_edge: 3,
            trunks: 1,
            window: SimDuration::from_millis(1),
            max_drain: SimDuration::from_millis(400),
            reps: 1,
        };
        let r = scheme_fcts(Scheme::Rocc, Workload::FbHadoop, 0.5, &cfg, BufferRegime::Pfc);
        let csv = fct_csv(&[r]);
        assert!(csv.starts_with("scheme,bin_bytes,count"));
        assert!(csv.lines().count() > 5);
        assert!(csv.contains("RoCC,"));
    }
}
