//! End-to-end behaviour of RoCC inside the packet-level simulator: the
//! paper's §6.1 micro-benchmark properties at small scale.

use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;

/// N senders → one switch → one receiver; B Gb/s everywhere; offered load
/// 90% of line rate per sender (the paper's fairness/stability setup).
fn dumbbell(n: usize, gbps: u64) -> (Sim, Vec<FlowId>, NodeId, PortId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    let (bottleneck_port, _) = b.connect(
        dst,
        sw,
        BitRate::from_gbps(gbps),
        SimDuration::from_micros(1),
    );
    // `connect(dst, sw)` allocates the port pair; the switch-side egress
    // port toward dst is the second of the pair.
    let sw_port_to_dst = bottleneck_port; // same index on both sides here
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    let topo = b.build();
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    let mut flows = Vec::new();
    let offered = BitRate::from_gbps(gbps).scale(0.9);
    for (i, &s) in srcs.iter().enumerate() {
        let id = FlowId(i as u64);
        sim.add_flow(FlowSpec {
            id,
            src: s,
            dst,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: Some(offered),
        });
        flows.push(id);
    }
    (sim, flows, sw, sw_port_to_dst)
}

/// Mean goodput (bits/s) of `flow` over [t0, t1] from delivered bytes.
fn goodput_over(
    trace: &Trace,
    flow: FlowId,
    delivered_at_t0: u64,
    window: SimDuration,
) -> f64 {
    (trace.delivered_bytes(flow) - delivered_at_t0) as f64 * 8.0 / window.as_secs_f64()
}

#[test]
fn two_flows_split_bottleneck_fairly() {
    let (mut sim, flows, _, _) = dumbbell(2, 40);
    // Warm-up past the cold-start transient: after an initial MD slam the
    // auto-tuner infers a large N from the small F and climbs cautiously,
    // so N=2 converges in ~6 ms (cf. Fig. 8's few-ms convergence).
    sim.run_until(SimTime::from_millis(8));
    let base: Vec<u64> = flows
        .iter()
        .map(|f| sim.trace.delivered_bytes(*f))
        .collect();
    let w = SimDuration::from_millis(8);
    sim.run_until(SimTime::from_millis(16));
    for (i, f) in flows.iter().enumerate() {
        let g = goodput_over(&sim.trace, *f, base[i], w);
        let ideal = 20e9 * (1000.0 / 1048.0); // payload share of wire rate
        let err = (g - ideal).abs() / ideal;
        assert!(
            err < 0.12,
            "flow {i}: goodput {:.2} Gb/s vs ideal {:.2} Gb/s",
            g / 1e9,
            ideal / 1e9
        );
    }
    assert_eq!(sim.trace.drops, 0);
}

#[test]
fn ten_flows_split_bottleneck_fairly() {
    let (mut sim, flows, _, _) = dumbbell(10, 40);
    sim.run_until(SimTime::from_millis(4));
    let base: Vec<u64> = flows
        .iter()
        .map(|f| sim.trace.delivered_bytes(*f))
        .collect();
    let w = SimDuration::from_millis(4);
    sim.run_until(SimTime::from_millis(8));
    let ideal = 4e9 * (1000.0 / 1048.0);
    for (i, f) in flows.iter().enumerate() {
        let g = goodput_over(&sim.trace, *f, base[i], w);
        let err = (g - ideal).abs() / ideal;
        assert!(
            err < 0.15,
            "flow {i}: {:.2} Gb/s vs ideal {:.2} Gb/s",
            g / 1e9,
            ideal / 1e9
        );
    }
}

#[test]
fn queue_stabilizes_near_qref() {
    let (mut sim, _, sw, port) = dumbbell(10, 40);
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_queue(sw, port);
    sim.run_until(SimTime::from_millis(10));
    // After convergence (last 5 ms), queue must hover near Qref = 150 KB.
    let samples: Vec<f64> = sim.trace.queue_series[0]
        .iter()
        .filter(|s| s.t >= SimTime::from_millis(5))
        .map(|s| s.v)
        .collect();
    assert!(!samples.is_empty());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    assert!(
        (mean - 150_000.0).abs() < 60_000.0,
        "queue mean {mean:.0} B far from Qref 150 KB"
    );
    // Stability: standard deviation bounded.
    let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    assert!(
        var.sqrt() < 80_000.0,
        "queue too noisy: sd {:.0} B around {mean:.0}",
        var.sqrt()
    );
}

#[test]
fn link_stays_highly_utilized() {
    let (mut sim, _, sw, port) = dumbbell(10, 40);
    sim.run_until(SimTime::from_millis(4));
    let (_, tx0) = sim.switch(sw).snapshot(port);
    sim.run_until(SimTime::from_millis(8));
    let (_, tx1) = sim.switch(sw).snapshot(port);
    let util = (tx1 - tx0) as f64 * 8.0 / 4e-3 / 40e9;
    assert!(util > 0.9, "bottleneck utilization {util:.3} below 90%");
}

#[test]
fn no_pfc_once_converged() {
    // RoCC's claim: stable queues make PFC rare — after convergence the
    // queue sits at Qref, far under the 500 KB PFC threshold.
    let (mut sim, _, _, _) = dumbbell(10, 40);
    sim.run_until(SimTime::from_millis(4));
    let pfc_before = sim.trace.pfc_events.len();
    sim.run_until(SimTime::from_millis(12));
    let pfc_after = sim.trace.pfc_events.len();
    assert_eq!(
        pfc_before, pfc_after,
        "PFC fired after convergence ({pfc_before} -> {pfc_after})"
    );
}

#[test]
fn multi_bottleneck_flow_takes_most_congested_rate() {
    // Fig. 10 topology, miniature: D0 crosses two CPs (S0→S1 inter-switch
    // 40G shared with D1..D4, S1→B0 10G shared with D5). Expected: D0 and
    // D5 split the 10G egress (5 Gb/s each); D1..D4 share what remains of
    // the 40 G trunk (8.75 Gb/s each).
    let mut b = TopologyBuilder::new();
    let s0 = b.add_switch("s0", NodeRole::EdgeSwitch);
    let s1 = b.add_switch("s1", NodeRole::EdgeSwitch);
    b.connect(s0, s1, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let a0 = b.add_host("a0");
    b.connect(a0, s0, BitRate::from_gbps(10), SimDuration::from_micros(1));
    let b5 = b.add_host("b5");
    b.connect(b5, s1, BitRate::from_gbps(10), SimDuration::from_micros(1));
    let b0 = b.add_host("b0");
    b.connect(b0, s1, BitRate::from_gbps(10), SimDuration::from_micros(1));
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for i in 1..=4 {
        let ai = b.add_host(format!("a{i}"));
        b.connect(ai, s0, BitRate::from_gbps(10), SimDuration::from_micros(1));
        let bi = b.add_host(format!("b{i}"));
        b.connect(bi, s1, BitRate::from_gbps(10), SimDuration::from_micros(1));
        senders.push(ai);
        receivers.push(bi);
    }
    let topo = b.build();
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    let offered = Some(BitRate::from_gbps(10).scale(0.9));
    // D0: a0 → b0 (two CPs), D5: b5 → b0... wait b5 and b0 both on s1.
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: a0,
        dst: b0,
        size: u64::MAX,
        start: SimTime::ZERO,
        offered,
    });
    sim.add_flow(FlowSpec {
        id: FlowId(5),
        src: b5,
        dst: b0,
        size: u64::MAX,
        start: SimTime::ZERO,
        offered,
    });
    for (i, (&s, &d)) in senders.iter().zip(&receivers).enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(1 + i as u64),
            src: s,
            dst: d,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered,
        });
    }
    // 10G access links run the testbed profile (T = 100 µs), so allow a
    // longer convergence runway before measuring.
    sim.run_until(SimTime::from_millis(20));
    let base: Vec<u64> = (0..6)
        .map(|i| sim.trace.delivered_bytes(FlowId(i)))
        .collect();
    let w = SimDuration::from_millis(12);
    sim.run_until(SimTime::from_millis(32));
    let good: Vec<f64> = (0..6)
        .map(|i| goodput_over(&sim.trace, FlowId(i as u64), base[i], w) / 1e9)
        .collect();
    let eff = 1000.0 / 1048.0;
    // D0 and D5 each ≈ 5 Gb/s.
    for i in [0usize, 5] {
        let ideal = 5.0 * eff;
        assert!(
            (good[i] - ideal).abs() / ideal < 0.2,
            "D{i} got {:.2} Gb/s, expected ≈{ideal:.2}",
            good[i]
        );
    }
    // D1..D4 each ≈ 8.75 Gb/s — capped by their 10G access links at 9 Gb/s
    // offered; fair share of the 35 G remaining trunk is 8.75.
    for (i, g) in good.iter().enumerate().take(5).skip(1) {
        let ideal = 8.75 * eff;
        assert!(
            (g - ideal).abs() / ideal < 0.2,
            "D{i} got {g:.2} Gb/s, expected ≈{ideal:.2}"
        );
    }
}

#[test]
fn host_computed_mode_matches_switch_computed() {
    // §3.6: moving the rate computation to the host must preserve the
    // equilibrium — fair split and queue at Qref.
    use rocc_core::HostCalcRoccFactory;
    let run = |host_mode: bool| -> (Vec<f64>, f64) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch("sw", NodeRole::Switch);
        let dst = b.add_host("dst");
        let (port, _) = b.connect(sw, dst, BitRate::from_gbps(40), SimDuration::from_micros(1));
        let mut srcs = Vec::new();
        for i in 0..4 {
            let h = b.add_host(format!("s{i}"));
            b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
            srcs.push(h);
        }
        let (hf, sf): (
            Box<dyn rocc_sim::cc::HostCcFactory>,
            Box<dyn rocc_sim::cc::SwitchCcFactory>,
        ) = if host_mode {
            (
                Box::new(HostCalcRoccFactory::default()),
                Box::new(RoccSwitchCcFactory::new().host_computed()),
            )
        } else {
            (
                Box::new(RoccHostCcFactory::new()),
                Box::new(RoccSwitchCcFactory::new()),
            )
        };
        let mut sim = Sim::new(b.build(), SimConfig::default(), hf, sf);
        sim.trace.sample_period = Some(SimDuration::from_micros(100));
        sim.trace.watch_queue(sw, port);
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: u64::MAX,
                start: SimTime::ZERO,
                offered: Some(BitRate::from_gbps(36)),
            });
        }
        sim.run_until(SimTime::from_millis(8));
        let base: Vec<u64> = (0..4)
            .map(|i| sim.trace.delivered_bytes(FlowId(i as u64)))
            .collect();
        sim.run_until(SimTime::from_millis(16));
        let rates: Vec<f64> = (0..4)
            .map(|i| {
                (sim.trace.delivered_bytes(FlowId(i as u64)) - base[i]) as f64 * 8.0 / 8e-3
            })
            .collect();
        let tail: Vec<f64> = sim.trace.queue_series[0]
            .iter()
            .filter(|s| s.t >= SimTime::from_millis(8))
            .map(|s| s.v)
            .collect();
        let qmean = tail.iter().sum::<f64>() / tail.len() as f64;
        (rates, qmean)
    };
    let (switch_rates, switch_q) = run(false);
    let (host_rates, host_q) = run(true);
    let ideal = 10e9 * (1000.0 / 1048.0);
    for (i, (s, h)) in switch_rates.iter().zip(&host_rates).enumerate() {
        assert!(
            (s - ideal).abs() / ideal < 0.1,
            "switch mode flow {i}: {:.2} Gb/s",
            s / 1e9
        );
        assert!(
            (h - ideal).abs() / ideal < 0.1,
            "host mode flow {i}: {:.2} Gb/s",
            h / 1e9
        );
    }
    // Both modes hold the queue near Qref.
    assert!(
        (switch_q - 150_000.0).abs() < 50_000.0,
        "switch-mode queue {switch_q:.0}"
    );
    assert!(
        (host_q - 150_000.0).abs() < 75_000.0,
        "host-mode queue {host_q:.0} (coarser: replicas only hear while flows are queued)"
    );
}
