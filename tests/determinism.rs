//! Reproducibility: identical seeds yield bit-identical results across the
//! whole stack — topology, workload generation, simulation, statistics.

use rocc::experiments::fct::{run_fat_tree, BufferRegime, FatTreeConfig, Workload};
use rocc::experiments::Scheme;
use rocc::sim::prelude::SimDuration;
use rocc::workloads::{FlowSizeDist, PoissonWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> FatTreeConfig {
    FatTreeConfig {
        hosts_per_edge: 3,
        trunks: 1,
        window: SimDuration::from_millis(1),
        max_drain: SimDuration::from_millis(400),
        reps: 1,
    }
}

#[test]
fn fat_tree_run_is_deterministic() {
    let run = |seed| {
        let out = run_fat_tree(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.6,
            &tiny(),
            BufferRegime::Pfc,
            seed,
        );
        let mut fcts = out.fcts.clone();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (fcts, out.pfc_core, out.offered_flows)
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn different_seeds_differ() {
    let flows = |seed| {
        run_fat_tree(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.6,
            &tiny(),
            BufferRegime::Pfc,
            seed,
        )
        .offered_flows
    };
    // Poisson arrivals with different seeds virtually never coincide.
    assert_ne!(flows(1), flows(2));
}

#[test]
fn workload_generation_is_deterministic() {
    let gen = || {
        let wl = PoissonWorkload {
            dist: FlowSizeDist::web_search(),
            load: 0.7,
            link_bps: 40_000_000_000,
            duration_ns: 10_000_000,
        };
        let mut rng = StdRng::seed_from_u64(77);
        let mut out = Vec::new();
        wl.generate(&mut rng, 4, 4, true, &mut out);
        out
    };
    assert_eq!(gen(), gen());
}

#[test]
fn dcqcn_with_probabilistic_marking_is_still_deterministic() {
    // RED marking uses the run RNG — seeded, so runs replay exactly.
    let run = || {
        let out = run_fat_tree(
            Scheme::Dcqcn,
            Workload::FbHadoop,
            0.6,
            &tiny(),
            BufferRegime::Pfc,
            13,
        );
        let mut fcts = out.fcts.clone();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        fcts
    };
    assert_eq!(run(), run());
}
