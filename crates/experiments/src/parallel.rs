//! Deterministic fan-out of independent simulation cells.
//!
//! Large-scale sweeps decompose into a grid of fully independent
//! `(scheme, seed)` cells — each cell builds its own [`rocc_sim`]
//! instance from its own seed, so cells share no mutable state and can
//! run on any thread in any order. Determinism is preserved because the
//! parallel map collects results **by input index** (the vendored rayon
//! stand-in guarantees this, as does real rayon's `collect` on an
//! indexed iterator): the aggregation stage sees results in exactly the
//! order the serial loop would have produced, so every downstream
//! statistic is bit-identical. `tests/determinism.rs` pins this.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The captured payload of a cell that panicked under [`run_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// The panic message (downcast from `&str`/`String` payloads; a fixed
    /// placeholder for exotic payload types).
    pub message: String,
}

/// Run `f`, converting a panic into a typed [`CellPanic`] instead of
/// letting it unwind into the fan-out machinery. This matters because the
/// vendored rayon stand-in propagates a worker panic out of
/// `std::thread::scope`, which would turn one poisoned cell into a
/// whole-campaign abort.
pub fn run_isolated<R>(f: impl FnOnce() -> R) -> Result<R, CellPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        CellPanic { message }
    })
}

/// How to execute a cell grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One cell after another on the calling thread.
    Serial,
    /// Fan out across threads (`RAYON_NUM_THREADS` to override the
    /// count); falls back to inline execution on single-core hosts.
    Parallel,
}

impl ExecMode {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "serial" => Some(ExecMode::Serial),
            "parallel" | "par" => Some(ExecMode::Parallel),
            _ => None,
        }
    }
}

/// The worker-thread count a [`map_cells`] call with `mode` over `cells`
/// items actually uses: 1 for serial, else the pool width capped at the
/// cell count (a 5-cell grid on a 32-core host runs on 5 threads, and a
/// single cell runs inline). This is what benchmark reports should record
/// — `std::thread::available_parallelism` alone over-reports whenever
/// `RAYON_NUM_THREADS` or the grid size is the binding constraint.
pub fn worker_threads(mode: ExecMode, cells: usize) -> usize {
    match mode {
        ExecMode::Serial => 1,
        ExecMode::Parallel => rayon::current_num_threads().min(cells.max(1)),
    }
}

/// Map `f` over `cells`, honouring `mode`. The output is always in input
/// order — callers may rely on `out[i] == f(cells[i])` positionally.
pub fn map_cells<T, R, F>(mode: ExecMode, cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    match mode {
        ExecMode::Serial => cells.into_iter().map(f).collect(),
        ExecMode::Parallel => cells.into_par_iter().map(f).collect(),
    }
}

/// [`map_cells`] with per-cell panic isolation: a panicking cell yields
/// `Err(CellPanic)` in its slot while every other cell still runs and
/// returns its result in input order.
pub fn map_cells_isolated<T, R, F>(
    mode: ExecMode,
    cells: Vec<T>,
    f: F,
) -> Vec<Result<R, CellPanic>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    map_cells(mode, cells, move |c| run_isolated(|| f(c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_preserve_input_order() {
        let cells: Vec<u32> = (0..64).collect();
        let serial = map_cells(ExecMode::Serial, cells.clone(), |c| c * 7 + 1);
        let parallel = map_cells(ExecMode::Parallel, cells, |c| c * 7 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 71);
    }

    #[test]
    fn isolation_captures_panics_without_killing_the_map() {
        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let cells: Vec<u32> = (0..8).collect();
            let out = map_cells_isolated(mode, cells, |c| {
                if c == 3 {
                    panic!("cell {c} poisoned");
                }
                c * 2
            });
            assert_eq!(out.len(), 8);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    assert_eq!(
                        r.as_ref().unwrap_err().message,
                        "cell 3 poisoned",
                        "mode {mode:?}"
                    );
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2, "mode {mode:?}");
                }
            }
        }
    }

    #[test]
    fn isolation_downcasts_string_payloads() {
        let e = run_isolated(|| -> u32 { panic!("{}", format!("dynamic {}", 42)) });
        assert_eq!(e.unwrap_err().message, "dynamic 42");
    }

    #[test]
    fn worker_threads_caps_at_cell_count() {
        assert_eq!(worker_threads(ExecMode::Serial, 64), 1);
        // Parallel: never more threads than cells, at least one.
        assert_eq!(worker_threads(ExecMode::Parallel, 1), 1);
        assert_eq!(worker_threads(ExecMode::Parallel, 0), 1);
        let w = worker_threads(ExecMode::Parallel, 4);
        assert!((1..=4).contains(&w));
    }

    #[test]
    fn parse_modes() {
        assert_eq!(ExecMode::parse("serial"), Some(ExecMode::Serial));
        assert_eq!(ExecMode::parse("par"), Some(ExecMode::Parallel));
        assert_eq!(ExecMode::parse("gpu"), None);
    }
}
