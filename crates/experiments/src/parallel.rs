//! Deterministic fan-out of independent simulation cells.
//!
//! Large-scale sweeps decompose into a grid of fully independent
//! `(scheme, seed)` cells — each cell builds its own [`rocc_sim`]
//! instance from its own seed, so cells share no mutable state and can
//! run on any thread in any order. Determinism is preserved because the
//! parallel map collects results **by input index** (the vendored rayon
//! stand-in guarantees this, as does real rayon's `collect` on an
//! indexed iterator): the aggregation stage sees results in exactly the
//! order the serial loop would have produced, so every downstream
//! statistic is bit-identical. `tests/determinism.rs` pins this.

use rayon::prelude::*;

/// How to execute a cell grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One cell after another on the calling thread.
    Serial,
    /// Fan out across threads (`RAYON_NUM_THREADS` to override the
    /// count); falls back to inline execution on single-core hosts.
    Parallel,
}

impl ExecMode {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "serial" => Some(ExecMode::Serial),
            "parallel" | "par" => Some(ExecMode::Parallel),
            _ => None,
        }
    }
}

/// Map `f` over `cells`, honouring `mode`. The output is always in input
/// order — callers may rely on `out[i] == f(cells[i])` positionally.
pub fn map_cells<T, R, F>(mode: ExecMode, cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    match mode {
        ExecMode::Serial => cells.into_iter().map(f).collect(),
        ExecMode::Parallel => cells.into_par_iter().map(f).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_preserve_input_order() {
        let cells: Vec<u32> = (0..64).collect();
        let serial = map_cells(ExecMode::Serial, cells.clone(), |c| c * 7 + 1);
        let parallel = map_cells(ExecMode::Parallel, cells, |c| c * 7 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 71);
    }

    #[test]
    fn parse_modes() {
        assert_eq!(ExecMode::parse("serial"), Some(ExecMode::Serial));
        assert_eq!(ExecMode::parse("par"), Some(ExecMode::Parallel));
        assert_eq!(ExecMode::parse("gpu"), None);
    }
}
