//! The RoCC congestion point wired into the simulator: fair-rate calculator
//! + flow table + feedback generator (paper Fig. 2).
//!
//! Every update interval T the CP recomputes the fair rate from the egress
//! queue depth and — while the port is congested (F < Fmax) — sends one CNP
//! carrying the rate to the source of every flow the flow table tracks.

use crate::cp::FairRateCalculator;
use crate::flow_table::{FlowEntry, FlowTable, FlowTablePolicy};
use crate::params::CpParams;
use rocc_sim::cc::{CtrlEmit, PacketMeta, SwitchCc, SwitchCcCtx, SwitchCcFactory};
use rocc_sim::prelude::{BitRate, CpId, IntHop, PacketKind, SimDuration};
use rocc_sim::telemetry::{CcEvent, EventMask};
use rand::Rng;

/// Where the fair-rate computation runs (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpMode {
    /// The switch computes F and CNPs carry the rate (the default).
    #[default]
    SwitchComputed,
    /// The switch only ships queue reports (Qcur + Fmax); each host
    /// replicates Alg. 1 locally. Pair with
    /// [`crate::host_calc::HostCalcRoccFactory`] at the sources.
    HostComputed,
}

/// RoCC's per-egress-port congestion point.
pub struct RoccSwitchCc {
    calc: FairRateCalculator,
    table: Box<dyn FlowTable + Send>,
    cp: CpId,
    mode: CpMode,
    scratch: Vec<FlowEntry>,
}

impl RoccSwitchCc {
    /// Build a CP with the given parameters and flow-table policy.
    pub fn new(cp: CpId, params: CpParams, policy: FlowTablePolicy) -> Self {
        Self::with_mode(cp, params, policy, CpMode::SwitchComputed)
    }

    /// Build a CP selecting where the rate computation runs (§3.6).
    pub fn with_mode(
        cp: CpId,
        params: CpParams,
        policy: FlowTablePolicy,
        mode: CpMode,
    ) -> Self {
        RoccSwitchCc {
            calc: FairRateCalculator::new(params),
            table: policy.build(),
            cp,
            mode,
            scratch: Vec::new(),
        }
    }

    /// Current fair rate (diagnostics).
    pub fn fair_rate(&self) -> BitRate {
        self.calc.fair_rate()
    }
}

impl SwitchCc for RoccSwitchCc {
    fn timer_period(&self) -> Option<SimDuration> {
        Some(self.calc.params().update_interval)
    }

    fn on_timer(&mut self, ctx: &mut SwitchCcCtx<'_>) {
        if self.mode == CpMode::HostComputed {
            // §3.6: no arithmetic at the switch — ship the raw queue depth
            // to every tracked flow; hosts replicate Alg. 1. The flow table
            // (flows currently queued) is also the congestion gate.
            let p = self.calc.params();
            let q_cur_units = (ctx.qlen_bytes / p.delta_q).min(u32::MAX as u64) as u32;
            let f_max_units = p.f_max;
            self.scratch.clear();
            self.table.recipients(ctx.now, &mut self.scratch);
            for e in &self.scratch {
                ctx.emits.push(CtrlEmit {
                    flow: e.flow,
                    to: e.src,
                    kind: PacketKind::RoccQueueReport {
                        q_cur_units,
                        f_max_units,
                        cp: self.cp,
                    },
                });
            }
            return;
        }
        let (units, kind) = self.calc.update(ctx.qlen_bytes);
        if ctx.wants(EventMask::CP_DECISION) {
            // The decision fires every tick, congested or not — the PI
            // branch raising F back toward Fmax is as diagnostic as MD.
            let lu = self
                .calc
                .last_update()
                .expect("update() was just called");
            ctx.events.push(CcEvent::CpDecision {
                kind: kind.into(),
                fair_rate_units: units,
                alpha: lu.alpha,
                beta: lu.beta,
                region: lu.region,
                qlen_bytes: ctx.qlen_bytes,
            });
        }
        if !self.calc.is_congested() {
            return; // uncongested ports stay silent (§3.4: feedback goes
                    // only to flows causing congestion)
        }
        self.scratch.clear();
        self.table.recipients(ctx.now, &mut self.scratch);
        for e in &self.scratch {
            ctx.emits.push(CtrlEmit {
                flow: e.flow,
                to: e.src,
                kind: PacketKind::RoccCnp {
                    fair_rate_units: units,
                    cp: self.cp,
                },
            });
        }
    }

    fn on_enqueue(&mut self, ctx: &mut SwitchCcCtx<'_>, pkt: PacketMeta) -> bool {
        let r: f64 = ctx.rng.gen();
        self.table.on_enqueue(ctx.now, pkt.flow, pkt.src, r);
        false // RoCC does not mark ECN
    }

    fn on_dequeue(&mut self, ctx: &mut SwitchCcCtx<'_>, pkt: PacketMeta) -> Option<IntHop> {
        self.table.on_dequeue(ctx.now, pkt.flow);
        None // RoCC does not stamp INT
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        // Fixed-width calculator words first so restore can split without
        // a length prefix; the flow table self-describes its length.
        self.calc.snapshot_state(out);
        self.table.snapshot_state(out);
    }

    fn restore_state(&mut self, state: &[u64]) {
        let n = FairRateCalculator::STATE_WORDS;
        if state.len() < n {
            return;
        }
        self.calc.restore_state(&state[..n]);
        self.table.restore_state(&state[n..]);
    }
}

/// Factory installing [`RoccSwitchCc`] on every switch egress port, with
/// parameters derived from each port's line rate (paper §6 profiles) unless
/// overridden.
pub struct RoccSwitchCcFactory {
    /// Parameter override; when `None`, [`CpParams::for_link_rate`] applies.
    pub params_override: Option<CpParams>,
    /// Flow-table policy (paper default: in-queue).
    pub policy: FlowTablePolicy,
    /// Where the rate computation runs (§3.6).
    pub mode: CpMode,
}

impl Default for RoccSwitchCcFactory {
    fn default() -> Self {
        RoccSwitchCcFactory {
            params_override: None,
            policy: FlowTablePolicy::InQueue,
            mode: CpMode::SwitchComputed,
        }
    }
}

impl RoccSwitchCcFactory {
    /// Paper-default factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the CP parameters on every port.
    pub fn with_params(mut self, p: CpParams) -> Self {
        self.params_override = Some(p);
        self
    }

    /// Select a flow-table policy.
    pub fn with_policy(mut self, policy: FlowTablePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select host-side rate computation (§3.6). This also switches the
    /// flow table to the bounded age-evicted policy: host replicas need a
    /// continuous report stream (including through empty-queue intervals,
    /// which is when Alg. 1 *raises* F) — the in-queue table would starve
    /// them exactly then, leaving replicas frozen at stale low rates.
    pub fn host_computed(mut self) -> Self {
        self.mode = CpMode::HostComputed;
        self.policy = FlowTablePolicy::BoundedAge {
            capacity: 1024,
            idle_timeout_ns: 1_000_000, // keep reporting 1 ms past last packet
        };
        self
    }
}

impl SwitchCcFactory for RoccSwitchCcFactory {
    fn make(&self, cp: CpId, link_rate: BitRate) -> Box<dyn SwitchCc> {
        let params = self
            .params_override
            .unwrap_or_else(|| CpParams::for_link_rate(link_rate));
        Box::new(RoccSwitchCc::with_mode(cp, params, self.policy, self.mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rocc_sim::prelude::{FlowId, NodeId, PortId, SimTime};

    fn cp() -> CpId {
        CpId {
            node: NodeId(5),
            port: PortId(2),
        }
    }

    fn ctx<'a>(rng: &'a mut rand::rngs::StdRng, qlen: u64) -> SwitchCcCtx<'a> {
        SwitchCcCtx {
            now: SimTime::from_micros(40),
            cp: cp(),
            qlen_bytes: qlen,
            link_rate: BitRate::from_gbps(40),
            tx_bytes: 0,
            rng,
            emits: Vec::new(),
            events: Vec::new(),
            event_mask: EventMask::ALL,
        }
    }

    #[test]
    fn silent_when_uncongested() {
        let mut cc = RoccSwitchCc::new(cp(), CpParams::for_40g(), FlowTablePolicy::InQueue);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut c = ctx(&mut rng, 0);
        let meta = PacketMeta {
            flow: FlowId(1),
            src: NodeId(0),
            wire_bytes: 1048,
        };
        cc.on_enqueue(&mut c, meta);
        cc.on_timer(&mut c);
        assert!(c.emits.is_empty(), "no CNPs while F = Fmax");
    }

    #[test]
    fn emits_cnp_per_queued_flow_when_congested() {
        let mut cc = RoccSwitchCc::new(cp(), CpParams::for_40g(), FlowTablePolicy::InQueue);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut c = ctx(&mut rng, 0);
        for i in 0..3 {
            let meta = PacketMeta {
                flow: FlowId(i),
                src: NodeId(10 + i as usize),
                wire_bytes: 1048,
            };
            cc.on_enqueue(&mut c, meta);
        }
        // Deep queue drives MD → F = Fmin → congested.
        let mut c = ctx(&mut rng, 400_000);
        cc.on_timer(&mut c);
        assert_eq!(c.emits.len(), 3);
        for e in &c.emits {
            match e.kind {
                PacketKind::RoccCnp {
                    fair_rate_units,
                    cp: got,
                } => {
                    assert_eq!(fair_rate_units, 10); // Fmin after MD
                    assert_eq!(got, cp());
                }
                _ => panic!("expected RoccCnp, got {:?}", e.kind),
            }
        }
        // Feedback targets the flow sources.
        let dsts: Vec<_> = c.emits.iter().map(|e| e.to).collect();
        assert_eq!(dsts, vec![NodeId(10), NodeId(11), NodeId(12)]);
    }

    #[test]
    fn dequeue_removes_flow_from_default_table() {
        let mut cc = RoccSwitchCc::new(cp(), CpParams::for_40g(), FlowTablePolicy::InQueue);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut c = ctx(&mut rng, 0);
        let meta = PacketMeta {
            flow: FlowId(1),
            src: NodeId(9),
            wire_bytes: 1048,
        };
        cc.on_enqueue(&mut c, meta);
        cc.on_dequeue(&mut c, meta);
        let mut c = ctx(&mut rng, 400_000);
        cc.on_timer(&mut c);
        assert!(c.emits.is_empty(), "flow left the queue; no CNP");
    }

    #[test]
    fn factory_selects_params_by_link_rate() {
        let f = RoccSwitchCcFactory::new();
        // 100G port gets the 100G profile (T identical; probe via timer).
        let cc100 = f.make(cp(), BitRate::from_gbps(100));
        assert_eq!(cc100.timer_period(), Some(SimDuration::from_micros(40)));
        let cc10 = f.make(cp(), BitRate::from_gbps(10));
        assert_eq!(cc10.timer_period(), Some(SimDuration::from_micros(100)));
    }
}
