//! The run observatory: a periodic time-series sampler over the quantities
//! the paper plots — egress queue depth, CP fair rate with its auto-tune
//! region, per-flow RP rate and goodput, and cumulative PFC pause time.
//!
//! The observatory rides the engine's existing `Sample` tick (it schedules
//! no events of its own) and is fed through the same one-branch gating
//! pattern as [`crate::telemetry::Telemetry`]: every emission site tests a
//! single bitmask and constructs nothing while the observatory is disabled.
//! It performs pure reads — no RNG, event-queue, or CC-state access — so a
//! run with the observatory on is bit-identical to the same seed with it
//! off (pinned by the `observer_effect` integration test).
//!
//! Output is one JSONL document ([`Observatory::to_jsonl`]); each line is
//! one [`MetricRow`]. Rows appear in emission order, which is deterministic
//! (sample ticks are totally ordered and per-tick iteration uses `BTreeMap`
//! ordering).

use crate::packet::{CpId, FlowId};
use crate::telemetry::{EventMask, SimEvent};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, PortId};
use std::collections::BTreeMap;

/// Latest CP controller state, updated on every `CpDecision` event and
/// re-emitted at each sample tick so the fair-rate series is uniformly
/// spaced even when the controller holds steady.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CpState {
    fair_rate_units: u32,
    region: u32,
    alpha: f64,
    beta: f64,
}

/// One time-series sample. Serialized as one JSONL line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricRow {
    /// Egress data-queue depth of a watched queue.
    Queue {
        /// Sample time.
        t: SimTime,
        /// The switch.
        node: NodeId,
        /// The egress port.
        port: PortId,
        /// Queue depth in bytes.
        bytes: u64,
    },
    /// CP fair-rate controller state (latest Alg. 1 outcome).
    Cp {
        /// Sample time.
        t: SimTime,
        /// The congestion point.
        cp: CpId,
        /// Fair rate in multiples of ΔF.
        fair_rate_units: u32,
        /// Auto-tune region index (0..=5).
        region: u32,
        /// Proportional gain in force.
        alpha: f64,
        /// Integral gain in force.
        beta: f64,
    },
    /// Per-flow sender rate and receiver goodput.
    Flow {
        /// Sample time.
        t: SimTime,
        /// The flow.
        flow: FlowId,
        /// RP rate-limiter value at the sender, bits/s (0 when the flow is
        /// not installed or already finished).
        rp_bps: u64,
        /// Receiver-side goodput over the last sample period, bits/s.
        goodput_bps: u64,
    },
    /// Cumulative PFC pause time across all ports, including pauses still
    /// open at the sample instant.
    Pfc {
        /// Sample time.
        t: SimTime,
        /// Total paused port-time so far, nanoseconds.
        cum_pause_ns: u64,
    },
}

impl MetricRow {
    /// Serialize as one JSON object (one JSONL line).
    pub fn to_json(&self) -> String {
        match *self {
            MetricRow::Queue { t, node, port, bytes } => format!(
                "{{\"t_ns\":{},\"type\":\"queue\",\"node\":{},\"port\":{},\"bytes\":{}}}",
                t.as_nanos(),
                node.0,
                port.0,
                bytes
            ),
            MetricRow::Cp {
                t,
                cp,
                fair_rate_units,
                region,
                alpha,
                beta,
            } => format!(
                "{{\"t_ns\":{},\"type\":\"cp\",\"node\":{},\"port\":{},\"fair_rate_units\":{},\"region\":{},\"alpha\":{},\"beta\":{}}}",
                t.as_nanos(),
                cp.node.0,
                cp.port.0,
                fair_rate_units,
                region,
                fin(alpha),
                fin(beta)
            ),
            MetricRow::Flow {
                t,
                flow,
                rp_bps,
                goodput_bps,
            } => format!(
                "{{\"t_ns\":{},\"type\":\"flow\",\"flow\":{},\"rp_bps\":{},\"goodput_bps\":{}}}",
                t.as_nanos(),
                flow.0,
                rp_bps,
                goodput_bps
            ),
            MetricRow::Pfc { t, cum_pause_ns } => format!(
                "{{\"t_ns\":{},\"type\":\"pfc\",\"cum_pause_ns\":{}}}",
                t.as_nanos(),
                cum_pause_ns
            ),
        }
    }
}

fn fin(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// The observatory sink, embedded in [`crate::trace::Trace`]. Disabled by
/// default; [`Observatory::enable`] turns it on. While enabled it consumes
/// PFC and CP-decision events (via [`crate::trace::Trace::publish_event`])
/// and is fed queue/flow samples by the engine's sample tick.
#[derive(Debug, Default)]
pub struct Observatory {
    enabled: bool,
    rows: Vec<MetricRow>,
    /// Latest controller state per CP, re-emitted each tick. `BTreeMap`
    /// because per-tick iteration order reaches the output.
    cp_state: BTreeMap<CpId, CpState>,
    /// Open PFC pause intervals by (switch, ingress port).
    pause_open: BTreeMap<(NodeId, PortId), SimTime>,
    /// Closed-interval pause time accumulated so far.
    cum_pause: SimDuration,
}

impl Observatory {
    /// New, disabled observatory.
    pub fn new() -> Self {
        Observatory::default()
    }

    /// Turn sampling on. The engine only emits rows while a
    /// [`crate::trace::Trace::sample_period`] is also set.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is the observatory collecting?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Event classes the observatory consumes: the one-branch gate unions
    /// this into [`crate::trace::Trace::wants`].
    pub fn wants_mask(&self) -> EventMask {
        if self.enabled {
            EventMask::PFC | EventMask::CP_DECISION
        } else {
            EventMask::NONE
        }
    }

    /// CC classes the observatory needs buffered by CC callbacks.
    pub fn cc_mask(&self) -> EventMask {
        if self.enabled {
            EventMask::CP_DECISION
        } else {
            EventMask::NONE
        }
    }

    /// Consume one published event (no-op unless enabled and interesting).
    pub fn observe(&mut self, ev: &SimEvent) {
        if !self.enabled {
            return;
        }
        match *ev {
            SimEvent::CpDecision {
                cp,
                fair_rate_units,
                alpha,
                beta,
                region,
                ..
            } => {
                self.cp_state.insert(
                    cp,
                    CpState {
                        fair_rate_units,
                        region,
                        alpha,
                        beta,
                    },
                );
            }
            SimEvent::Pfc {
                t,
                node,
                port,
                pause,
            } => {
                if pause {
                    self.pause_open.entry((node, port)).or_insert(t);
                } else if let Some(start) = self.pause_open.remove(&(node, port)) {
                    self.cum_pause += t.saturating_since(start);
                }
            }
            _ => {}
        }
    }

    /// Record a queue-depth sample (engine, on the sample tick).
    pub fn note_queue_sample(&mut self, t: SimTime, node: NodeId, port: PortId, bytes: u64) {
        if self.enabled {
            self.rows.push(MetricRow::Queue {
                t,
                node,
                port,
                bytes,
            });
        }
    }

    /// Record a per-flow sample (engine, on the sample tick).
    pub fn note_flow_sample(&mut self, t: SimTime, flow: FlowId, rp_bps: u64, goodput_bps: u64) {
        if self.enabled {
            self.rows.push(MetricRow::Flow {
                t,
                flow,
                rp_bps,
                goodput_bps,
            });
        }
    }

    /// Close one sample tick: emit the latest CP state for every known CP
    /// and the cumulative PFC pause time (open pauses counted up to `t`).
    pub fn sample_tick(&mut self, t: SimTime) {
        if !self.enabled {
            return;
        }
        for (&cp, s) in &self.cp_state {
            self.rows.push(MetricRow::Cp {
                t,
                cp,
                fair_rate_units: s.fair_rate_units,
                region: s.region,
                alpha: s.alpha,
                beta: s.beta,
            });
        }
        let mut open = SimDuration::ZERO;
        for &start in self.pause_open.values() {
            open += t.saturating_since(start);
        }
        self.rows.push(MetricRow::Pfc {
            t,
            cum_pause_ns: (self.cum_pause + open).as_nanos(),
        });
    }

    /// All rows collected so far, in emission order.
    pub fn rows(&self) -> &[MetricRow] {
        &self.rows
    }

    /// Cumulative closed-interval PFC pause time.
    pub fn cum_pause(&self) -> SimDuration {
        self.cum_pause
    }

    /// The whole time series as a JSONL document (one row per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 64);
        for r in &self.rows {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Serialize the observatory's dynamic state: collected rows, latest
    /// CP state, open pause intervals, and accumulated pause time. The
    /// `enabled` flag is configuration and is recorded only so restore can
    /// verify the rebuilt run matches.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.bool(self.enabled);
        w.usize(self.rows.len());
        for row in &self.rows {
            write_row(w, row);
        }
        w.usize(self.cp_state.len());
        for (cp, s) in &self.cp_state {
            crate::snapshot::write_cp(w, *cp);
            w.u32(s.fair_rate_units);
            w.u32(s.region);
            w.f64(s.alpha);
            w.f64(s.beta);
        }
        w.usize(self.pause_open.len());
        for (&(node, port), &start) in &self.pause_open {
            w.usize(node.0);
            w.usize(port.0);
            w.u64(start.as_nanos());
        }
        w.u64(self.cum_pause.as_nanos());
    }

    /// Overwrite the observatory's dynamic state from an
    /// [`Observatory::save_state`] stream.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let enabled = r.bool()?;
        if enabled != self.enabled {
            return Err(SnapshotError::Malformed("observatory enable flag differs"));
        }
        let nr = r.len()?;
        self.rows.clear();
        for _ in 0..nr {
            self.rows.push(read_row(r)?);
        }
        let nc = r.len()?;
        self.cp_state.clear();
        for _ in 0..nc {
            let cp = crate::snapshot::read_cp(r)?;
            self.cp_state.insert(
                cp,
                CpState {
                    fair_rate_units: r.u32()?,
                    region: r.u32()?,
                    alpha: r.f64()?,
                    beta: r.f64()?,
                },
            );
        }
        let np = r.len()?;
        self.pause_open.clear();
        for _ in 0..np {
            let node = NodeId(r.usize()?);
            let port = PortId(r.usize()?);
            let start = SimTime::from_nanos(r.u64()?);
            self.pause_open.insert((node, port), start);
        }
        self.cum_pause = SimDuration::from_nanos(r.u64()?);
        Ok(())
    }
}

fn write_row(w: &mut crate::snapshot::SnapWriter, row: &MetricRow) {
    match *row {
        MetricRow::Queue {
            t,
            node,
            port,
            bytes,
        } => {
            w.u8(0);
            w.u64(t.as_nanos());
            w.usize(node.0);
            w.usize(port.0);
            w.u64(bytes);
        }
        MetricRow::Cp {
            t,
            cp,
            fair_rate_units,
            region,
            alpha,
            beta,
        } => {
            w.u8(1);
            w.u64(t.as_nanos());
            crate::snapshot::write_cp(w, cp);
            w.u32(fair_rate_units);
            w.u32(region);
            w.f64(alpha);
            w.f64(beta);
        }
        MetricRow::Flow {
            t,
            flow,
            rp_bps,
            goodput_bps,
        } => {
            w.u8(2);
            w.u64(t.as_nanos());
            w.u64(flow.0);
            w.u64(rp_bps);
            w.u64(goodput_bps);
        }
        MetricRow::Pfc { t, cum_pause_ns } => {
            w.u8(3);
            w.u64(t.as_nanos());
            w.u64(cum_pause_ns);
        }
    }
}

fn read_row(
    r: &mut crate::snapshot::SnapReader<'_>,
) -> Result<MetricRow, crate::snapshot::SnapshotError> {
    Ok(match r.u8()? {
        0 => MetricRow::Queue {
            t: SimTime::from_nanos(r.u64()?),
            node: NodeId(r.usize()?),
            port: PortId(r.usize()?),
            bytes: r.u64()?,
        },
        1 => MetricRow::Cp {
            t: SimTime::from_nanos(r.u64()?),
            cp: crate::snapshot::read_cp(r)?,
            fair_rate_units: r.u32()?,
            region: r.u32()?,
            alpha: r.f64()?,
            beta: r.f64()?,
        },
        2 => MetricRow::Flow {
            t: SimTime::from_nanos(r.u64()?),
            flow: FlowId(r.u64()?),
            rp_bps: r.u64()?,
            goodput_bps: r.u64()?,
        },
        3 => MetricRow::Pfc {
            t: SimTime::from_nanos(r.u64()?),
            cum_pause_ns: r.u64()?,
        },
        _ => return Err(crate::snapshot::SnapshotError::Malformed("metric row tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(n: usize, p: usize) -> CpId {
        CpId {
            node: NodeId(n),
            port: PortId(p),
        }
    }

    #[test]
    fn disabled_observatory_collects_nothing() {
        let mut o = Observatory::new();
        assert!(o.wants_mask().is_empty());
        o.note_queue_sample(SimTime::ZERO, NodeId(0), PortId(0), 100);
        o.sample_tick(SimTime::ZERO);
        assert!(o.rows().is_empty());
        assert!(o.to_jsonl().is_empty());
    }

    #[test]
    fn cp_state_reemitted_each_tick() {
        let mut o = Observatory::new();
        o.enable();
        o.observe(&SimEvent::CpDecision {
            t: SimTime::from_micros(1),
            cp: cp(3, 1),
            kind: crate::telemetry::CpDecisionKind::Pi,
            fair_rate_units: 500,
            alpha: 0.3,
            beta: 1.5,
            region: 2,
            qlen_bytes: 1000,
        });
        o.sample_tick(SimTime::from_micros(10));
        o.sample_tick(SimTime::from_micros(20));
        let cps: Vec<_> = o
            .rows()
            .iter()
            .filter(|r| matches!(r, MetricRow::Cp { .. }))
            .collect();
        assert_eq!(cps.len(), 2, "CP state must re-emit on every tick");
        let jsonl = o.to_jsonl();
        assert!(jsonl.contains("\"type\":\"cp\""));
        assert!(jsonl.contains("\"fair_rate_units\":500"));
        assert!(jsonl.contains("\"region\":2"));
    }

    #[test]
    fn pfc_pause_accumulates_including_open_intervals() {
        let mut o = Observatory::new();
        o.enable();
        let pfc = |t, pause| SimEvent::Pfc {
            t: SimTime::from_micros(t),
            node: NodeId(1),
            port: PortId(0),
            pause,
        };
        o.observe(&pfc(10, true));
        o.observe(&pfc(15, false)); // 5 µs closed
        o.observe(&pfc(20, true)); // open at tick time
        o.sample_tick(SimTime::from_micros(22));
        let MetricRow::Pfc { cum_pause_ns, .. } = o.rows().last().copied().unwrap() else {
            panic!("last row must be the PFC cumulative sample");
        };
        assert_eq!(cum_pause_ns, 7_000); // 5 closed + 2 open
        assert_eq!(o.cum_pause(), SimDuration::from_micros(5));
    }

    #[test]
    fn row_json_shapes() {
        let r = MetricRow::Queue {
            t: SimTime::from_micros(3),
            node: NodeId(2),
            port: PortId(1),
            bytes: 4096,
        };
        assert_eq!(
            r.to_json(),
            "{\"t_ns\":3000,\"type\":\"queue\",\"node\":2,\"port\":1,\"bytes\":4096}"
        );
        let r = MetricRow::Flow {
            t: SimTime::ZERO,
            flow: FlowId(7),
            rp_bps: 1_000_000,
            goodput_bps: 900_000,
        };
        assert!(r.to_json().contains("\"type\":\"flow\""));
        assert!(r.to_json().contains("\"rp_bps\":1000000"));
    }
}
