//! # rocc-core — RoCC: Robust Congestion Control for RDMA
//!
//! The reference implementation of the RoCC scheme (Taheri et al.,
//! CoNEXT '20), pluggable into the `rocc-sim` packet-level simulator.
//!
//! RoCC is *switch-driven*: the congestion point (a switch egress port)
//! computes the max-min fair rate with a self-tuning PI controller on the
//! queue depth and sends it straight to flow sources in prioritized ICMP
//! CNPs; the reaction point (a per-flow rate limiter at the host) follows
//! the most congested CP on the flow's path and recovers exponentially
//! when feedback stops.
//!
//! Components (paper §3):
//!
//! * [`cp::FairRateCalculator`] — Alg. 1: multiplicative decrease, PI
//!   update, six-level gain auto-tuning; fixed-point datapath ([`fixed`]).
//! * [`flow_table`] — who gets CNPs: in-queue (default), bounded+age,
//!   sampling (ElephantTrap-style).
//! * [`cnp`] — the ICMP type-253 wire format with checksum.
//! * [`switch_cc::RoccSwitchCc`] — the CP wired to the simulator.
//! * [`rp::RoccHostCc`] — Alg. 2: CNP arbitration + fast recovery.
//! * [`params`] — the paper's published constants for 10/40/100 Gb/s.
//!
//! ## Quickstart
//!
//! ```
//! use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
//! use rocc_sim::prelude::*;
//!
//! // Two 40G senders, one 40G bottleneck — RoCC splits it 50/50.
//! let mut b = TopologyBuilder::new();
//! let sw = b.add_switch("sw", NodeRole::Switch);
//! let dst = b.add_host("dst");
//! b.connect(dst, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
//! let mut srcs = vec![];
//! for i in 0..2 {
//!     let h = b.add_host(format!("src{i}"));
//!     b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
//!     srcs.push(h);
//! }
//! let mut sim = Sim::new(
//!     b.build(),
//!     SimConfig::default(),
//!     Box::new(RoccHostCcFactory::new()),
//!     Box::new(RoccSwitchCcFactory::new()),
//! );
//! for (i, &s) in srcs.iter().enumerate() {
//!     sim.add_flow(FlowSpec {
//!         id: FlowId(i as u64),
//!         src: s,
//!         dst,
//!         size: u64::MAX,
//!         start: SimTime::ZERO,
//!         offered: Some(BitRate::from_gbps(36)),
//!     });
//! }
//! sim.run_until(SimTime::from_millis(5));
//! ```

#![warn(missing_docs)]

pub mod cnp;
pub mod cp;
pub mod fixed;
pub mod flow_table;
pub mod host_calc;
pub mod params;
pub mod rp;
pub mod switch_cc;

/// The workspace's shared FNV-1a-64 digest helper (snapshot trailers,
/// observatory manifests, golden fingerprints, divergence-observatory
/// component digests all use it). The implementation lives in the
/// dependency-root `rocc-stats` crate so `rocc-sim` can reach it too;
/// this re-export is its canonical public home.
pub use rocc_stats::digest;

pub use cnp::{Cnp, QueueReport};
pub use cp::{FairRateCalculator, UpdateKind};
pub use flow_table::{FlowTable, FlowTablePolicy};
pub use params::{CpParams, RpParams, DELTA_F, DELTA_Q};
pub use rp::{RoccHostCc, RoccHostCcFactory};
pub use host_calc::{HostCalcRoccCc, HostCalcRoccFactory};
pub use switch_cc::{CpMode, RoccSwitchCc, RoccSwitchCcFactory};
