//! TIMELY (Mittal et al., SIGCOMM '15) — RTT-gradient congestion control,
//! the delay-based baseline in the RoCC comparison.
//!
//! The sender measures per-segment RTTs (hardware-timestamped ACKs in the
//! original; echoed send timestamps here), keeps an EWMA of the RTT
//! *gradient*, and:
//!
//! * below `t_low` — additively increases (RTT noise ignored),
//! * above `t_high` — multiplicatively decreases proportional to how far
//!   RTT exceeds the ceiling,
//! * otherwise — increases additively on a non-positive gradient
//!   (hyperactively after several consecutive ones) and decreases
//!   multiplicatively on a positive gradient.
//!
//! Updates are applied once per completed segment (`seg_bytes`), as in the
//! original's per-burst operation. Thresholds default to values scaled for
//! this simulator's microsecond-scale fabric RTTs.

use rocc_sim::cc::{AckEvent, HostCc, HostCcCtx, RateDecision};
use rocc_sim::prelude::{BitRate, FlowId, SimDuration};

/// TIMELY parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelyParams {
    /// EWMA weight for the RTT-difference filter (paper: α = 0.875 retain).
    pub ewma_alpha: f64,
    /// Multiplicative-decrease factor β.
    pub beta: f64,
    /// Additive increase step δ.
    pub delta: BitRate,
    /// RTT floor: below this, always increase.
    pub t_low: SimDuration,
    /// RTT ceiling: above this, always decrease.
    pub t_high: SimDuration,
    /// Minimum network RTT used to normalize the gradient.
    pub min_rtt: SimDuration,
    /// Consecutive non-positive gradients before hyper-increase.
    pub hai_threshold: u32,
    /// Segment size per CC update.
    pub seg_bytes: u64,
    /// Rate floor.
    pub r_min: BitRate,
    /// Use the "patched TIMELY" update of Zhu et al. (CoNEXT '16): in the
    /// mid band, steer on the *absolute* RTT against a target instead of
    /// the gradient. The patch gives the loop a unique fixed point (the
    /// original's gradient null-cline leaves the standing queue
    /// undetermined), at the cost of needing a calibrated target.
    pub patched: bool,
    /// RTT target for the patched update (used when `patched`).
    pub t_target: SimDuration,
}

impl Default for TimelyParams {
    fn default() -> Self {
        TimelyParams {
            ewma_alpha: 0.3,
            beta: 0.8,
            delta: BitRate::from_mbps(50),
            t_low: SimDuration::from_micros(20),
            t_high: SimDuration::from_micros(200),
            min_rtt: SimDuration::from_micros(20),
            hai_threshold: 5,
            seg_bytes: 8_000,
            r_min: BitRate::from_mbps(500),
            patched: false,
            t_target: SimDuration::from_micros(60),
        }
    }
}

impl TimelyParams {
    /// The patched variant with defaults.
    pub fn patched() -> Self {
        TimelyParams {
            patched: true,
            ..Default::default()
        }
    }
}

/// TIMELY's per-flow rate computation.
pub struct TimelyHostCc {
    p: TimelyParams,
    r_max: BitRate,
    rate: BitRate,
    prev_rtt: Option<SimDuration>,
    /// EWMA of consecutive RTT differences (ns).
    rtt_diff_ns: f64,
    neg_gradient_streak: u32,
    bytes_since_update: u64,
}

impl TimelyHostCc {
    /// New flow at line rate (TIMELY starts at line rate).
    pub fn new(p: TimelyParams, r_max: BitRate) -> Self {
        TimelyHostCc {
            p,
            r_max,
            rate: r_max,
            prev_rtt: None,
            rtt_diff_ns: 0.0,
            neg_gradient_streak: 0,
            bytes_since_update: 0,
        }
    }

    /// Current rate (tests).
    pub fn rate(&self) -> BitRate {
        self.rate
    }

    /// Apply one TIMELY update for a completed segment with RTT `rtt`.
    fn update(&mut self, rtt: SimDuration) {
        let new_rtt_ns = rtt.as_nanos() as f64;
        let prev = self.prev_rtt.replace(rtt);
        let diff = match prev {
            Some(p) => new_rtt_ns - p.as_nanos() as f64,
            None => 0.0,
        };
        let a = self.p.ewma_alpha;
        self.rtt_diff_ns = (1.0 - a) * self.rtt_diff_ns + a * diff;
        let norm_gradient = self.rtt_diff_ns / self.p.min_rtt.as_nanos() as f64;

        if rtt < self.p.t_low {
            self.rate = (self.rate + self.p.delta).min(self.r_max);
            return;
        }
        if rtt > self.p.t_high {
            let f = 1.0 - self.p.beta * (1.0 - self.p.t_high.as_nanos() as f64 / new_rtt_ns);
            self.rate = self.rate.scale(f).max(self.p.r_min);
            self.neg_gradient_streak = 0;
            return;
        }
        if self.p.patched {
            // Patched TIMELY: absolute-RTT control toward t_target.
            let t = self.p.t_target.as_nanos() as f64;
            if new_rtt_ns <= t {
                self.rate = (self.rate + self.p.delta).min(self.r_max);
            } else {
                let f = 1.0 - self.p.beta * ((new_rtt_ns - t) / new_rtt_ns).min(1.0);
                self.rate = self.rate.scale(f).max(self.p.r_min);
            }
            return;
        }
        if norm_gradient <= 0.0 {
            self.neg_gradient_streak += 1;
            let n = if self.neg_gradient_streak >= self.p.hai_threshold {
                5
            } else {
                1
            };
            self.rate = (self.rate + BitRate::from_bps(self.p.delta.as_bps() * n)).min(self.r_max);
        } else {
            self.neg_gradient_streak = 0;
            let f = 1.0 - self.p.beta * norm_gradient.min(1.0);
            self.rate = self.rate.scale(f).max(self.p.r_min);
        }
    }
}

impl HostCc for TimelyHostCc {
    fn decision(&self) -> RateDecision {
        RateDecision::line_rate(self.rate.min(self.r_max))
    }

    fn on_ack(&mut self, _ctx: &mut HostCcCtx, ack: AckEvent) {
        self.bytes_since_update += ack.newly_acked;
        if self.bytes_since_update >= self.p.seg_bytes {
            self.bytes_since_update = 0;
            self.update(ack.rtt);
        }
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.rate.as_bps());
        match self.prev_rtt {
            None => out.extend_from_slice(&[0, 0]),
            Some(rtt) => out.extend_from_slice(&[1, rtt.as_nanos()]),
        }
        out.push(self.rtt_diff_ns.to_bits());
        out.push(self.neg_gradient_streak as u64);
        out.push(self.bytes_since_update);
    }

    fn restore_state(&mut self, state: &[u64]) {
        let [rate, has_rtt, rtt_ns, rtt_diff, streak, bytes] = state else {
            return; // digest-verified upstream; short input is a no-op
        };
        self.rate = BitRate::from_bps(*rate);
        self.prev_rtt = (*has_rtt != 0).then(|| SimDuration::from_nanos(*rtt_ns));
        self.rtt_diff_ns = f64::from_bits(*rtt_diff);
        self.neg_gradient_streak = *streak as u32;
        self.bytes_since_update = *bytes;
    }
}

/// Factory for [`TimelyHostCc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelyHostCcFactory {
    /// Parameter override.
    pub params: Option<TimelyParams>,
}

impl rocc_sim::cc::HostCcFactory for TimelyHostCcFactory {
    fn make(&self, _flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        Box::new(TimelyHostCc::new(
            self.params.unwrap_or_default(),
            link_rate,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> TimelyHostCc {
        TimelyHostCc::new(TimelyParams::default(), BitRate::from_gbps(40))
    }

    #[test]
    fn low_rtt_always_increases() {
        let mut c = cc();
        c.rate = BitRate::from_gbps(10);
        c.update(SimDuration::from_micros(10)); // < t_low
        assert_eq!(c.rate(), BitRate::from_gbps(10) + TimelyParams::default().delta);
    }

    #[test]
    fn high_rtt_always_decreases() {
        let mut c = cc();
        c.update(SimDuration::from_micros(400)); // > t_high
        assert!(c.rate() < BitRate::from_gbps(40));
    }

    #[test]
    fn positive_gradient_decreases() {
        let mut c = cc();
        c.update(SimDuration::from_micros(50));
        // Strongly rising RTT inside [t_low, t_high].
        c.update(SimDuration::from_micros(100));
        c.update(SimDuration::from_micros(150));
        assert!(c.rate() < BitRate::from_gbps(40));
    }

    #[test]
    fn flat_gradient_increases() {
        let mut c = cc();
        c.rate = BitRate::from_gbps(5);
        for _ in 0..3 {
            c.update(SimDuration::from_micros(50)); // flat, mid-band
        }
        assert!(c.rate() > BitRate::from_gbps(5));
    }

    #[test]
    fn hyper_increase_after_streak() {
        let p = TimelyParams::default();
        let mut c = cc();
        c.rate = BitRate::from_gbps(1);
        // Prime the streak.
        for _ in 0..p.hai_threshold {
            c.update(SimDuration::from_micros(50));
        }
        let before = c.rate();
        c.update(SimDuration::from_micros(50));
        let step = c.rate() - before;
        assert_eq!(step.as_bps(), p.delta.as_bps() * 5, "HAI = 5δ");
    }

    #[test]
    fn floor_and_ceiling_respected() {
        let p = TimelyParams::default();
        let mut c = cc();
        for _ in 0..200 {
            c.update(SimDuration::from_micros(1000));
        }
        assert!(c.rate() >= p.r_min);
        let mut c = cc();
        for _ in 0..200 {
            c.update(SimDuration::from_micros(1));
        }
        assert!(c.rate() <= BitRate::from_gbps(40));
    }

    #[test]
    fn updates_gated_by_segment_size() {
        let mut c = cc();
        c.rate = BitRate::from_gbps(10);
        let mut ctx = HostCcCtx {
            now: rocc_sim::prelude::SimTime::ZERO,
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: rocc_sim::telemetry::EventMask::NONE,
        };
        let ack = |n| AckEvent {
            newly_acked: n,
            cum_seq: 0,
            rtt: SimDuration::from_micros(10),
            ecn_echo: false,
            int: rocc_sim::packet::IntStack::new(),
        };
        c.on_ack(&mut ctx, ack(1000));
        assert_eq!(c.rate(), BitRate::from_gbps(10), "below segment: no update");
        c.on_ack(&mut ctx, ack(15_000));
        assert!(c.rate() > BitRate::from_gbps(10), "segment complete: update");
    }
}

#[cfg(test)]
mod patched_tests {
    use super::*;

    fn cc() -> TimelyHostCc {
        TimelyHostCc::new(TimelyParams::patched(), BitRate::from_gbps(40))
    }

    #[test]
    fn patched_increases_below_target() {
        let mut c = cc();
        c.rate = BitRate::from_gbps(5);
        c.update(SimDuration::from_micros(40)); // < t_target (60 µs)
        assert_eq!(c.rate(), BitRate::from_gbps(5) + TimelyParams::default().delta);
    }

    #[test]
    fn patched_decreases_above_target_proportionally() {
        let mut c = cc();
        c.update(SimDuration::from_micros(120)); // 2× target
        // f = 1 − 0.8·(60/120) = 0.6.
        assert_eq!(c.rate(), BitRate::from_gbps(40).scale(0.6));
    }

    #[test]
    fn patched_has_unique_fixed_point_at_target() {
        // Holding RTT exactly at the target neither grows nor shrinks more
        // than the additive step — the loop parks at the target, unlike
        // the gradient original whose standing queue is history-dependent.
        let mut c = cc();
        c.rate = BitRate::from_gbps(10);
        for _ in 0..8 {
            c.update(SimDuration::from_micros(60));
        }
        let drift = (c.rate().as_bps() as f64 - 10e9).abs();
        assert!(
            drift <= 9.0 * TimelyParams::default().delta.as_bps() as f64,
            "rate drifted {drift}"
        );
    }

    #[test]
    fn patched_ignores_gradient() {
        // A falling RTT trajectory that sits above target must still
        // decrease (the original would hyper-increase on the streak).
        let mut c = cc();
        for rtt in [150u64, 140, 130, 120] {
            c.update(SimDuration::from_micros(rtt));
        }
        assert!(c.rate() < BitRate::from_gbps(40));
    }
}
