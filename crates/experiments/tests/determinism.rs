//! Parallel-runner determinism: the rayon fan-out over `(scheme, seed)`
//! cells must be **byte-identical** to the serial loop — same per-bin
//! statistics, same pooled flow rates, same side observations — because
//! each cell is an isolated simulation and results aggregate in grid
//! order regardless of thread scheduling. Rendering both runs through
//! the canonical JSON writer and comparing strings pins every f64 bit.

use proptest::prelude::*;
use rocc_experiments::fct::{
    fct_grid, run_fat_tree, BufferRegime, FatTreeConfig, Workload,
};
use rocc_experiments::parallel::{map_cells, ExecMode};
use rocc_experiments::Scheme;
use rocc_sim::prelude::*;

/// Miniature fat-tree config: big enough to exercise real contention,
/// small enough that 3 schemes × 5 reps × 2 modes stays test-sized.
fn tiny(reps: usize) -> FatTreeConfig {
    FatTreeConfig {
        hosts_per_edge: 3,
        trunks: 1,
        window: SimDuration::from_millis(1),
        max_drain: SimDuration::from_millis(400),
        reps,
    }
}

/// The headline guarantee: 3 schemes × 5 seeds, serial vs parallel,
/// byte-identical JSON.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let cfg = tiny(5);
    let serial = fct_grid(
        Workload::FbHadoop,
        0.5,
        &cfg,
        BufferRegime::Pfc,
        ExecMode::Serial,
    );
    let parallel = fct_grid(
        Workload::FbHadoop,
        0.5,
        &cfg,
        BufferRegime::Pfc,
        ExecMode::Parallel,
    );
    assert_eq!(serial.len(), 3);
    assert_eq!(parallel.len(), 3);
    for (s, p) in serial.iter().zip(&parallel) {
        let (sj, pj) = (s.to_json(), p.to_json());
        assert!(!sj.is_empty() && sj.starts_with('{'));
        assert_eq!(sj, pj, "scheme {} diverged between modes", s.scheme.name());
    }
}

/// Grid order: `fct_grid` must aggregate cell (si, rep) into row si no
/// matter which worker ran it. Rerunning one cell standalone must
/// reproduce what the grid saw (cells share no state).
#[test]
fn grid_cells_are_independent_and_order_stable() {
    let cfg = tiny(2);
    let rows = fct_grid(
        Workload::FbHadoop,
        0.5,
        &cfg,
        BufferRegime::Pfc,
        ExecMode::Parallel,
    );
    let expected: Vec<Scheme> = Scheme::large_scale_set().to_vec();
    let got: Vec<Scheme> = rows.iter().map(|r| r.scheme).collect();
    assert_eq!(got, expected, "rows must follow large_scale_set order");

    // Re-run one cell by hand (seed 1000 = rep 0) and cross-check a raw
    // observable against the aggregated row.
    let lone = run_fat_tree(
        Scheme::Rocc,
        Workload::FbHadoop,
        0.5,
        &cfg,
        BufferRegime::Pfc,
        1000,
    );
    let rocc_row = rows.iter().find(|r| r.scheme == Scheme::Rocc).unwrap();
    let row_count: usize = rocc_row.bins.iter().map(|b| b.count).sum();
    assert!(
        row_count >= lone.fcts.len(),
        "aggregate ({row_count}) must include rep-0 flows ({})",
        lone.fcts.len()
    );
    assert!(lone.all_completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any thread count (including oversubscribed ones) yields the same
    /// index-ordered results as the serial map — the property the whole
    /// sweep determinism rests on, checked at the map_cells layer where
    /// it is cheap enough to sample many shapes.
    #[test]
    fn map_cells_order_stable_for_any_shape(
        n in 0usize..200,
        mul in 1u64..1000,
    ) {
        let cells: Vec<u64> = (0..n as u64).collect();
        let f = |c: u64| c.wrapping_mul(mul) ^ (c << 7);
        let serial = map_cells(ExecMode::Serial, cells.clone(), f);
        let par = map_cells(ExecMode::Parallel, cells, f);
        prop_assert_eq!(serial, par);
    }

    /// Seeded single-cell runs are reproducible: the same (seed) cell run
    /// twice gives identical FCT vectors. (This is what lets the grid
    /// fan out without recording anything but the seed.)
    #[test]
    fn single_cell_is_seed_reproducible(seed in 0u64..3) {
        let cfg = tiny(1);
        let a = run_fat_tree(
            Scheme::Rocc, Workload::FbHadoop, 0.4, &cfg,
            BufferRegime::Pfc, 1000 + seed,
        );
        let b = run_fat_tree(
            Scheme::Rocc, Workload::FbHadoop, 0.4, &cfg,
            BufferRegime::Pfc, 1000 + seed,
        );
        prop_assert_eq!(a.fcts, b.fcts);
        prop_assert_eq!(a.pfc_core, b.pfc_core);
        prop_assert_eq!(a.tx_data_bytes, b.tx_data_bytes);
    }
}
