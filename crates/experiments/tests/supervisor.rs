//! Campaign-supervisor integration over *real* simulations: panic and
//! livelock isolation inside one campaign, and crash-resumable sweeps —
//! a campaign killed after `k` completed cells and resumed from its
//! checkpoint journal must reproduce the uninterrupted aggregate byte
//! for byte, across faulted seeds.

use proptest::prelude::*;
use rocc_experiments::observatory;
use rocc_experiments::parallel::ExecMode;
use rocc_experiments::supervisor::{
    scratch_path, CellSnapshot, FnCodec, NoCache, RetryPolicy, SnapshotStore,
    Supervisor,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use rocc_experiments::{micro, scenarios, Scale, Scheme};
use rocc_sim::prelude::*;

/// A tiny 2-sender dumbbell run with per-seed CNP loss. Cheap enough to
/// run dozens of times under proptest; the fault layer makes the outcome
/// seed-dependent, which is exactly what the resume test must survive.
fn faulted_cell(seed: u64) -> Result<u64, SimError> {
    let d = scenarios::dumbbell(2, BitRate::from_gbps(40));
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default().with_loss(FaultTarget::Cnp, 0.01),
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size: 50_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
    if let Some(e) = verdict.err() {
        return Err(e.clone());
    }
    // Completion count plus total FCT nanoseconds: any scheduling drift
    // between the original and resumed campaigns shows up here.
    let fct_ns: u64 = sim.trace.fcts.iter().map(|r| r.fct().as_nanos()).sum();
    Ok(sim.trace.fcts.len() as u64 * 1_000_000_000_000 + fct_ns)
}

/// A run that can never finish a flow or advance time: the zero-period
/// sampler reschedules itself at the same instant forever, so only the
/// livelock budget can end the run — with `SimError::Stalled`.
fn livelocked_cell() -> Result<u64, SimError> {
    let d = scenarios::dumbbell(2, BitRate::from_gbps(40));
    let cfg = SimConfig {
        budget: RunBudget {
            max_events: None,
            stall_events: Some(10_000),
            wall_clock_ms: None,
        },
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.trace.sample_period = Some(SimDuration::ZERO);
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: d.senders[0],
        dst: d.receiver,
        size: 50_000,
        start: SimTime::ZERO,
        offered: None,
    });
    let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
    match verdict.err() {
        Some(e) => Err(e.clone()),
        None => Ok(0),
    }
}

/// The ISSUE's acceptance scenario: a campaign holding two healthy sim
/// cells, one panicking cell, and one genuinely livelocked cell must
/// complete with partial results, a quarantine entry per failure, and a
/// structured failure report — never tear down the whole sweep.
#[test]
fn campaign_isolates_panicking_and_livelocked_cells() {
    let cells: Vec<(String, u32)> = vec![
        ("itest/healthy/seed1".into(), 0),
        ("itest/healthy/seed2".into(), 1),
        ("itest/panic".into(), 2),
        ("itest/livelock".into(), 3),
    ];
    let sup = Supervisor::new(ExecMode::Parallel).with_retry(RetryPolicy {
        max_attempts: 2,
        backoff_base_ms: 0,
    });
    let campaign = sup.run(cells, &NoCache, |&kind| match kind {
        0 => faulted_cell(1),
        1 => faulted_cell(2),
        2 => panic!("injected cell panic"),
        _ => livelocked_cell(),
    });
    assert!(!campaign.all_ok());
    let report = campaign.report();
    assert_eq!((report.total, report.ok), (4, 2));
    assert_eq!(report.panicked, 1);
    assert_eq!(report.budget_exhausted, 1);
    assert_eq!(report.skipped, 0);

    // Structured failure report: both failures named, panic retried to
    // the cap, livelock detail carries the typed stalled verdict.
    let json = report.to_json();
    assert!(json.contains("\"key\":\"itest/panic\""));
    assert!(json.contains("injected cell panic"));
    assert!(json.contains("\"verdict\":\"stalled\""));
    let panic_failure = report
        .failures
        .iter()
        .find(|f| f.key == "itest/panic")
        .expect("panic cell quarantined");
    assert_eq!((panic_failure.class, panic_failure.attempts), ("panicked", 2));
    let quarantine = report.quarantine_json();
    assert!(quarantine.contains("itest/panic") && quarantine.contains("itest/livelock"));

    // Partial results survive in input order.
    let results = campaign.into_results();
    assert!(results[0].is_some() && results[1].is_some());
    assert!(results[2].is_none() && results[3].is_none());
}

/// End-to-end resume through the real observatory sweep: a full campaign
/// whose journal is then truncated to one line (simulating a mid-run
/// kill, torn tail included) must resume to a byte-identical aggregate.
#[test]
fn observatory_sweep_resumes_byte_identically_after_kill() {
    let journal = scratch_path("sweep-resume-journal");
    let seeds = [observatory::GOLDEN_SEED, observatory::GOLDEN_SEED + 1];
    let sup = Supervisor::new(ExecMode::Serial).with_journal(&journal);
    let full = observatory::sweep("incast", Scale::Quick, &seeds, &sup)
        .expect("known scenario");
    assert!(full.report.all_ok());
    let reference = full.aggregate_json();

    // Kill after cell 1: keep the first journal line, add a torn tail.
    let doc = std::fs::read_to_string(&journal).unwrap();
    let first_line = doc.lines().next().unwrap();
    std::fs::write(&journal, format!("{first_line}\n{{\"key\":\"torn")).unwrap();

    let resumed = observatory::sweep("incast", Scale::Quick, &seeds, &sup)
        .expect("known scenario");
    assert_eq!(resumed.report.cached, 1, "first cell replays from journal");
    assert_eq!(resumed.aggregate_json(), reference);
    std::fs::remove_file(&journal).ok();
}

/// Build the [`faulted_cell`] sim without running it — the resumable
/// cell needs to rebuild identically before restoring a snapshot.
fn build_faulted(seed: u64) -> rocc_sim::prelude::Sim {
    let d = scenarios::dumbbell(2, BitRate::from_gbps(40));
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default().with_loss(FaultTarget::Cnp, 0.01),
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size: 50_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim
}

/// [`faulted_cell`] with sub-cell crash recovery, the same shape as the
/// observatory's resumable cells: restore from the journaled snapshot if
/// one exists (discard-and-rebuild on restore failure), keep
/// checkpointing, optionally crash partway through.
fn resumable_faulted_cell(
    seed: u64,
    snap: &CellSnapshot,
    die_at: Option<SimTime>,
    resumed_from: &AtomicU64,
) -> Result<u64, SimError> {
    let mut sim = build_faulted(seed);
    if let Some(bytes) = &snap.resume {
        if sim.restore(bytes).is_err() {
            sim = build_faulted(seed);
        }
    }
    resumed_from.store(sim.events_processed(), Ordering::SeqCst);
    sim.enable_auto_checkpoint(100, snap.sink());
    if let Some(t) = die_at {
        sim.run_until(t);
        panic!("injected mid-cell crash at {t:?}");
    }
    let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
    if let Some(e) = verdict.err() {
        return Err(e.clone());
    }
    let fct_ns: u64 = sim.trace.fcts.iter().map(|r| r.fct().as_nanos()).sum();
    Ok(sim.trace.fcts.len() as u64 * 1_000_000_000_000 + fct_ns)
}

/// Sub-cell crash recovery end to end: a cell that crashes mid-run is
/// retried, the retry resumes from the journaled engine snapshot instead
/// of event zero, the result matches the uninterrupted reference bit for
/// bit, and the spent snapshot is removed once the cell completes.
#[test]
fn crashed_cell_resumes_mid_run_from_journaled_snapshot() {
    let reference = faulted_cell(3).expect("reference cell completes");

    // Find the cell's midpoint so the crash lands with checkpoints taken.
    let mut probe = build_faulted(3);
    probe
        .run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();
    let t_mid = SimTime::from_nanos(probe.kernel.now.as_nanos() / 2);
    assert!(probe.events_processed() > 200, "cell too small to checkpoint");

    let store = SnapshotStore::new(scratch_path("resume-snapshots"));
    let attempts = AtomicUsize::new(0);
    let resumed_from = AtomicU64::new(0);
    let sup = Supervisor::new(ExecMode::Serial).with_retry(RetryPolicy {
        max_attempts: 2,
        backoff_base_ms: 0,
    });
    let campaign = sup.run_resumable(
        &store,
        vec![("resume/seed3".to_string(), 3u64)],
        &NoCache,
        |&seed, snap| {
            let first = attempts.fetch_add(1, Ordering::SeqCst) == 0;
            resumable_faulted_cell(
                seed,
                &snap,
                first.then_some(t_mid),
                &resumed_from,
            )
        },
    );
    assert!(campaign.all_ok(), "{:?}", campaign.report());
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "crash then resume");
    let resumed = resumed_from.load(Ordering::SeqCst);
    assert!(
        resumed > 0,
        "retry started from event 0 — snapshot not restored"
    );
    assert_eq!(campaign.into_results(), vec![Some(reference)]);
    assert!(
        !store.path_for("resume/seed3").exists(),
        "snapshot must be removed once the cell completes"
    );
}

/// A corrupt snapshot must cause a clean fresh restart of the cell —
/// never a quarantine entry, never a poisoned result.
#[test]
fn corrupt_snapshot_falls_back_to_fresh_cell_run() {
    let reference = faulted_cell(5).expect("reference cell completes");
    let store = SnapshotStore::new(scratch_path("corrupt-snapshots"));
    let key = "corrupt/seed5";
    // A torn/garbage checkpoint left by a crash mid-write.
    store.save(key, b"rocc-snapshot/v1 but trailing garbage");
    let resumed_from = AtomicU64::new(u64::MAX);
    let sup = Supervisor::new(ExecMode::Serial).with_retry(RetryPolicy::no_retry());
    let campaign = sup.run_resumable(
        &store,
        vec![(key.to_string(), 5u64)],
        &NoCache,
        |&seed, snap| {
            // The store's digest verification rejects the bytes outright.
            assert!(snap.resume.is_none(), "corrupt snapshot offered for resume");
            resumable_faulted_cell(seed, &snap, None, &resumed_from)
        },
    );
    assert!(campaign.all_ok(), "{:?}", campaign.report());
    let rep = campaign.report();
    assert!(rep.quarantine_json() == "[]", "corrupt snapshot quarantined a cell");
    assert_eq!(campaign.records[0].attempts, 1, "fresh run, first try");
    assert_eq!(resumed_from.load(Ordering::SeqCst), 0, "must start from event 0");
    assert_eq!(campaign.into_results(), vec![Some(reference)]);
}

/// A *stale* snapshot — structurally valid but from a different config
/// (here: another seed) — passes the container checks, fails the
/// engine's config-digest verification inside `restore`, and the cell
/// restarts fresh with the right answer.
#[test]
fn stale_snapshot_from_other_config_restarts_cell_fresh() {
    let reference = faulted_cell(6).expect("reference cell completes");
    let store = SnapshotStore::new(scratch_path("stale-snapshots"));
    let key = "stale/seed6";
    // A perfectly valid checkpoint... of a different run.
    let mut other = build_faulted(999);
    other.run_until(SimTime::from_micros(5));
    store.save(key, &other.snapshot());
    let resumed_from = AtomicU64::new(u64::MAX);
    let sup = Supervisor::new(ExecMode::Serial).with_retry(RetryPolicy::no_retry());
    let campaign = sup.run_resumable(
        &store,
        vec![(key.to_string(), 6u64)],
        &NoCache,
        |&seed, snap| {
            assert!(snap.resume.is_some(), "container checks should pass");
            resumable_faulted_cell(seed, &snap, None, &resumed_from)
        },
    );
    assert!(campaign.all_ok(), "{:?}", campaign.report());
    assert_eq!(resumed_from.load(Ordering::SeqCst), 0, "must rebuild fresh");
    assert_eq!(campaign.into_results(), vec![Some(reference)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill-and-resume fidelity across faulted seeds: for any base seed
    /// and any kill point `k`, a campaign resumed from the first `k`
    /// journal lines (optionally followed by a torn partial line) must
    /// rebuild the exact aggregate of the uninterrupted campaign.
    #[test]
    fn killed_campaign_resumes_byte_identically(
        base_seed in 0u64..64,
        k in 0usize..=4,
        torn in 0u32..2,
    ) {
        let torn_tail = torn == 1;
        let cells: Vec<(String, u64)> = (0..4u64)
            .map(|i| (format!("prop/seed{}", base_seed + i), base_seed + i))
            .collect();
        let codec = FnCodec(
            |v: &u64| v.to_string(),
            |s: &str| s.parse::<u64>().ok(),
        );
        let journal = scratch_path("prop-resume-journal");
        let sup = Supervisor::new(ExecMode::Serial).with_journal(&journal);

        let full = sup.run(cells.clone(), &codec, |&seed| faulted_cell(seed));
        prop_assert!(full.report().all_ok());
        let reference: Vec<Option<u64>> = full.into_results();

        let doc = std::fs::read_to_string(&journal).unwrap();
        let mut kept: String = doc
            .lines()
            .take(k)
            .map(|l| format!("{l}\n"))
            .collect();
        if torn_tail {
            // A write torn mid-line by the kill: must be skipped, not
            // trusted, and must not poison the resumed campaign.
            kept.push_str("{\"key\":\"prop/seed");
        }
        std::fs::write(&journal, kept).unwrap();

        let resumed = sup.run(cells, &codec, |&seed| faulted_cell(seed));
        prop_assert_eq!(resumed.report().cached, k);
        prop_assert_eq!(resumed.into_results(), reference);
        std::fs::remove_file(&journal).ok();
    }
}
