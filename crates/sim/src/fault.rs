//! Deterministic fault injection.
//!
//! The paper's title claim is *robustness*: RoCC's RP keeps working when
//! CNPs stop arriving and its prioritized control queue keeps feedback
//! flowing under extreme congestion. This module makes those failure modes
//! expressible in the simulator — seeded, fully deterministic, and disabled
//! by default ([`FaultPlan::default`] injects nothing and leaves every
//! existing result bit-identical).
//!
//! Three fault families:
//!
//! * **Probabilistic link faults** ([`LinkFault`]) — per-link (or fabric-wide)
//!   random packet loss and bit corruption, optionally restricted to a packet
//!   class ([`FaultTarget`], so CNP-only loss is expressible) and to a time
//!   window (so a total CNP blackout over an interval is expressible).
//! * **Scheduled link flaps** ([`LinkFlap`]) — a link goes down at one
//!   instant and comes back at another; everything in flight on it (both
//!   directions, PFC frames included) is destroyed, and endpoint PFC pause
//!   state is resynchronized on restore.
//! * **Scheduled host faults** ([`HostFault`]) — a host pauses (freezes,
//!   keeping state) or crashes (loses NIC/transport soft state) and later
//!   comes back.
//!
//! Faults draw from a *dedicated* PRNG seeded from the run seed with a fixed
//! salt, so enabling a fault plan never perturbs the kernel RNG streams that
//! drive jitter, ECN/QCN sampling, or workload generation — and fault
//! decisions themselves are reproducible for a fixed seed.
//!
//! Injected faults are counted in [`crate::trace::FaultCounters`], separate
//! from congestion drops.

use crate::packet::PacketKind;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt XORed into the run seed for the fault PRNG, keeping the fault
/// stream independent of the kernel RNG.
const FAULT_SEED_SALT: u64 = 0xFAE1_7A05_u64 ^ 0x9e37_79b9_7f4a_7c15;

/// Which packet class a probabilistic fault applies to. PFC frames are
/// never subject to probabilistic loss/corruption (losing a RESUME would
/// deadlock the fabric forever, which no real bit-error process does —
/// PAUSE state is refreshed continuously on real links); link-down events
/// do destroy PFC frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every non-PFC packet.
    All,
    /// Payload-bearing packets only.
    Data,
    /// All control-class packets (ACKs, NACKs, and congestion feedback).
    Control,
    /// Congestion feedback only — dedicated feedback packets (RoCC
    /// CNPs/queue reports, DCQCN CNPs, QCN Fb) *and* ACKs carrying an ECN
    /// echo, which is how DCQCN/TIMELY/HPCC notifications travel in this
    /// simulator. Plain ACKs and NACKs survive, so "the feedback channel
    /// is lossy but the transport is fine" is expressible for every
    /// scheme. Losing an echo-bearing ACK under this target strips the
    /// echo and delivers the ACK (in a real deployment the CNP is a
    /// separate packet from the ACK stream, so losing one must not lose
    /// the other).
    Cnp,
}

impl FaultTarget {
    /// Does this class selector match `kind`?
    pub fn matches(&self, kind: &PacketKind) -> bool {
        match self {
            FaultTarget::All => !kind.is_pfc(),
            FaultTarget::Data => matches!(kind, PacketKind::Data { .. }),
            FaultTarget::Control => kind.is_control(),
            FaultTarget::Cnp => matches!(
                kind,
                PacketKind::RoccCnp { .. }
                    | PacketKind::RoccQueueReport { .. }
                    | PacketKind::DcqcnCnp
                    | PacketKind::QcnFb { .. }
                    | PacketKind::Ack { ecn_echo: true, .. }
            ),
        }
    }
}

/// Random per-link loss / corruption specification.
#[derive(Debug, Clone, Copy)]
pub struct LinkFault {
    /// Affected link; `None` applies to every link in the fabric.
    pub link: Option<LinkId>,
    /// Packet class the fault applies to.
    pub target: FaultTarget,
    /// Probability an affected packet is silently lost in transit.
    pub loss_prob: f64,
    /// Probability an affected packet arrives corrupted (the receiver's FCS
    /// check fails: switches discard at ingress; hosts discard and, for
    /// data, nudge go-back-N via a NACK).
    pub corrupt_prob: f64,
    /// Probability an affected packet is duplicated in transit (both copies
    /// arrive; models retransmit-happy link layers and switch soft errors).
    /// Must stay below 0.5 or duplication outpaces delivery.
    pub dup_prob: f64,
    /// Probability an affected packet is delayed past its normal arrival
    /// (delivered out of order relative to later packets on the link).
    pub reorder_prob: f64,
    /// Maximum extra delay applied to a reordered packet; the actual delay
    /// is drawn uniformly from `(0, reorder_delay]`.
    pub reorder_delay: SimDuration,
    /// Active interval `[start, end)`; `None` covers the whole run.
    pub window: Option<(SimTime, SimTime)>,
}

impl LinkFault {
    fn active_at(&self, now: SimTime) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => now >= start && now < end,
        }
    }
}

/// A scheduled link flap: down at `down_at`, restored at `up_at`. Both
/// directions of the full-duplex link are affected.
#[derive(Debug, Clone, Copy)]
pub struct LinkFlap {
    /// The flapping link (either direction identifies the pair).
    pub link: LinkId,
    /// When the link goes down.
    pub down_at: SimTime,
    /// When the link comes back.
    pub up_at: SimTime,
}

/// What happens to a faulted host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFaultKind {
    /// The host freezes (maintenance stall): no TX/RX, state preserved.
    Pause,
    /// The host crashes: NIC and transport soft state (in-flight packet,
    /// queued control frames, pending timers, unacked transmit window) are
    /// lost; sender flows roll back to their cumulative ack and resume on
    /// restart.
    Crash,
}

/// A scheduled host pause or crash-restart.
#[derive(Debug, Clone, Copy)]
pub struct HostFault {
    /// The affected host.
    pub host: NodeId,
    /// When the fault strikes.
    pub at: SimTime,
    /// When the host comes back.
    pub restore_at: SimTime,
    /// Pause or crash.
    pub kind: HostFaultKind,
}

/// A complete, declarative fault schedule for one run. The default plan is
/// empty: no RNG draws, no scheduled events, bit-identical behaviour to a
/// simulator without the fault layer.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probabilistic per-link faults.
    pub link_faults: Vec<LinkFault>,
    /// Scheduled link down/up flaps.
    pub link_flaps: Vec<LinkFlap>,
    /// Scheduled host pauses / crash-restarts.
    pub host_faults: Vec<HostFault>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.link_flaps.is_empty() && self.host_faults.is_empty()
    }

    /// Add fabric-wide random loss for a packet class.
    pub fn with_loss(mut self, target: FaultTarget, prob: f64) -> Self {
        self.link_faults.push(LinkFault {
            link: None,
            target,
            loss_prob: prob,
            corrupt_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            window: None,
        });
        self
    }

    /// Add fabric-wide random loss for a packet class inside `[start, end)`.
    pub fn with_loss_window(
        mut self,
        target: FaultTarget,
        prob: f64,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.link_faults.push(LinkFault {
            link: None,
            target,
            loss_prob: prob,
            corrupt_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            window: Some((start, end)),
        });
        self
    }

    /// Add fabric-wide random corruption for a packet class.
    pub fn with_corruption(mut self, target: FaultTarget, prob: f64) -> Self {
        self.link_faults.push(LinkFault {
            link: None,
            target,
            loss_prob: 0.0,
            corrupt_prob: prob,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            window: None,
        });
        self
    }

    /// Add random loss on one specific link.
    pub fn with_link_loss(mut self, link: LinkId, target: FaultTarget, prob: f64) -> Self {
        self.link_faults.push(LinkFault {
            link: Some(link),
            target,
            loss_prob: prob,
            corrupt_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            window: None,
        });
        self
    }

    /// Add fabric-wide random duplication for a packet class. Both the
    /// original and the copy arrive (back to back), stressing receiver
    /// dedup and cumulative-ACK idempotence. `prob` must stay below 0.5 so
    /// duplication cannot outpace delivery.
    pub fn with_duplication(mut self, target: FaultTarget, prob: f64) -> Self {
        assert!(prob < 0.5, "duplication probability must stay below 0.5");
        self.link_faults.push(LinkFault {
            link: None,
            target,
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            dup_prob: prob,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            window: None,
        });
        self
    }

    /// Add fabric-wide random reordering for a packet class: an affected
    /// packet is held back by up to `max_delay` and delivered out of order
    /// relative to packets that left after it.
    pub fn with_reorder(mut self, target: FaultTarget, prob: f64, max_delay: SimDuration) -> Self {
        assert!(max_delay > SimDuration::ZERO, "reorder delay must be positive");
        self.link_faults.push(LinkFault {
            link: None,
            target,
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: prob,
            reorder_delay: max_delay,
            window: None,
        });
        self
    }

    /// Schedule a link flap.
    pub fn with_flap(mut self, link: LinkId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "flap must go down before it comes up");
        self.link_flaps.push(LinkFlap {
            link,
            down_at,
            up_at,
        });
        self
    }

    /// Schedule a host crash-restart.
    pub fn with_host_crash(mut self, host: NodeId, at: SimTime, restart_at: SimTime) -> Self {
        assert!(at < restart_at, "crash must precede restart");
        self.host_faults.push(HostFault {
            host,
            at,
            restore_at: restart_at,
            kind: HostFaultKind::Crash,
        });
        self
    }

    /// Schedule a host crash with **no** restart: the host is down for the
    /// rest of the run (`restore_at` is the [`SimTime::MAX`] sentinel, and
    /// no restore event is ever scheduled). Events addressed to such a host
    /// are abandoned by the engine instead of being re-queued forever — see
    /// [`crate::trace::FaultCounters::abandoned_events`].
    pub fn with_host_crash_forever(mut self, host: NodeId, at: SimTime) -> Self {
        self.host_faults.push(HostFault {
            host,
            at,
            restore_at: SimTime::MAX,
            kind: HostFaultKind::Crash,
        });
        self
    }

    /// Schedule a host pause (freeze without state loss).
    pub fn with_host_pause(mut self, host: NodeId, at: SimTime, resume_at: SimTime) -> Self {
        assert!(at < resume_at, "pause must precede resume");
        self.host_faults.push(HostFault {
            host,
            at,
            restore_at: resume_at,
            kind: HostFaultKind::Pause,
        });
        self
    }
}

/// A scheduled fault transition, dispatched through the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Both directions of the link go down.
    LinkDown(LinkId),
    /// Both directions of the link are restored.
    LinkUp(LinkId),
    /// The host freezes (state preserved).
    HostPause(NodeId),
    /// The host crashes (soft state lost).
    HostCrash(NodeId),
    /// A paused or crashed host comes back.
    HostRestore(NodeId),
}

/// Verdict for one packet delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Silently lost in transit. Carries the target class of the matching
    /// spec: under [`FaultTarget::Cnp`] the engine turns "lose" into
    /// "strip the ECN echo" for echo-bearing ACKs (the notification dies,
    /// the cumulative ACK does not), while every other class drops the
    /// whole frame.
    Lose(FaultTarget),
    /// Arrives corrupted (receiver FCS check fails).
    Corrupt,
    /// Arrives twice: the original is delivered normally and an identical
    /// copy arrives immediately after it.
    Duplicate,
    /// Arrives late by the carried extra delay, out of order relative to
    /// packets that left after it.
    Reorder(SimDuration),
}

/// Runtime fault state owned by the kernel: the plan, the dedicated fault
/// PRNG, and which links/hosts are currently down.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    link_down: Vec<bool>,
    host_down: Vec<bool>,
    /// Fast path: true iff the plan injects anything at all.
    active: bool,
}

impl FaultState {
    /// Build runtime state for `plan` over a fabric with `n_links` links and
    /// `n_nodes` nodes, seeding the dedicated fault PRNG from the run seed.
    pub fn new(plan: FaultPlan, seed: u64, n_links: usize, n_nodes: usize) -> Self {
        let active = !plan.is_empty();
        FaultState {
            plan,
            rng: StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            link_down: vec![false; n_links],
            host_down: vec![false; n_nodes],
            active,
        }
    }

    /// True iff the plan injects anything (cheap gate for the hot path).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The plan under execution.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault transitions the engine must schedule at startup.
    pub fn scheduled_events(&self) -> Vec<(SimTime, FaultEvent)> {
        let mut evs = Vec::new();
        for f in &self.plan.link_flaps {
            evs.push((f.down_at, FaultEvent::LinkDown(f.link)));
            evs.push((f.up_at, FaultEvent::LinkUp(f.link)));
        }
        for h in &self.plan.host_faults {
            let strike = match h.kind {
                HostFaultKind::Pause => FaultEvent::HostPause(h.host),
                HostFaultKind::Crash => FaultEvent::HostCrash(h.host),
            };
            evs.push((h.at, strike));
            // The MAX sentinel means "never restored": scheduling it would
            // park an undispatchable event in the heap and keep a quiesced
            // run from draining.
            if h.restore_at != SimTime::MAX {
                evs.push((h.restore_at, FaultEvent::HostRestore(h.host)));
            }
        }
        evs
    }

    /// Is this link currently down?
    pub fn link_is_down(&self, link: LinkId) -> bool {
        self.active && self.link_down[link.0]
    }

    /// Mark one direction of a link up/down (the engine calls this for both
    /// directions of the pair).
    pub fn set_link_down(&mut self, link: LinkId, down: bool) {
        self.link_down[link.0] = down;
    }

    /// Is this host currently paused or crashed?
    pub fn host_is_down(&self, node: NodeId) -> bool {
        self.active && self.host_down[node.0]
    }

    /// Will this host ever be restored after `now`? False for a host whose
    /// every scheduled restore is in the past or is the "never" sentinel
    /// ([`SimTime::MAX`]) — i.e. the host is known never to recover, so
    /// events addressed to it can be abandoned rather than re-queued.
    pub fn host_will_recover(&self, node: NodeId, now: SimTime) -> bool {
        self.plan
            .host_faults
            .iter()
            .any(|h| h.host == node && h.restore_at > now && h.restore_at != SimTime::MAX)
    }

    /// Mark a host up/down.
    pub fn set_host_down(&mut self, node: NodeId, down: bool) {
        self.host_down[node.0] = down;
    }

    /// Decide the fate of a packet of `kind` delivered over `link` at `now`.
    /// Draws from the fault PRNG only for fault specs that match, so plans
    /// that never match a packet never consume randomness for it.
    pub fn decide(&mut self, now: SimTime, link: LinkId, kind: &PacketKind) -> FaultDecision {
        if !self.active || kind.is_pfc() {
            return FaultDecision::Deliver;
        }
        for f in &self.plan.link_faults {
            if let Some(l) = f.link {
                if l != link {
                    continue;
                }
            }
            if !f.target.matches(kind) || !f.active_at(now) {
                continue;
            }
            if f.loss_prob > 0.0 && self.rng.gen::<f64>() < f.loss_prob {
                return FaultDecision::Lose(f.target);
            }
            if f.corrupt_prob > 0.0 && self.rng.gen::<f64>() < f.corrupt_prob {
                return FaultDecision::Corrupt;
            }
            if f.dup_prob > 0.0 && self.rng.gen::<f64>() < f.dup_prob {
                return FaultDecision::Duplicate;
            }
            if f.reorder_prob > 0.0 && self.rng.gen::<f64>() < f.reorder_prob {
                let max_ns = f.reorder_delay.as_nanos().max(1);
                let delay_ns = self.rng.gen_range(1..=max_ns);
                return FaultDecision::Reorder(SimDuration::from_nanos(delay_ns));
            }
        }
        FaultDecision::Deliver
    }

    /// Serialize the dynamic fault state: the PRNG position and the
    /// current down flags. The plan itself is construction state the
    /// restoring run rebuilds identically.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.usize(self.link_down.len());
        for &d in &self.link_down {
            w.bool(d);
        }
        w.usize(self.host_down.len());
        for &d in &self.host_down {
            w.bool(d);
        }
    }

    /// Overwrite the dynamic fault state from a [`FaultState::save_state`]
    /// stream. Fails if the down-flag vector lengths disagree with the
    /// rebuilt fabric (wrong topology).
    pub(crate) fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        let nl = r.len()?;
        if nl != self.link_down.len() {
            return Err(SnapshotError::Malformed("fault link count"));
        }
        let mut link_down = Vec::with_capacity(nl);
        for _ in 0..nl {
            link_down.push(r.bool()?);
        }
        let nh = r.len()?;
        if nh != self.host_down.len() {
            return Err(SnapshotError::Malformed("fault host count"));
        }
        let mut host_down = Vec::with_capacity(nh);
        for _ in 0..nh {
            host_down.push(r.bool()?);
        }
        self.rng = StdRng::from_state(s);
        self.link_down = link_down;
        self.host_down = host_down;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::CpId;
    use crate::topology::PortId;

    fn cnp_kind() -> PacketKind {
        PacketKind::RoccCnp {
            fair_rate_units: 1,
            cp: CpId {
                node: NodeId(0),
                port: PortId(0),
            },
        }
    }

    fn data_kind() -> PacketKind {
        PacketKind::Data {
            seq: 0,
            payload: 1000,
            last: false,
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let mut st = FaultState::new(plan, 7, 4, 4);
        assert!(!st.is_active());
        assert!(st.scheduled_events().is_empty());
        for _ in 0..1000 {
            assert_eq!(
                st.decide(SimTime::ZERO, LinkId(0), &data_kind()),
                FaultDecision::Deliver
            );
        }
        assert!(!st.link_is_down(LinkId(0)));
        assert!(!st.host_is_down(NodeId(0)));
    }

    #[test]
    fn target_classes() {
        assert!(FaultTarget::Cnp.matches(&cnp_kind()));
        assert!(!FaultTarget::Cnp.matches(&data_kind()));
        assert!(!FaultTarget::Cnp.matches(&PacketKind::Ack {
            cum_seq: 0,
            ecn_echo: false,
            data_tx_time: SimTime::ZERO,
            int: Default::default(),
        }));
        // An ACK carrying a congestion notification (ECN echo) is part of
        // the feedback channel.
        assert!(FaultTarget::Cnp.matches(&PacketKind::Ack {
            cum_seq: 0,
            ecn_echo: true,
            data_tx_time: SimTime::ZERO,
            int: Default::default(),
        }));
        assert!(FaultTarget::Control.matches(&cnp_kind()));
        assert!(FaultTarget::Data.matches(&data_kind()));
        assert!(!FaultTarget::Data.matches(&cnp_kind()));
        assert!(FaultTarget::All.matches(&data_kind()));
        assert!(!FaultTarget::All.matches(&PacketKind::PfcPause));
    }

    #[test]
    fn certain_loss_loses_and_pfc_is_exempt() {
        let plan = FaultPlan::default().with_loss(FaultTarget::All, 1.0);
        let mut st = FaultState::new(plan, 1, 2, 2);
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(0), &data_kind()),
            FaultDecision::Lose(FaultTarget::All)
        );
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(0), &PacketKind::PfcPause),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn window_gates_loss() {
        let plan = FaultPlan::default().with_loss_window(
            FaultTarget::Cnp,
            1.0,
            SimTime::from_micros(10),
            SimTime::from_micros(20),
        );
        let mut st = FaultState::new(plan, 1, 1, 1);
        assert_eq!(
            st.decide(SimTime::from_micros(5), LinkId(0), &cnp_kind()),
            FaultDecision::Deliver
        );
        assert_eq!(
            st.decide(SimTime::from_micros(15), LinkId(0), &cnp_kind()),
            FaultDecision::Lose(FaultTarget::Cnp)
        );
        assert_eq!(
            st.decide(SimTime::from_micros(20), LinkId(0), &cnp_kind()),
            FaultDecision::Deliver,
            "window end is exclusive"
        );
    }

    #[test]
    fn link_scoped_loss_only_hits_that_link() {
        let plan = FaultPlan::default().with_link_loss(LinkId(1), FaultTarget::All, 1.0);
        let mut st = FaultState::new(plan, 3, 2, 2);
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(0), &data_kind()),
            FaultDecision::Deliver
        );
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(1), &data_kind()),
            FaultDecision::Lose(FaultTarget::All)
        );
    }

    #[test]
    fn corruption_decision() {
        let plan = FaultPlan::default().with_corruption(FaultTarget::Data, 1.0);
        let mut st = FaultState::new(plan, 1, 1, 1);
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(0), &data_kind()),
            FaultDecision::Corrupt
        );
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(0), &cnp_kind()),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn duplication_decision() {
        let plan = FaultPlan::default().with_duplication(FaultTarget::Data, 0.49);
        let mut st = FaultState::new(plan, 5, 1, 1);
        let mut dups = 0;
        for _ in 0..2000 {
            match st.decide(SimTime::ZERO, LinkId(0), &data_kind()) {
                FaultDecision::Duplicate => dups += 1,
                FaultDecision::Deliver => {}
                other => panic!("unexpected decision {other:?}"),
            }
            // Control packets are out of scope for a Data-targeted fault.
            assert_eq!(
                st.decide(SimTime::ZERO, LinkId(0), &cnp_kind()),
                FaultDecision::Deliver
            );
        }
        assert!(dups > 0, "p=0.49 over 2000 draws must duplicate something");
    }

    #[test]
    #[should_panic(expected = "below 0.5")]
    fn duplication_probability_is_clamped() {
        let _ = FaultPlan::default().with_duplication(FaultTarget::All, 0.5);
    }

    #[test]
    fn reorder_decision_bounds_delay() {
        let max = SimDuration::from_micros(3);
        let plan = FaultPlan::default().with_reorder(FaultTarget::All, 1.0, max);
        let mut st = FaultState::new(plan, 11, 1, 1);
        for _ in 0..500 {
            match st.decide(SimTime::ZERO, LinkId(0), &data_kind()) {
                FaultDecision::Reorder(d) => {
                    assert!(d > SimDuration::ZERO && d <= max, "delay {d:?} out of (0, max]");
                }
                other => panic!("p=1.0 must always reorder, got {other:?}"),
            }
        }
        // PFC frames stay exempt from every probabilistic fault.
        assert_eq!(
            st.decide(SimTime::ZERO, LinkId(0), &PacketKind::PfcResume),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let mk = || {
            let plan = FaultPlan::default().with_loss(FaultTarget::All, 0.5);
            FaultState::new(plan, 99, 1, 1)
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..500 {
            assert_eq!(
                a.decide(SimTime::ZERO, LinkId(0), &data_kind()),
                b.decide(SimTime::ZERO, LinkId(0), &data_kind())
            );
        }
    }

    #[test]
    fn scheduled_events_cover_flaps_and_hosts() {
        let plan = FaultPlan::default()
            .with_flap(LinkId(2), SimTime::from_micros(1), SimTime::from_micros(9))
            .with_host_crash(NodeId(3), SimTime::from_micros(2), SimTime::from_micros(8))
            .with_host_pause(NodeId(4), SimTime::from_micros(3), SimTime::from_micros(7));
        let st = FaultState::new(plan, 0, 4, 8);
        let evs = st.scheduled_events();
        assert_eq!(evs.len(), 6);
        assert!(matches!(evs[0], (_, FaultEvent::LinkDown(LinkId(2)))));
        assert!(matches!(evs[1], (_, FaultEvent::LinkUp(LinkId(2)))));
        assert!(matches!(evs[2], (_, FaultEvent::HostCrash(NodeId(3)))));
        assert!(matches!(evs[5], (_, FaultEvent::HostRestore(NodeId(4)))));
    }

    #[test]
    fn down_flags_round_trip() {
        let plan = FaultPlan::default().with_flap(
            LinkId(0),
            SimTime::ZERO,
            SimTime::from_micros(1),
        );
        let mut st = FaultState::new(plan, 0, 2, 2);
        st.set_link_down(LinkId(1), true);
        assert!(st.link_is_down(LinkId(1)));
        st.set_link_down(LinkId(1), false);
        assert!(!st.link_is_down(LinkId(1)));
        st.set_host_down(NodeId(1), true);
        assert!(st.host_is_down(NodeId(1)));
    }
}
