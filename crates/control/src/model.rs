//! The RoCC control loop's open-loop transfer function (paper §5.1).
//!
//! With N flows shaped by the published fair rate on a link of capacity C,
//! the queue dynamic (Eq. 2) and the bilinear-transformed PI law (Eq. 3)
//! Laplace-transform into the open loop (Eq. 6)
//!
//! ```text
//!          K (1 + s/z1)
//! G(s) =  ------------- · e^(−sT),   z1 = α / ((β + α/2)·T),  K = κNα/T
//!              s²
//! ```
//!
//! with κ = ΔF/ΔQ converting rate units into queue-unit slew (we keep the
//! paper's unit convention: rate in multiples of ΔF per second drains
//! ΔF/(8·ΔQ) queue units per second).

use crate::complex::Complex;

/// The loop model: PI gains, update interval, flow count, unit scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopModel {
    /// PI gain α.
    pub alpha: f64,
    /// PI gain β.
    pub beta: f64,
    /// Update interval T in seconds.
    pub t: f64,
    /// Number of flows sharing the link.
    pub n: f64,
    /// Unit conversion κ = ΔF / (8·ΔQ) in queue-units/s per rate-unit.
    pub kappa: f64,
}

impl LoopModel {
    /// Paper defaults: T = 40 µs, ΔF = 10 Mb/s, ΔQ = 600 B.
    pub fn paper(alpha: f64, beta: f64, n: f64) -> Self {
        LoopModel {
            alpha,
            beta,
            t: 40e-6,
            n,
            kappa: 10e6 / (8.0 * 600.0),
        }
    }

    /// The PI zero z1 = α / ((β + α/2)·T), rad/s.
    pub fn z1(&self) -> f64 {
        self.alpha / ((self.beta + self.alpha / 2.0) * self.t)
    }

    /// Open-loop gain constant K = κNα/T.
    pub fn k(&self) -> f64 {
        self.kappa * self.n * self.alpha / self.t
    }

    /// Evaluate G(jω).
    pub fn open_loop(&self, w: f64) -> Complex {
        assert!(w > 0.0, "frequency must be positive");
        let s = Complex::j(w);
        let num = (Complex::ONE + s * (1.0 / self.z1())) * self.k();
        let den = s * s;
        let delay = Complex::j(-w * self.t).exp();
        num / den * delay
    }

    /// |G(jω)| analytically (cheaper and exact for crossover search).
    pub fn magnitude(&self, w: f64) -> f64 {
        assert!(w > 0.0, "frequency must be positive");
        self.k() * (1.0 + (w / self.z1()).powi(2)).sqrt() / (w * w)
    }

    /// arg G(jω) in radians: −π (double integrator) + atan(ω/z1) − ωT.
    pub fn phase(&self, w: f64) -> f64 {
        assert!(w > 0.0, "frequency must be positive");
        -std::f64::consts::PI + (w / self.z1()).atan() - w * self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z1_and_k_match_formulas() {
        let m = LoopModel::paper(0.3, 1.5, 2.0);
        let z1 = 0.3 / ((1.5 + 0.15) * 40e-6);
        assert!((m.z1() - z1).abs() / z1 < 1e-12);
        let k = (10e6 / 4800.0) * 2.0 * 0.3 / 40e-6;
        assert!((m.k() - k).abs() / k < 1e-12);
    }

    #[test]
    fn analytic_matches_complex_evaluation() {
        let m = LoopModel::paper(0.3, 1.5, 10.0);
        for &w in &[100.0, 1e3, 1e4, 1e5] {
            let g = m.open_loop(w);
            assert!(
                (g.norm() - m.magnitude(w)).abs() / m.magnitude(w) < 1e-9,
                "magnitude mismatch at ω={w}"
            );
            // Phases agree modulo 2π.
            let d = (g.arg() - m.phase(w)).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(
                d < 1e-9 || (2.0 * std::f64::consts::PI - d) < 1e-9,
                "phase mismatch at ω={w}: {d}"
            );
        }
    }

    #[test]
    fn gain_scales_linearly_with_n() {
        let m2 = LoopModel::paper(0.3, 1.5, 2.0);
        let m10 = LoopModel::paper(0.3, 1.5, 10.0);
        let w = 5e3;
        assert!(((m10.magnitude(w) / m2.magnitude(w)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn magnitude_decreases_past_zero() {
        let m = LoopModel::paper(0.3, 1.5, 2.0);
        let z = m.z1();
        assert!(m.magnitude(10.0 * z) < m.magnitude(2.0 * z));
    }

    #[test]
    fn phase_starts_at_minus_180_and_delay_dominates_high_freq() {
        let m = LoopModel::paper(0.3, 1.5, 2.0);
        // Far below the zero: double-integrator phase ≈ −180°.
        let p_low = m.phase(1e-3).to_degrees();
        assert!((p_low + 180.0).abs() < 1.0, "low-freq phase {p_low}");
        // Far above: delay term −ωT dominates and the phase dives.
        let p_high = m.phase(1e6).to_degrees();
        assert!(p_high < -1000.0);
    }
}
