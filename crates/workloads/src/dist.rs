//! Flow-size distributions.
//!
//! The paper drives its evaluation with "traffic workloads derived from
//! publicly available datacenter traffic traces": the DCTCP *WebSearch*
//! distribution (throughput-sensitive large flows) and the Facebook
//! *FB_Hadoop* distribution (latency-sensitive small flows). The CDFs
//! below are the published point sets; note the paper's FCT report bins
//! (Figs. 14–16) are exactly these distributions' knee points.
//!
//! Sampling is inverse-transform with linear interpolation between CDF
//! points, using the caller's seeded RNG for reproducibility.

use rand::Rng;

/// A piecewise-linear CDF over flow sizes in bytes.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    name: &'static str,
    /// (size_bytes, cumulative_probability), strictly increasing in both.
    points: Vec<(u64, f64)>,
}

impl FlowSizeDist {
    /// Build from CDF points; validates monotonicity and the [0, 1] range.
    pub fn new(name: &'static str, points: Vec<(u64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert_eq!(points[0].1, 0.0, "CDF must start at 0");
        assert_eq!(points.last().unwrap().1, 1.0, "CDF must end at 1");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "sizes must be strictly increasing");
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
        FlowSizeDist { name, points }
    }

    /// The DCTCP WebSearch distribution (Alizadeh et al. 2010), as published
    /// in the distribution files accompanying the HPCC/Homa artifacts.
    /// Heavy-tailed: ~60% of flows under 200 kB, but most *bytes* in the
    /// multi-MB elephants. Mean ≈ 1.6 MB.
    pub fn web_search() -> Self {
        FlowSizeDist::new(
            "WebSearch",
            vec![
                (1_000, 0.0),
                (10_000, 0.15),
                (20_000, 0.20),
                (30_000, 0.30),
                (50_000, 0.40),
                (80_000, 0.53),
                (200_000, 0.60),
                (1_000_000, 0.70),
                (2_000_000, 0.80),
                (5_000_000, 0.90),
                (10_000_000, 0.97),
                (30_000_000, 1.0),
            ],
        )
    }

    /// The Facebook Hadoop distribution (Roy et al. 2015, as distributed
    /// with the Homa artifacts), matched to the paper's report bins:
    /// dominated by sub-25 kB flows with a thin tail to ~10 MB. Mean ≈ 14 kB.
    pub fn fb_hadoop() -> Self {
        FlowSizeDist::new(
            "FB_Hadoop",
            vec![
                (75, 0.0),
                (100, 0.05),
                (250, 0.15),
                (500, 0.25),
                (1_000, 0.35),
                (2_500, 0.50),
                (6_300, 0.65),
                (10_000, 0.75),
                (16_000, 0.82),
                (23_000, 0.86),
                (24_000, 0.89),
                (25_000, 0.92),
                (50_000, 0.95),
                (100_000, 0.98),
                (1_000_000, 0.999),
                (10_000_000, 1.0),
            ],
        )
    }

    /// Distribution name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Mean flow size in bytes (piecewise-linear expectation).
    pub fn mean(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let dp = w[1].1 - w[0].1;
            let mid = (w[0].0 + w[1].0) as f64 / 2.0;
            acc += dp * mid;
        }
        acc
    }

    /// Sample one flow size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The size at cumulative probability `u ∈ [0, 1]`.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return s1;
                }
                let f = (u - p0) / (p1 - p0);
                return (s0 as f64 + f * (s1 - s0) as f64).round() as u64;
            }
        }
        self.points.last().unwrap().0
    }

    /// The paper's FCT report bin edges for this distribution (Figs. 14–16
    /// x-axes): flows are assigned to the nearest bin edge at or above
    /// their size.
    pub fn report_bins(&self) -> Vec<u64> {
        match self.name {
            "WebSearch" => vec![
                10_000, 20_000, 30_000, 50_000, 80_000, 200_000, 1_000_000, 2_000_000,
                5_000_000, 10_000_000,
            ],
            "FB_Hadoop" => vec![
                75, 1_000, 2_500, 6_300, 10_000, 16_000, 23_000, 24_000, 25_000, 100_000,
            ],
            _ => self.points.iter().map(|&(s, _)| s).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantiles_hit_published_points() {
        let d = FlowSizeDist::web_search();
        assert_eq!(d.quantile(0.15), 10_000);
        assert_eq!(d.quantile(0.60), 200_000);
        assert_eq!(d.quantile(1.0), 30_000_000);
        assert_eq!(d.quantile(0.0), 1_000);
    }

    #[test]
    fn interpolation_between_points() {
        let d = FlowSizeDist::web_search();
        // Halfway (in probability) between (10k, .15) and (20k, .20).
        assert_eq!(d.quantile(0.175), 15_000);
    }

    #[test]
    fn means_are_plausible() {
        // WebSearch mean is ~1.6 MB; FB_Hadoop ~tens of kB.
        let ws = FlowSizeDist::web_search().mean();
        assert!(
            (1.0e6..3.0e6).contains(&ws),
            "WebSearch mean {ws:.0} out of range"
        );
        let fh = FlowSizeDist::fb_hadoop().mean();
        assert!(
            (5.0e3..40.0e3).contains(&fh),
            "FB_Hadoop mean {fh:.0} out of range"
        );
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let d = FlowSizeDist::fb_hadoop();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let ana = d.mean();
        assert!(
            (emp - ana).abs() / ana < 0.05,
            "empirical {emp:.0} vs analytic {ana:.0}"
        );
    }

    #[test]
    fn samples_within_support() {
        let d = FlowSizeDist::web_search();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1_000..=30_000_000).contains(&s));
        }
    }

    #[test]
    fn report_bins_match_paper_axes() {
        assert_eq!(FlowSizeDist::web_search().report_bins().len(), 10);
        assert_eq!(
            FlowSizeDist::fb_hadoop().report_bins(),
            vec![75, 1_000, 2_500, 6_300, 10_000, 16_000, 23_000, 24_000, 25_000, 100_000]
        );
    }

    #[test]
    #[should_panic(expected = "CDF must start at 0")]
    fn rejects_bad_cdf() {
        FlowSizeDist::new("bad", vec![(10, 0.5), (20, 1.0)]);
    }
}
