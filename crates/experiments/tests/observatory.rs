//! End-to-end shape of the run observatory: `observe` produces a
//! Perfetto-loadable trace, a metrics JSONL, and a manifest whose digests
//! match the artifacts; two seeds of the same config pass the cross-run
//! fidelity gate; and runs are reproducible digest-for-digest.

use rocc_experiments::observatory::{
    compare, digest, golden_json, incast, observe, summarize_metrics, GOLDEN_SEED,
};
use rocc_experiments::Scale;

fn tmp_dir(name: &str) -> String {
    let d = std::env::temp_dir().join(format!("rocc_obs_{name}_{}", std::process::id()));
    d.to_str().unwrap().to_string()
}

#[test]
fn observe_produces_all_three_artifacts() {
    let run = observe("incast", Scale::Quick, GOLDEN_SEED).expect("incast is a known scenario");
    assert!(observe("nope", Scale::Quick, 1).is_none());
    assert_eq!(run.completed, run.flows, "quick incast must finish");

    // Metrics JSONL covers all four row types.
    for ty in ["queue", "cp", "flow", "pfc"] {
        assert!(
            run.metrics_jsonl.contains(&format!("\"type\":\"{ty}\"")),
            "metrics missing {ty} rows"
        );
    }

    // Perfetto export is a chrome trace with flow tracks and counters.
    assert!(run.perfetto_json.starts_with("{\"displayTimeUnit\":\"ns\""));
    assert!(run.perfetto_json.ends_with("]}"));
    assert!(run.perfetto_json.contains("\"process_name\""));
    assert!(run.perfetto_json.contains("flow 0"));

    // Manifest digests match the artifacts they describe.
    let manifest = run.manifest_json();
    assert!(manifest.contains("\"schema\":\"rocc-run-manifest/v1\""));
    assert!(manifest.contains(&format!("\"seed\":{GOLDEN_SEED}")));
    assert!(manifest.contains(&format!(
        "\"metrics_digest\":\"{}\"",
        digest(&run.metrics_jsonl)
    )));
    assert!(manifest.contains(&format!(
        "\"perfetto_digest\":\"{}\"",
        digest(&run.perfetto_json)
    )));

    // write_artifacts creates the directory chain and all three files.
    let dir = tmp_dir("artifacts");
    let nested = format!("{dir}/a/b");
    let paths = run.write_artifacts(&nested).expect("write artifacts");
    assert_eq!(paths.len(), 3);
    for p in &paths {
        let meta = std::fs::metadata(p).expect("artifact exists");
        assert!(meta.len() > 0, "{p} is empty");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_seeds_of_the_same_config_pass_the_fidelity_gate() {
    let a = incast(Scale::Quick, 7);
    let b = incast(Scale::Quick, 8);
    // Different seeds genuinely produce different runs...
    assert_ne!(
        digest(&a.metrics_jsonl),
        digest(&b.metrics_jsonl),
        "seeds 7 and 8 produced identical time series"
    );
    // ...but the same config shares one config hash,
    assert_eq!(a.config_debug, b.config_debug);
    // and their fidelity metrics agree within the gate's thresholds.
    let report = compare(
        &summarize_metrics(&a.metrics_jsonl),
        &summarize_metrics(&b.metrics_jsonl),
    );
    assert!(report.pass(), "fidelity gate failed:\n{}", report.render());
}

#[test]
fn observed_runs_are_reproducible() {
    let a = incast(Scale::Quick, GOLDEN_SEED);
    let b = incast(Scale::Quick, GOLDEN_SEED);
    assert_eq!(digest(&a.metrics_jsonl), digest(&b.metrics_jsonl));
    assert_eq!(digest(&a.perfetto_json), digest(&b.perfetto_json));
    // The golden document is a pure function of the run.
    let g = golden_json(&a);
    assert_eq!(g, golden_json(&b));
    assert!(g.contains("\"schema\":\"rocc-observatory-golden/v1\""));
    assert!(g.contains("\"metrics_digest\""));
}
