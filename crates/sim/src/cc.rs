//! Congestion-control integration points.
//!
//! The simulator is scheme-agnostic: a scheme supplies
//!
//! * a [`SwitchCc`] per switch egress port (the congestion point — it can
//!   mark ECN, stamp INT, run periodic timers, and emit feedback packets
//!   toward flow sources), and
//! * a [`HostCc`] per flow at the sender (the reaction point — it consumes
//!   ACK echoes and feedback packets and yields a rate and/or window).
//!
//! `rocc-core` implements RoCC on these traits; `rocc-baselines` implements
//! DCQCN, DCQCN+PI, QCN, TIMELY, and HPCC.

use crate::packet::{CpId, FlowId, IntStack, PacketKind};
use crate::telemetry::{CcEvent, EventMask};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use crate::units::BitRate;
use rand::rngs::StdRng;

/// A feedback packet a switch CC wants sent to a flow's source.
#[derive(Debug, Clone)]
pub struct CtrlEmit {
    /// The flow being steered.
    pub flow: FlowId,
    /// The flow's source host (feedback destination).
    pub to: NodeId,
    /// Feedback payload; must be `RoccCnp` or `QcnFb`.
    pub kind: PacketKind,
}

/// Context handed to [`SwitchCc`] callbacks.
pub struct SwitchCcCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Identity of this congestion point.
    pub cp: CpId,
    /// Data-queue occupancy in bytes (excludes the control queue).
    pub qlen_bytes: u64,
    /// Egress line rate.
    pub link_rate: BitRate,
    /// Cumulative bytes transmitted by this port.
    pub tx_bytes: u64,
    /// Deterministic per-run RNG (for probabilistic marking/sampling).
    pub rng: &'a mut StdRng,
    /// Feedback packets to inject; drained and routed by the switch.
    pub emits: Vec<CtrlEmit>,
    /// Decision events buffered by the scheme; drained by the engine and
    /// wrapped into full [`crate::telemetry::SimEvent`]s. Empty `Vec` does
    /// not allocate, so the disabled path stays free.
    pub events: Vec<CcEvent>,
    /// Telemetry classes the run cares about; schemes test this via
    /// [`SwitchCcCtx::wants`] before constructing an event.
    pub event_mask: EventMask,
}

impl SwitchCcCtx<'_> {
    /// True if the run wants events of this class buffered.
    #[inline]
    pub fn wants(&self, class: EventMask) -> bool {
        self.event_mask.intersects(class)
    }
}

/// Per-packet metadata visible to switch CC hooks.
#[derive(Debug, Clone, Copy)]
pub struct PacketMeta {
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Source host of the flow (where feedback would be sent).
    pub src: NodeId,
    /// Wire size in bytes.
    pub wire_bytes: u64,
}

/// Switch-side congestion control, instantiated once per egress port.
#[allow(unused_variables)]
pub trait SwitchCc {
    /// If `Some(p)`, the engine invokes [`SwitchCc::on_timer`] every `p`.
    /// RoCC's CP computes the fair rate on this timer (T = 40 µs).
    fn timer_period(&self) -> Option<SimDuration> {
        None
    }

    /// Periodic tick; emit feedback via `ctx.emits`.
    fn on_timer(&mut self, ctx: &mut SwitchCcCtx<'_>) {}

    /// A data packet was appended to the egress queue. `qlen_bytes` in `ctx`
    /// includes the arriving packet. Return `true` to ECN-mark the packet.
    fn on_enqueue(&mut self, ctx: &mut SwitchCcCtx<'_>, pkt: PacketMeta) -> bool {
        false
    }

    /// A data packet is leaving the egress queue (serialization begins).
    /// `qlen_bytes` excludes the departing packet. Return an
    /// [`crate::packet::IntHop`]
    /// record to stamp onto the packet, if the scheme uses INT.
    fn on_dequeue(
        &mut self,
        ctx: &mut SwitchCcCtx<'_>,
        pkt: PacketMeta,
    ) -> Option<crate::packet::IntHop> {
        None
    }

    /// Serialize the controller's dynamic state as a flat word stream
    /// (floats via `to_bits`), for engine checkpoints. Stateless schemes
    /// keep the default no-op. Must be the exact inverse of
    /// [`SwitchCc::restore_state`]: restoring the words into a freshly
    /// constructed controller must reproduce bit-identical behavior.
    fn snapshot_state(&self, out: &mut Vec<u64>) {}

    /// Overwrite the controller's dynamic state from a word stream produced
    /// by [`SwitchCc::snapshot_state`] on an identically configured
    /// controller.
    fn restore_state(&mut self, state: &[u64]) {}
}

/// A [`SwitchCc`] that does nothing (plain drop-tail/PFC switch).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSwitchCc;

impl SwitchCc for NullSwitchCc {}

/// Creates a [`SwitchCc`] per congestion point.
pub trait SwitchCcFactory {
    /// Instantiate the per-port controller; `link_rate` is the egress line
    /// rate (schemes derive Fmax, thresholds, and gains from it).
    fn make(&self, cp: CpId, link_rate: BitRate) -> Box<dyn SwitchCc>;
}

/// Factory for [`NullSwitchCc`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSwitchCcFactory;

impl SwitchCcFactory for NullSwitchCcFactory {
    fn make(&self, _cp: CpId, _link_rate: BitRate) -> Box<dyn SwitchCc> {
        Box::new(NullSwitchCc)
    }
}

/// Feedback delivered to a sender's reaction point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackEvent {
    /// RoCC CNP: fair rate in wire units (multiples of ΔF; the RoCC RP
    /// scales by ΔF, Alg. 2 line 2) plus the originating congestion point.
    RoccCnp {
        /// Fair rate in multiples of ΔF, exactly as carried on the wire.
        fair_rate_units: u32,
        /// Congestion point that generated the CNP.
        cp: CpId,
    },
    /// RoCC queue report (§3.6 host-side rate computation): raw queue
    /// depth and the CP's Fmax, both in wire units.
    RoccQueueReport {
        /// Queue depth in multiples of ΔQ.
        q_cur_units: u32,
        /// CP's Fmax in multiples of ΔF.
        f_max_units: u32,
        /// Originating congestion point.
        cp: CpId,
    },
    /// DCQCN CNP (congestion seen; no rate carried).
    DcqcnCnp,
    /// QCN feedback with quantized congestion measure Fb.
    QcnFb {
        /// Quantized feedback (0..=63).
        fb: u8,
        /// Originating congestion point.
        cp: CpId,
    },
}

/// ACK information delivered to a sender's congestion control.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Bytes newly acknowledged by this ACK (0 for duplicates).
    pub newly_acked: u64,
    /// Cumulative acked sequence number.
    pub cum_seq: u64,
    /// Measured round-trip time of the acked packet.
    pub rtt: SimDuration,
    /// ECN congestion-experienced echo from the receiver.
    pub ecn_echo: bool,
    /// Echoed in-band telemetry (HPCC).
    pub int: IntStack,
}

/// Context handed to [`HostCc`] callbacks.
pub struct HostCcCtx {
    /// Current simulation time.
    pub now: SimTime,
    /// NIC line rate (the usual Rmax).
    pub link_rate: BitRate,
    /// Timer (re)arm requests: `(token, delay)` — replaces any pending timer
    /// with the same token (i.e., arming is also a reset).
    pub set_timers: Vec<(u8, SimDuration)>,
    /// Timer cancellation requests by token.
    pub cancel_timers: Vec<u8>,
    /// Decision events buffered by the scheme; drained by the engine and
    /// wrapped into full [`crate::telemetry::SimEvent`]s.
    pub events: Vec<CcEvent>,
    /// Telemetry classes the run cares about; schemes test this via
    /// [`HostCcCtx::wants`] before constructing an event.
    pub event_mask: EventMask,
}

impl HostCcCtx {
    /// Arm (or reset) the timer identified by `token` to fire after `d`.
    pub fn set_timer(&mut self, token: u8, d: SimDuration) {
        self.set_timers.push((token, d));
    }

    /// Cancel the pending timer identified by `token`, if any.
    pub fn cancel_timer(&mut self, token: u8) {
        self.cancel_timers.push(token);
    }

    /// True if the run wants events of this class buffered.
    #[inline]
    pub fn wants(&self, class: EventMask) -> bool {
        self.event_mask.intersects(class)
    }
}

/// What the sender is currently allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateDecision {
    /// Pacing rate; packets are spaced at `wire_bytes / rate`.
    pub rate: BitRate,
    /// Optional in-flight byte cap (window-based schemes like HPCC).
    pub window_bytes: Option<u64>,
}

impl RateDecision {
    /// Unthrottled: line rate, no window.
    pub fn line_rate(rate: BitRate) -> Self {
        RateDecision {
            rate,
            window_bytes: None,
        }
    }
}

/// Sender-side congestion control, instantiated once per flow.
#[allow(unused_variables)]
pub trait HostCc {
    /// Current sending constraint; consulted whenever the NIC schedules the
    /// flow's next packet.
    fn decision(&self) -> RateDecision;

    /// Switch- or receiver-originated feedback arrived (after the RP
    /// feedback delay).
    fn on_feedback(&mut self, ctx: &mut HostCcCtx, fb: FeedbackEvent) {}

    /// An ACK for this flow arrived.
    fn on_ack(&mut self, ctx: &mut HostCcCtx, ack: AckEvent) {}

    /// A timer armed via [`HostCcCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut HostCcCtx, token: u8) {}

    /// The hard `(min, max)` bounds this controller promises its rate stays
    /// within, if it makes such a promise. The invariant sanitizer audits
    /// `min ≤ decision().rate ≤ max` whenever this returns `Some`; `None`
    /// (the default) skips the audit for schemes without declared bounds.
    fn rate_bounds(&self) -> Option<(BitRate, BitRate)> {
        None
    }

    /// Serialize the controller's dynamic state as a flat word stream
    /// (floats via `to_bits`), for engine checkpoints. Stateless schemes
    /// keep the default no-op. Must be the exact inverse of
    /// [`HostCc::restore_state`]: restoring the words into a freshly
    /// constructed controller must reproduce bit-identical behavior.
    fn snapshot_state(&self, out: &mut Vec<u64>) {}

    /// Overwrite the controller's dynamic state from a word stream produced
    /// by [`HostCc::snapshot_state`] on an identically configured
    /// controller.
    fn restore_state(&mut self, state: &[u64]) {}
}

/// A [`HostCc`] that always sends at line rate (no congestion control).
#[derive(Debug, Clone, Copy)]
pub struct NullHostCc {
    rate: BitRate,
}

impl NullHostCc {
    /// Send at the given fixed rate.
    pub fn new(rate: BitRate) -> Self {
        NullHostCc { rate }
    }
}

impl HostCc for NullHostCc {
    fn decision(&self) -> RateDecision {
        RateDecision::line_rate(self.rate)
    }
}

/// Creates a [`HostCc`] per flow.
pub trait HostCcFactory {
    /// Instantiate the per-flow controller; `link_rate` is the sender NIC
    /// line rate.
    fn make(&self, flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc>;
}

/// Factory for [`NullHostCc`] (flows run at line rate).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHostCcFactory;

impl HostCcFactory for NullHostCcFactory {
    fn make(&self, _flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        Box::new(NullHostCc::new(link_rate))
    }
}

/// A fixed-rate host CC factory, useful for open-loop traffic (e.g., the
/// DPDK validation scenario drives iPerf-like senders at set offered rates).
#[derive(Debug, Clone)]
pub struct FixedRateFactory {
    rates: Vec<(FlowId, BitRate)>,
    default: Option<BitRate>,
}

impl FixedRateFactory {
    /// Flows listed in `rates` get their specific rate; all others get
    /// `default` (or line rate when `None`).
    pub fn new(rates: Vec<(FlowId, BitRate)>, default: Option<BitRate>) -> Self {
        FixedRateFactory { rates, default }
    }
}

impl HostCcFactory for FixedRateFactory {
    fn make(&self, flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        let rate = self
            .rates
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, r)| *r)
            .or(self.default)
            .unwrap_or(link_rate);
        Box::new(NullHostCc::new(rate.min(link_rate)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_host_cc_is_line_rate() {
        let cc = NullHostCc::new(BitRate::from_gbps(40));
        assert_eq!(
            cc.decision(),
            RateDecision {
                rate: BitRate::from_gbps(40),
                window_bytes: None
            }
        );
    }

    #[test]
    fn fixed_rate_factory_assigns_rates() {
        let f = FixedRateFactory::new(
            vec![(FlowId(1), BitRate::from_gbps(3))],
            Some(BitRate::from_gbps(10)),
        );
        let line = BitRate::from_gbps(10);
        assert_eq!(f.make(FlowId(1), line).decision().rate, BitRate::from_gbps(3));
        assert_eq!(f.make(FlowId(2), line).decision().rate, BitRate::from_gbps(10));
    }

    #[test]
    fn ctx_timer_requests_accumulate() {
        let mut ctx = HostCcCtx {
            now: SimTime::ZERO,
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: EventMask::NONE,
        };
        ctx.set_timer(0, SimDuration::from_micros(100));
        ctx.set_timer(1, SimDuration::from_micros(50));
        ctx.cancel_timer(0);
        assert_eq!(ctx.set_timers.len(), 2);
        assert_eq!(ctx.cancel_timers, vec![0]);
    }
}
