//! Ablation benchmarks for RoCC's design choices (DESIGN.md §5):
//! auto-tuning, multiplicative decrease, flow-table policy, and CNP
//! prioritization. The qualitative outcome of each variant is printed
//! once; the benchmark then measures the simulation cost of the variant.

use criterion::{criterion_group, criterion_main, Criterion};
use rocc_core::{CpParams, FlowTablePolicy, RoccSwitchCcFactory};
use rocc_experiments::ablation::run_variant;
use rocc_sim::prelude::{SimConfig, SimTime};
use std::hint::black_box;

fn horizon() -> SimTime {
    SimTime::from_millis(16)
}

fn bench_auto_tune(c: &mut Criterion) {
    let mut fixed = CpParams::for_40g();
    fixed.auto_tune = false;
    let on = run_variant("on", 64, RoccSwitchCcFactory::new(), SimConfig::default(), horizon());
    let off = run_variant(
        "off",
        64,
        RoccSwitchCcFactory::new().with_params(fixed),
        SimConfig::default(),
        horizon(),
    );
    eprintln!(
        "[ablate:auto-tune] N=64 queue sd: on {:.0} B vs off {:.0} B",
        on.queue_sd, off.queue_sd
    );
    let mut g = c.benchmark_group("ablate_auto_tune");
    g.sample_size(10);
    g.bench_function("on_n64", |b| {
        b.iter(|| {
            black_box(run_variant(
                "on",
                64,
                RoccSwitchCcFactory::new(),
                SimConfig::default(),
                horizon(),
            ))
        })
    });
    g.bench_function("off_n64", |b| {
        let mut fixed = CpParams::for_40g();
        fixed.auto_tune = false;
        b.iter(|| {
            black_box(run_variant(
                "off",
                64,
                RoccSwitchCcFactory::new().with_params(fixed),
                SimConfig::default(),
                horizon(),
            ))
        })
    });
    g.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut no_md = CpParams::for_40g();
    no_md.multiplicative_decrease = false;
    let on = run_variant("on", 10, RoccSwitchCcFactory::new(), SimConfig::default(), horizon());
    let off = run_variant(
        "off",
        10,
        RoccSwitchCcFactory::new().with_params(no_md),
        SimConfig::default(),
        horizon(),
    );
    eprintln!(
        "[ablate:MD] settle: on {:?} vs off {:?}",
        on.settle, off.settle
    );
    let mut g = c.benchmark_group("ablate_md");
    g.sample_size(10);
    g.bench_function("md_on", |b| {
        b.iter(|| {
            black_box(run_variant(
                "on",
                10,
                RoccSwitchCcFactory::new(),
                SimConfig::default(),
                horizon(),
            ))
        })
    });
    g.bench_function("md_off", |b| {
        let mut no_md = CpParams::for_40g();
        no_md.multiplicative_decrease = false;
        b.iter(|| {
            black_box(run_variant(
                "off",
                10,
                RoccSwitchCcFactory::new().with_params(no_md),
                SimConfig::default(),
                horizon(),
            ))
        })
    });
    g.finish();
}

fn bench_flow_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_flow_table");
    g.sample_size(10);
    for (name, policy) in [
        ("in_queue", FlowTablePolicy::InQueue),
        (
            "bounded_age",
            FlowTablePolicy::BoundedAge {
                capacity: 400,
                idle_timeout_ns: 200_000,
            },
        ),
        (
            "sampling",
            FlowTablePolicy::Sampling {
                capacity: 128,
                sample_prob: 0.25,
            },
        ),
    ] {
        let r = run_variant(
            name,
            10,
            RoccSwitchCcFactory::new().with_policy(policy),
            SimConfig::default(),
            horizon(),
        );
        eprintln!(
            "[ablate:table] {name}: fairness {:.4}, CNPs {}",
            r.fairness, r.cnps
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_variant(
                    name,
                    10,
                    RoccSwitchCcFactory::new().with_policy(policy),
                    SimConfig::default(),
                    horizon(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_cnp_priority(c: &mut Criterion) {
    let mut no_prio = SimConfig::default();
    no_prio.prioritize_control = false;
    let on = run_variant("on", 10, RoccSwitchCcFactory::new(), SimConfig::default(), horizon());
    let off = run_variant("off", 10, RoccSwitchCcFactory::new(), no_prio.clone(), horizon());
    eprintln!(
        "[ablate:cnp-prio] queue sd: prioritized {:.0} B vs not {:.0} B",
        on.queue_sd, off.queue_sd
    );
    let mut g = c.benchmark_group("ablate_cnp_priority");
    g.sample_size(10);
    g.bench_function("prioritized", |b| {
        b.iter(|| {
            black_box(run_variant(
                "on",
                10,
                RoccSwitchCcFactory::new(),
                SimConfig::default(),
                horizon(),
            ))
        })
    });
    g.bench_function("unprioritized", |b| {
        b.iter(|| {
            black_box(run_variant(
                "off",
                10,
                RoccSwitchCcFactory::new(),
                no_prio.clone(),
                horizon(),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_auto_tune,
    bench_md,
    bench_flow_tables,
    bench_cnp_priority
);
criterion_main!(benches);
